//! Qualitative paper claims, checked end-to-end at reduced scale. These
//! encode the *shape* of the evaluation (who wins, directionally by how
//! much) — the full-scale numbers come from the `scc-bench` binaries and
//! are recorded in EXPERIMENTS.md.

use scc_sim::{run_workload, OptLevel, SimOptions};
use scc_workloads::{workload, Scale};

const SCALE: i64 = 1000;

fn norm_time(name: &str, level: OptLevel) -> f64 {
    let w = workload(name, Scale::custom(SCALE)).unwrap();
    let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
    let x = run_workload(&w, &SimOptions::new(level));
    x.cycles() as f64 / base.cycles() as f64
}

fn uop_reduction(name: &str, level: OptLevel) -> f64 {
    let w = workload(name, Scale::custom(SCALE)).unwrap();
    let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
    let x = run_workload(&w, &SimOptions::new(level));
    1.0 - x.uops() as f64 / base.uops() as f64
}

#[test]
fn predictable_benchmarks_benefit_most() {
    // Paper §VII-A: freqmine, perlbench, xalancbmk benefit the most.
    for name in ["freqmine", "perlbench", "xalancbmk"] {
        let t = norm_time(name, OptLevel::Full);
        assert!(t < 0.95, "{name} should speed up clearly, got {t:.3}");
    }
}

#[test]
fn fp_heavy_benchmarks_are_untouched() {
    // Paper §VII-A: lbm, wrf, x264 "spend most of their time executing
    // floating-point and SIMD instructions that are currently
    // unoptimizable by SCC".
    for name in ["lbm", "wrf", "x264"] {
        let red = uop_reduction(name, OptLevel::Full);
        assert!(red < 0.05, "{name} uop reduction should be near zero, got {red:.3}");
    }
}

#[test]
fn memory_bound_benchmarks_reduce_uops_but_not_time() {
    // Paper §VII-A: mcf and xz "do not benefit from SCC from a
    // performance standpoint, despite their potential for high
    // instruction count reduction".
    for name in ["mcf", "xz"] {
        let t = norm_time(name, OptLevel::Full);
        assert!(
            (0.97..=1.03).contains(&t),
            "{name} time should be flat, got {t:.3}"
        );
    }
    assert!(uop_reduction("mcf", OptLevel::Full) > 0.02, "mcf still eliminates uops");
}

#[test]
fn low_ilp_benchmarks_see_no_speedup() {
    // Paper §VII-A: leela and swaptions are ROB-bound.
    for name in ["leela", "swaptions"] {
        let t = norm_time(name, OptLevel::Full);
        assert!(t > 0.95, "{name} should be nearly flat, got {t:.3}");
    }
}

#[test]
fn move_elimination_alone_helps_mov_heavy_benchmarks() {
    // Paper §VII-A: vips and exchange speed up "due to speculative move
    // elimination alone".
    for name in ["exchange", "vips"] {
        let t = norm_time(name, OptLevel::MoveElim);
        assert!(t < 0.95, "{name} at move-elim should already win, got {t:.3}");
    }
}

#[test]
fn optimization_levels_are_monotonically_ordered_on_winners() {
    // More optimizations, more reduction (the Figure 6 stacking), on the
    // strongly predictable benchmarks.
    for name in ["freqmine", "perlbench"] {
        let l3 = uop_reduction(name, OptLevel::MoveElim);
        let l4 = uop_reduction(name, OptLevel::FoldProp);
        let l5 = uop_reduction(name, OptLevel::BranchFold);
        assert!(l4 >= l3 - 0.02, "{name}: fold+prop >= move-elim ({l4:.3} vs {l3:.3})");
        assert!(l5 >= l4 - 0.02, "{name}: branch-fold >= fold+prop ({l5:.3} vs {l4:.3})");
    }
}

#[test]
fn partitioned_baseline_is_architecturally_equal_and_close_in_time() {
    // Figure 6 includes the partitioned baseline "although it performs
    // similarly to the original baseline".
    for name in ["perlbench", "freqmine", "bodytrack"] {
        let t = norm_time(name, OptLevel::PartitionedBaseline);
        assert!(
            (0.9..=1.15).contains(&t),
            "{name} partitioned baseline should be near 1.0, got {t:.3}"
        );
    }
}

#[test]
fn h3vp_wins_oscillation_eves_wins_noise() {
    use scc_predictors::ValuePredictorKind;
    let run = |name: &str, vp: ValuePredictorKind| {
        let w = workload(name, Scale::custom(SCALE)).unwrap();
        let mut o = SimOptions::new(OptLevel::Full);
        o.value_predictor = vp;
        run_workload(&w, &o)
    };
    // Paper Figure 9: H3VP outperforms EVES on xalancbmk...
    let xe = run("xalancbmk", ValuePredictorKind::Eves);
    let xh = run("xalancbmk", ValuePredictorKind::H3vp);
    assert!(
        xh.cycles() as f64 <= xe.cycles() as f64 * 1.02,
        "H3VP should at least match EVES on xalancbmk: {} vs {}",
        xh.cycles(),
        xe.cycles()
    );
    // ...while EVES avoids squash penalties on gcc.
    let ge = run("gcc", ValuePredictorKind::Eves);
    let gh = run("gcc", ValuePredictorKind::H3vp);
    assert!(
        ge.stats.invariants_failed <= gh.stats.invariants_failed,
        "EVES should fail fewer invariants on gcc: {} vs {}",
        ge.stats.invariants_failed,
        gh.stats.invariants_failed
    );
}

#[test]
fn energy_savings_exceed_zero_on_winners_and_track_figure_8() {
    for name in ["freqmine", "perlbench", "vips"] {
        let w = workload(name, Scale::custom(SCALE)).unwrap();
        let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
        let full = run_workload(&w, &SimOptions::new(OptLevel::Full));
        let norm = full.energy_pj() / base.energy_pj();
        assert!(norm < 0.95, "{name} should save energy, got {norm:.3}");
    }
}

#[test]
fn micro_fusion_is_architecturally_invisible_and_roughly_neutral_to_scc() {
    // Fusion helps baseline and SCC alike (Table I counts fused uops in
    // both); disabling it must not change results, only timing.
    use scc_pipeline::{Pipeline, PipelineConfig};
    let w = workload("bodytrack", Scale::custom(800)).unwrap();
    let fused = {
        let mut p = Pipeline::new(&w.program, PipelineConfig::scc_full());
        p.run(100_000_000)
    };
    let unfused = {
        let mut cfg = PipelineConfig::scc_full();
        cfg.core.micro_fusion = false;
        let mut p = Pipeline::new(&w.program, cfg);
        p.run(100_000_000)
    };
    assert_eq!(fused.snapshot, unfused.snapshot);
    let ratio = fused.stats.cycles as f64 / unfused.stats.cycles as f64;
    assert!(ratio <= 1.02, "fusion never hurts: {ratio}");
}
