//! Cross-crate integration: the full stack (workloads → sim → pipeline →
//! SCC → energy) wired together, checked against the reference
//! interpreter.

use scc_isa::Machine;
use scc_sim::report::{geomean, Table};
use scc_sim::{energy_events, run_workload, OptLevel, SimOptions};
use scc_workloads::{all_workloads, workload, Scale};

/// Every benchmark, at every optimization level, must end in exactly the
/// architectural state the in-order reference interpreter computes.
#[test]
fn all_workloads_all_levels_match_reference() {
    let scale = Scale::custom(120);
    for w in all_workloads(scale) {
        let mut m = Machine::new(&w.program);
        let r = m.run(200_000_000).expect("reference runs");
        assert!(r.halted, "{} reference did not halt", w.name);
        let want = m.snapshot();
        for level in OptLevel::all() {
            let res = run_workload(&w, &SimOptions::new(level));
            assert_eq!(
                res.snapshot, want,
                "{} diverged from the reference at {level}",
                w.name
            );
        }
    }
}

#[test]
fn scc_reduces_suite_uops_and_never_increases_them_much() {
    let scale = Scale::custom(400);
    let mut ratios = Vec::new();
    for w in all_workloads(scale) {
        let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
        let full = run_workload(&w, &SimOptions::new(OptLevel::Full));
        let ratio = full.uops() as f64 / base.uops() as f64;
        assert!(
            ratio <= 1.0 + 1e-9,
            "{}: SCC must never commit more micro-ops than the baseline ({ratio})",
            w.name
        );
        ratios.push(ratio);
    }
    let mean = geomean(ratios);
    assert!(
        mean < 0.97,
        "suite-wide committed-uop reduction should be visible even at small scale: {mean}"
    );
}

#[test]
fn energy_model_integrates_with_pipeline_stats() {
    let w = workload("freqmine", Scale::custom(400)).unwrap();
    let res = run_workload(&w, &SimOptions::new(OptLevel::Full));
    let ev = energy_events(&res.stats);
    assert_eq!(ev.cycles, res.stats.cycles);
    assert!(ev.renamed_uops >= res.stats.committed_uops, "renamed includes squashed work");
    assert!(res.energy_pj() > 0.0);
}

#[test]
fn value_predictor_choice_flows_through_the_stack() {
    use scc_predictors::ValuePredictorKind;
    let w = workload("xalancbmk", Scale::custom(400)).unwrap();
    for vp in [ValuePredictorKind::Eves, ValuePredictorKind::H3vp] {
        let mut o = SimOptions::new(OptLevel::Full);
        o.value_predictor = vp;
        let res = run_workload(&w, &o);
        assert!(res.halted);
        assert!(res.stats.streams_committed > 0, "{vp} should enable compaction");
    }
}

#[test]
fn partition_split_flows_through_the_stack() {
    let w = workload("freqmine", Scale::custom(400)).unwrap();
    for sets in [12, 24, 36] {
        let mut o = SimOptions::new(OptLevel::Full);
        o.opt_partition_sets = sets;
        let res = run_workload(&w, &o);
        assert!(res.halted, "opt={sets}");
    }
}

#[test]
fn report_helpers_render_suite_results() {
    let scale = Scale::custom(150);
    let mut t = Table::new(&["bench", "norm"]);
    for w in all_workloads(scale).into_iter().take(3) {
        let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
        let full = run_workload(&w, &SimOptions::new(OptLevel::Full));
        t.row(&[
            w.name.to_string(),
            format!("{:.3}", full.cycles() as f64 / base.cycles() as f64),
        ]);
    }
    let s = t.render();
    assert!(s.contains("perlbench"));
    assert_eq!(s.lines().count(), 5);
}
