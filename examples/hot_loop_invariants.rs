//! The paper's motivating scenario: a kernel that repeatedly reloads hot,
//! rarely-updated configuration values (an interpreter's dispatch
//! constants, a solver's scale factors) and recomputes thresholds from
//! them every iteration. The compiler cannot fold these — the values are
//! only known at run time — but SCC can, because the value predictor
//! exposes them as *speculative data invariants*.
//!
//! ```text
//! cargo run --release -p scc-sim --example hot_loop_invariants
//! ```

use scc_isa::{Cond, ProgramBuilder, Reg};
use scc_sim::{run_workload, OptLevel, SimOptions};
use scc_workloads::{Scale, Suite, Workload};

/// `y[i] = x[i] + ((alpha << 4) | beta)` over a vector, where `alpha` and
/// `beta` live in memory (runtime configuration), and — as compilers
/// readily do under register pressure — the derived constant is
/// recomputed from memory in every iteration.
fn threshold_kernel(n: i64, reps: i64) -> Workload {
    let r = Reg::int;
    let mut b = ProgramBuilder::new(0x1000);
    b.words(0x8000, &[3, 9]); // alpha, beta: fixed for the whole run
    for i in 0..n {
        b.word(0x2_0000 + 8 * i as u64, i * 7);
    }
    b.mov_imm(r(0), 0x8000);
    b.mov_imm(r(10), reps);
    b.align_region();
    let outer = b.here();
    b.mov_imm(r(1), 0x2_0000); // x cursor
    b.mov_imm(r(2), 0x4_0000); // y cursor
    b.mov_imm(r(3), n);
    b.align_region();
    let inner = b.here();
    b.load(r(4), r(0), 0); // alpha: invariant -> prediction source
    b.shl_imm(r(5), r(4), 4); // folds to 48
    b.load(r(6), r(0), 8); // beta: invariant -> prediction source
    b.or(r(5), r(5), r(6)); // folds to 57
    b.load(r(7), r(1), 0); // x[i]: varies
    b.add(r(8), r(7), r(5)); // becomes x[i] + $57
    b.store(r(8), r(2), 0);
    b.add_imm(r(1), r(1), 8);
    b.add_imm(r(2), r(2), 8);
    b.sub_imm(r(3), r(3), 1);
    b.cmp_br_imm(Cond::Ne, r(3), 0, inner);
    b.sub_imm(r(10), r(10), 1);
    b.cmp_br_imm(Cond::Ne, r(10), 0, outer);
    b.halt();
    Workload {
        name: "threshold-kernel".into(),
        suite: Suite::SpecInt,
        program: b.build(),
        description: "y = x + f(alpha, beta) with runtime-constant alpha/beta",
        scale: Scale::custom(reps),
    }
}

fn main() {
    let w = threshold_kernel(64, 600);
    let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
    let scc = run_workload(&w, &SimOptions::new(OptLevel::Full));
    assert_eq!(base.snapshot, scc.snapshot);

    println!("workload: {} ({})", w.name, w.description);
    println!(
        "the alpha/beta loads became prediction sources: {} invariant validations, {} failures",
        scc.stats.invariants_validated, scc.stats.invariants_failed
    );
    println!(
        "baseline {} cycles / {} uops  |  SCC {} cycles / {} uops",
        base.cycles(),
        base.uops(),
        scc.cycles(),
        scc.uops()
    );
    println!(
        "speedup {:+.1}%, uop reduction {:+.1}%, energy {:+.1}%",
        100.0 * (base.cycles() as f64 / scc.cycles() as f64 - 1.0),
        100.0 * (1.0 - scc.uops() as f64 / base.uops() as f64),
        100.0 * (1.0 - scc.energy_pj() / base.energy_pj()),
    );
    // Verify the math: y[i] = 7i + ((3 << 4) | 9) = 7i + 57.
    let y_17 = scc.snapshot.mem.iter().find(|&&(a, _)| a == 0x4_0000 + 8 * 17).map(|&(_, v)| v);
    println!("spot check: y[17] = {:?} (expected {})", y_17, 7 * 17 + 57);
}
