//! SimPoint methodology demo (paper §VI): profile a benchmark into
//! intervals, cluster the basic-block vectors, pick weighted
//! representatives, and compare the simpoint-estimated cycles against the
//! full run — for both the baseline and SCC.
//!
//! ```text
//! cargo run --release -p scc-sim --example simpoint_demo
//! ```

use scc_sim::simpoint::{choose_simpoints, run_simpoints, SimpointConfig};
use scc_sim::{run_workload, OptLevel, SimOptions};
use scc_workloads::{workload, Scale};

fn main() {
    let w = workload("perlbench", Scale::custom(6000)).expect("known workload");
    // ~36 intervals: enough for the phases to cluster cleanly. (The paper
    // uses 100M-uop intervals over billions of instructions.)
    let cfg = SimpointConfig {
        interval_uops: 10_000,
        warmup_uops: 5_000,
        k: 6,
        ..SimpointConfig::default()
    };

    let sp = choose_simpoints(&w.program, &cfg).expect("profiling succeeds");
    println!(
        "{}: {} intervals of {} uops -> {} simpoints",
        w.name,
        sp.intervals,
        sp.interval_uops,
        sp.points.len()
    );
    for p in &sp.points {
        println!(
            "  interval {:>3}  weight {:.2}  start pc {:#x}",
            p.interval, p.weight, p.start_pc
        );
    }

    for level in [OptLevel::Baseline, OptLevel::Full] {
        let opts = SimOptions::new(level);
        let full = run_workload(&w, &opts);
        let est = run_simpoints(&w, &opts, &cfg).expect("simpoints run");
        println!(
            "{level:<12} full {:>9} cycles | simpoint estimate {:>11.0} ({:+.1}% error)",
            full.cycles(),
            est.estimated_cycles,
            100.0 * (est.estimated_cycles / full.cycles() as f64 - 1.0)
        );
    }
}
