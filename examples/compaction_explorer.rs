//! Compaction explorer: shows a code region before and after speculative
//! code compaction, like the paper's Figure 4 (unoptimized micro-ops vs
//! the compacted stream, with invariants and live-outs annotated).
//!
//! ```text
//! cargo run --release -p scc-sim --example compaction_explorer
//! ```

use scc_core::{CompactionEngine, CompactionOutcome, SccConfig};
use scc_isa::{disasm, Cond, ProgramBuilder, Reg};
use scc_predictors::{LastValue, ValuePredictor};

fn main() {
    let r = Reg::int;
    // A compiler-optimized-looking basic block, xalancbmk-style (paper
    // Fig. 4): a hot load, dependent arithmetic, a guard branch.
    let mut b = ProgramBuilder::new(0x1000);
    let taken = b.label();
    b.load(r(1), r(0), 0x40); // hot, effectively invariant load
    b.add_imm(r(2), r(1), 4);
    b.shl_imm(r(3), r(2), 1);
    b.cmp_imm(r(3), 100);
    b.br(Cond::Lt, taken);
    b.mov_imm(r(9), 1); // dead under the invariant
    b.bind(taken);
    b.xor_imm(r(4), r(3), 0xF);
    b.add(r(5), r(5), r(4));
    b.halt();
    let program = b.build();

    println!("== unoptimized micro-ops ==");
    print!("{}", disasm::disassemble(&program));

    // Train the value predictor as commits would: the load always sees 7.
    let mut vp = LastValue::new();
    for _ in 0..12 {
        vp.train(0x1000, 7);
    }

    let mut engine = CompactionEngine::new(SccConfig::full());
    match engine.compact(0x1000, &program, &vp, &scc_core::NoBranchProbe) {
        CompactionOutcome::Committed(s) => {
            println!("\n== compacted stream (entry {:#x}, exit {:#x}) ==", s.entry, s.exit);
            for su in &s.uops {
                let tag = match su.pred_source {
                    Some(i) => format!("  <- prediction source, validates {:?}",
                        s.invariants[i].invariant),
                    None => String::new(),
                };
                println!("  {}{}", su.uop, tag);
                for (reg, v) in &su.live_outs {
                    println!("    (live-out at rename: {reg} = {v})");
                }
                if let Some(cc) = su.live_out_cc {
                    println!("    (live-out flags: {cc})");
                }
            }
            if !s.final_live_outs.is_empty() || s.final_live_out_cc.is_some() {
                println!("  -- stream-end live-outs --");
                for (reg, v) in &s.final_live_outs {
                    println!("    {reg} = {v}");
                }
                if let Some(cc) = s.final_live_out_cc {
                    println!("    flags = {cc}");
                }
            }
            println!(
                "\n{} original micro-ops -> {} in the stream (shrinkage {})",
                s.orig_len,
                s.uops.len(),
                s.shrinkage()
            );
            println!(
                "breakdown: {} move-elim, {} folds, {} branch folds, {} cross-block, {} propagated",
                s.breakdown.move_elim,
                s.breakdown.fold,
                s.breakdown.branch_fold,
                s.breakdown.cross_block,
                s.breakdown.propagated
            );
        }
        other => println!("compaction did not commit: {other:?}"),
    }
}
