//! SCC's adaptability claim: unlike profile-guided optimizers, SCC keys
//! its optimizations to *predicted* invariants. When the dataset changes
//! mid-run, the streams built for the old value mispredict, get penalized
//! and phased out, and fresh streams keyed to the new value replace them —
//! the *same* code region is re-optimized, with zero profiling and zero
//! correctness risk.
//!
//! ```text
//! cargo run --release -p scc-sim --example adaptive_datasets
//! ```

use scc_isa::{Cond, Machine, ProgramBuilder, Reg};
use scc_pipeline::{Pipeline, PipelineConfig};

fn main() {
    let r = Reg::int;
    let n_phases: i64 = 3;
    let trips_per_phase: i64 = 6_000;

    // Phase table: the "dataset" value for each phase.
    let phases: [i64; 3] = [11, 500, -7];

    let mut b = ProgramBuilder::new(0x1000);
    b.words(0x8000, &phases);
    b.word(0x9000, 0); // the hot cell the inner loop reads
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(1), 0); // acc
    b.mov_imm(r(11), 0x8000); // phase cursor
    b.mov_imm(r(12), n_phases);
    b.align_region();
    let outer = b.here();
    // Dataset change: install this phase's value into the hot cell.
    b.load(r(5), r(11), 0);
    b.store(r(5), r(0), 0);
    b.add_imm(r(11), r(11), 8);
    b.mov_imm(r(2), trips_per_phase);
    b.align_region();
    // ONE inner loop, shared by all phases — its streams go stale at
    // every phase boundary and must be rebuilt.
    let inner = b.here();
    b.load(r(3), r(0), 0); // invariant *within* a phase
    b.add_imm(r(4), r(3), 1); // folds against the current phase's value
    b.shl_imm(r(6), r(4), 1); // folds
    b.xor_imm(r(7), r(6), 5); // folds
    b.add(r(1), r(1), r(7)); // live accumulate
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, inner);
    b.sub_imm(r(12), r(12), 1);
    b.cmp_br_imm(Cond::Ne, r(12), 0, outer);
    b.halt();
    let program = b.build();

    // Reference result.
    let mut m = Machine::new(&program);
    m.run(200_000_000).expect("reference");
    let expected: i64 =
        phases.iter().map(|&v| (((v + 1) << 1) ^ 5) * trips_per_phase).sum();
    assert_eq!(m.reg(r(1)), expected);

    let mut pipe = Pipeline::new(&program, PipelineConfig::scc_full());
    let res = pipe.run(200_000_000);
    assert_eq!(res.snapshot.regs[1], expected, "speculation never corrupts state");

    println!("three dataset phases over ONE loop: table value = {phases:?}");
    println!("final acc = {} (exact)", res.snapshot.regs[1]);
    println!(
        "streams committed {} (fresh versions after each phase change), phased out {}",
        res.stats.streams_committed, res.stats.opt.phased_out
    );
    println!(
        "data-invariant squashes at phase changes: {} (of {} total squashes)",
        res.stats.scc_data_squashes, res.stats.squashes
    );
    println!(
        "uops streamed from optimized partition: {} ({:.0}% of fetch)",
        res.stats.uops_from_opt,
        100.0 * res.stats.uops_from_opt as f64
            / (res.stats.uops_from_opt + res.stats.uops_from_unopt + res.stats.uops_from_icache)
                as f64
    );
    let mut base = Pipeline::new(&program, PipelineConfig::baseline());
    let base_res = base.run(200_000_000);
    println!(
        "speedup across all three phases: {:+.1}%",
        100.0 * (base_res.stats.cycles as f64 / res.stats.cycles as f64 - 1.0)
    );
}
