//! Watch SCC work in real time: run a phase-changing loop with tracing
//! enabled and print the narrative — compactions, stream choices,
//! validation squashes at the phase boundary, and recompaction.
//!
//! ```text
//! cargo run --release -p scc-sim --example trace_viewer
//! ```

use scc_isa::{Cond, ProgramBuilder, Reg};
use scc_pipeline::{Pipeline, PipelineConfig, TraceEvent};

fn main() {
    let r = Reg::int;
    let mut b = ProgramBuilder::new(0x1000);
    b.words(0x8000, &[7, 300]);
    b.word(0x9000, 0);
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(11), 0x8000);
    b.mov_imm(r(12), 2); // phases
    b.align_region();
    let outer = b.here();
    b.load(r(5), r(11), 0);
    b.store(r(5), r(0), 0);
    b.add_imm(r(11), r(11), 8);
    b.mov_imm(r(2), 400);
    b.align_region();
    let inner = b.here();
    b.load(r(3), r(0), 0);
    b.add_imm(r(4), r(3), 1);
    b.add(r(1), r(1), r(4));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, inner);
    b.sub_imm(r(12), r(12), 1);
    b.cmp_br_imm(Cond::Ne, r(12), 0, outer);
    b.halt();
    let program = b.build();

    let mut pipe = Pipeline::new(&program, PipelineConfig::scc_full());
    pipe.enable_trace(1_000_000);
    let res = pipe.run(50_000_000);
    let trace = pipe.take_trace().expect("trace enabled");

    // Print everything except per-uop commits; collapse repeated stream
    // choices into a count.
    let mut commits = 0u64;
    let mut run: Option<(u64, u64)> = None; // (stream_id, count)
    let flush_run = |run: &mut Option<(u64, u64)>| {
        if let Some((id, n)) = run.take() {
            println!("           stream  id {id} chosen {n}x");
        }
    };
    for e in trace.events() {
        match e {
            TraceEvent::Commit { .. } => commits += 1,
            TraceEvent::StreamChosen { stream_id, .. } => match &mut run {
                Some((id, n)) if *id == *stream_id => *n += 1,
                _ => {
                    flush_run(&mut run);
                    run = Some((*stream_id, 1));
                }
            },
            other => {
                flush_run(&mut run);
                println!("{other}");
            }
        }
    }
    flush_run(&mut run);
    println!("... plus {commits} commit events ...");
    println!(
        "\nfinal acc = {}, {} cycles, squashes {} (data {}, control {})",
        res.snapshot.regs[1],
        res.stats.cycles,
        res.stats.squashes,
        res.stats.scc_data_squashes,
        res.stats.scc_control_squashes
    );
}
