//! Quickstart: build a tiny hot loop, run it on the baseline core and on
//! the SCC core, and compare.
//!
//! ```text
//! cargo run --release -p scc-sim --example quickstart
//! ```

use scc_isa::{Cond, ProgramBuilder, Reg};
use scc_pipeline::{Pipeline, PipelineConfig};

fn main() {
    // A hot loop over a read-only table: `acc += (table[0] + 3) << 1`
    // 50,000 times. `table[0]` never changes, so once the value predictor
    // locks on, SCC can fold the whole arithmetic chain away.
    let r = Reg::int;
    let mut b = ProgramBuilder::new(0x1000);
    b.word(0x9000, 17);
    b.mov_imm(r(0), 0x9000); // table base
    b.mov_imm(r(1), 0); // acc
    b.mov_imm(r(2), 50_000); // trip count
    b.align_region();
    let top = b.here();
    b.load(r(3), r(0), 0); // invariant load
    b.add_imm(r(4), r(3), 3); // folds to 20
    b.shl_imm(r(5), r(4), 1); // folds to 40
    b.add(r(1), r(1), r(5)); // live accumulate
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    let program = b.build();

    let mut base = Pipeline::new(&program, PipelineConfig::baseline());
    let base_res = base.run(100_000_000);

    let mut scc = Pipeline::new(&program, PipelineConfig::scc_full());
    let scc_res = scc.run(100_000_000);

    assert_eq!(base_res.snapshot, scc_res.snapshot, "SCC is architecturally invisible");
    println!("result: acc = {}", scc_res.snapshot.regs[1]);
    println!(
        "baseline : {:>9} cycles, {:>9} committed uops (IPC {:.2})",
        base_res.stats.cycles,
        base_res.stats.committed_uops,
        base_res.stats.ipc()
    );
    println!(
        "SCC      : {:>9} cycles, {:>9} committed uops (IPC {:.2})",
        scc_res.stats.cycles,
        scc_res.stats.committed_uops,
        scc_res.stats.ipc()
    );
    println!(
        "speedup  : {:+.1}%   uop reduction: {:+.1}%   streamed from opt partition: {}",
        100.0 * (base_res.stats.cycles as f64 / scc_res.stats.cycles as f64 - 1.0),
        100.0 * (1.0 - scc_res.stats.committed_uops as f64 / base_res.stats.committed_uops as f64),
        scc_res.stats.uops_from_opt,
    );
}
