//! Property-style tests: predictor invariants that must hold for any
//! training sequence, driven by a deterministic SplitMix64 generator (no
//! registry dependencies) so they run identically offline.

use scc_isa::rand_prog::SplitMix64;
use scc_predictors::{
    Bimodal, DirectionPredictor, Eves, GShare, H3vp, LastValue, Stride, TageLite, ValuePredictor,
    MAX_CONFIDENCE,
};

fn all_value_predictors() -> Vec<Box<dyn ValuePredictor>> {
    vec![
        Box::new(LastValue::new()),
        Box::new(Stride::new()),
        Box::new(Eves::default_size()),
        Box::new(H3vp::default_size()),
    ]
}

#[test]
fn value_predictor_confidence_stays_in_range() {
    let mut rng = SplitMix64::new(21);
    for _ in 0..32 {
        let n = 1 + rng.below(199) as usize;
        let values: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
        let pcs: Vec<u64> = (0..n).map(|_| rng.below(8)).collect();
        for mut p in all_value_predictors() {
            for (v, pc) in values.iter().zip(pcs.iter().cycle()) {
                p.train(*pc, *v);
                if let Some(pred) = p.predict(*pc) {
                    assert!(pred.confidence <= MAX_CONFIDENCE);
                }
            }
        }
    }
}

#[test]
fn constant_streams_converge_to_stable_high_confidence() {
    let mut rng = SplitMix64::new(22);
    let mut vals = vec![i64::MIN, -1, 0, 1, i64::MAX];
    vals.extend((0..27).map(|_| rng.next_u64() as i64));
    for v in vals {
        for mut p in all_value_predictors() {
            for _ in 0..32 {
                p.train(9, v);
            }
            let pred = p.predict(9).unwrap_or_else(|| panic!("{} lost a constant", p.name()));
            assert_eq!(pred.value, v, "{} wrong value", p.name());
            assert!(pred.stable, "{} must mark constants stable", p.name());
            assert!(pred.confidence >= 8, "{} low confidence on constant", p.name());
        }
    }
}

#[test]
fn predict_nth_of_constant_is_constant() {
    let mut rng = SplitMix64::new(23);
    for _ in 0..32 {
        let v = rng.next_u64() as i64;
        let n = 1 + rng.below(19);
        for mut p in all_value_predictors() {
            for _ in 0..32 {
                p.train(5, v);
            }
            if let Some(pred) = p.predict_nth(5, n) {
                assert_eq!(pred.value, v, "{} at depth {}", p.name(), n);
            }
        }
    }
}

#[test]
fn h3vp_predict_nth_tracks_oscillation_phase() {
    let mut rng = SplitMix64::new(24);
    for _ in 0..48 {
        let a = rng.next_u64() as i64;
        let b = rng.next_u64() as i64;
        let n = 1 + rng.below(11);
        if a == b {
            continue;
        }
        let mut p = H3vp::default_size();
        for _ in 0..24 {
            p.train(3, a);
            p.train(3, b);
        }
        // Last trained value is `b`; the n-th next value alternates.
        let expect = if n % 2 == 1 { a } else { b };
        let pred = p.predict_nth(3, n).expect("period-2 locked");
        assert_eq!(pred.value, expect, "phase {} of ({}, {})", n, a, b);
    }
}

#[test]
fn direction_predictors_never_panic_and_learn_bias() {
    let mut rng = SplitMix64::new(25);
    for _ in 0..16 {
        let n = 50 + rng.below(250) as usize;
        let outcomes: Vec<bool> = (0..n).map(|_| rng.chance(1, 2)).collect();
        let pc = rng.below(1_000_000);
        let mut preds: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(Bimodal::new(256)),
            Box::new(GShare::new(256, 8)),
            Box::new(TageLite::new(256)),
        ];
        for p in &mut preds {
            for &t in &outcomes {
                let d = p.predict(pc);
                assert!(d.confidence <= 15);
                p.update(pc, t);
            }
        }
        // A fully biased tail must win out.
        for p in &mut preds {
            for _ in 0..64 {
                p.update(pc, true);
            }
            assert!(p.predict(pc).taken, "{} failed to learn bias", p.name());
        }
    }
}

#[test]
fn stride_predictions_advance_linearly() {
    let mut rng = SplitMix64::new(26);
    for _ in 0..48 {
        let start = rng.below(2_000_000) as i64 - 1_000_000;
        let stride = 1 + rng.below(4_999) as i64;
        let n = 1 + rng.below(15);
        let mut p = Eves::default_size();
        for i in 0..24 {
            p.train(7, start + i * stride);
        }
        let pred = p.predict_nth(7, n).expect("stride locked");
        assert_eq!(pred.value, start + 23 * stride + n as i64 * stride);
        assert!(!pred.stable, "nonzero strides are not invariants");
    }
}
