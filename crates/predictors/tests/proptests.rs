//! Property-based tests: predictor invariants that must hold for any
//! training sequence.

use proptest::prelude::*;
use scc_predictors::{
    Bimodal, DirectionPredictor, Eves, GShare, H3vp, LastValue, Stride, TageLite, ValuePredictor,
    MAX_CONFIDENCE,
};

fn all_value_predictors() -> Vec<Box<dyn ValuePredictor>> {
    vec![
        Box::new(LastValue::new()),
        Box::new(Stride::new()),
        Box::new(Eves::default_size()),
        Box::new(H3vp::default_size()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn value_predictor_confidence_stays_in_range(
        values in proptest::collection::vec(any::<i64>(), 1..200),
        pcs in proptest::collection::vec(0u64..8, 1..200),
    ) {
        for mut p in all_value_predictors() {
            for (v, pc) in values.iter().zip(pcs.iter().cycle()) {
                p.train(*pc, *v);
                if let Some(pred) = p.predict(*pc) {
                    prop_assert!(pred.confidence <= MAX_CONFIDENCE);
                }
            }
        }
    }

    #[test]
    fn constant_streams_converge_to_stable_high_confidence(v in any::<i64>()) {
        for mut p in all_value_predictors() {
            for _ in 0..32 {
                p.train(9, v);
            }
            let pred = p.predict(9).unwrap_or_else(|| panic!("{} lost a constant", p.name()));
            prop_assert_eq!(pred.value, v, "{} wrong value", p.name());
            prop_assert!(pred.stable, "{} must mark constants stable", p.name());
            prop_assert!(pred.confidence >= 8, "{} low confidence on constant", p.name());
        }
    }

    #[test]
    fn predict_nth_of_constant_is_constant(v in any::<i64>(), n in 1u64..20) {
        for mut p in all_value_predictors() {
            for _ in 0..32 {
                p.train(5, v);
            }
            if let Some(pred) = p.predict_nth(5, n) {
                prop_assert_eq!(pred.value, v, "{} at depth {}", p.name(), n);
            }
        }
    }

    #[test]
    fn h3vp_predict_nth_tracks_oscillation_phase(
        a in any::<i64>(), b in any::<i64>(), n in 1u64..12,
    ) {
        prop_assume!(a != b);
        let mut p = H3vp::default_size();
        for _ in 0..24 {
            p.train(3, a);
            p.train(3, b);
        }
        // Last trained value is `b`; the n-th next value alternates.
        let expect = if n % 2 == 1 { a } else { b };
        let pred = p.predict_nth(3, n).expect("period-2 locked");
        prop_assert_eq!(pred.value, expect, "phase {} of ({}, {})", n, a, b);
    }

    #[test]
    fn direction_predictors_never_panic_and_learn_bias(
        outcomes in proptest::collection::vec(any::<bool>(), 50..300),
        pc in 0u64..1_000_000,
    ) {
        let mut preds: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(Bimodal::new(256)),
            Box::new(GShare::new(256, 8)),
            Box::new(TageLite::new(256)),
        ];
        for p in &mut preds {
            for &t in &outcomes {
                let d = p.predict(pc);
                prop_assert!(d.confidence <= 15);
                p.update(pc, t);
            }
        }
        // A fully biased tail must win out.
        for p in &mut preds {
            for _ in 0..64 {
                p.update(pc, true);
            }
            prop_assert!(p.predict(pc).taken, "{} failed to learn bias", p.name());
        }
    }

    #[test]
    fn stride_predictions_advance_linearly(start in -1_000_000i64..1_000_000, stride in 1i64..5_000, n in 1u64..16) {
        let mut p = Eves::default_size();
        for i in 0..24 {
            p.train(7, start + i * stride);
        }
        let pred = p.predict_nth(7, n).expect("stride locked");
        prop_assert_eq!(pred.value, start + 23 * stride + n as i64 * stride);
        prop_assert!(!pred.stable, "nonzero strides are not invariants");
    }
}
