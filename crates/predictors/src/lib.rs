//! Branch and value predictors for the SCC reproduction.
//!
//! SCC (Moody et al., MICRO 2022) is *prediction-driven*: the compaction
//! unit probes the branch predictor for speculative control invariants and
//! the value predictor for speculative data invariants, and the
//! profitability analysis unit re-checks predicted invariants against the
//! live predictor state before streaming an optimized line. This crate
//! provides those predictors:
//!
//! * direction predictors — [`Bimodal`], [`GShare`], and [`TageLite`];
//! * a branch target buffer, indirect-target predictor, and return-address
//!   stack, composed with a direction predictor into a
//!   [`BranchPredictorUnit`];
//! * a loop stream detector ([`LoopDetector`]), one of the paper's listed
//!   hint sources;
//! * value predictors — [`LastValue`], [`Stride`], and the two CVP-2019
//!   finalists the paper integrates: [`Eves`] (enhanced stride + context)
//!   and [`H3vp`] (3-period predictor for oscillating patterns).
//!
//! Confidence is reported on the paper's 4-bit scale (0–15) everywhere;
//! the paper's `predictionConfidenceThreshold` flags (15 for baseline value
//! forwarding, 5 for SCC probing) are applied by the *callers*.
//!
//! # Example
//!
//! ```
//! use scc_predictors::{Eves, ValuePredictor};
//!
//! let mut vp = Eves::default_size();
//! for i in 0..32 {
//!     vp.train(0x400, 100 + 8 * i); // a strided load
//! }
//! let p = vp.predict(0x400).expect("stride locked in");
//! assert_eq!(p.value, 100 + 8 * 32);
//! assert!(p.confidence >= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod btb;
mod counter;
mod eves;
mod h3vp;
mod loopdet;
mod loopexit;
mod unit;
mod value;

pub use branch::{Bimodal, DirectionPrediction, DirectionPredictor, GShare, TageLite};
pub use btb::{Btb, IndirectPredictor, ReturnAddressStack};
pub use counter::SatCounter;
pub use eves::Eves;
pub use h3vp::H3vp;
pub use loopdet::LoopDetector;
pub use loopexit::LoopExitPredictor;
pub use unit::{BranchPredictorKind, BranchPredictorUnit, PredictedBranch};
pub use value::{LastValue, Stride, ValuePrediction, ValuePredictor, ValuePredictorKind};

/// Maximum confidence on the paper's 4-bit saturating-counter scale.
pub const MAX_CONFIDENCE: u8 = 15;
