//! H3VP: a 3-period value predictor, after the CVP-2019 entry.
//!
//! The paper describes H3VP as "a 3-period predictor that captures
//! oscillating patterns" and finds it outperforms EVES on xalancbmk, where
//! aggressive speculation pays off. H3VP tracks, per PC, whether the value
//! stream repeats with period 1, 2, or 3 — optionally with a per-phase
//! stride — and predicts from the best-confirmed period. Compared with
//! EVES it builds confidence faster and loses it more slowly, which is
//! exactly the aggressive/conservative contrast Figure 9 sweeps.

use crate::value::{ValuePrediction, ValuePredictor};
use scc_isa::Addr;
use std::collections::HashMap;

const MAX_PERIOD: usize = 3;

#[derive(Clone, Debug)]
struct H3Entry {
    /// Last `2 * MAX_PERIOD` values, most recent first.
    history: [i64; 2 * MAX_PERIOD],
    filled: u8,
    /// Per-period confidence that `v[t] == v[t-p] + stride[p]`.
    confidence: [u8; MAX_PERIOD],
    /// Per-period stride (0 captures pure oscillation).
    stride: [i64; MAX_PERIOD],
}

impl H3Entry {
    fn new() -> H3Entry {
        H3Entry {
            history: [0; 2 * MAX_PERIOD],
            filled: 0,
            confidence: [0; MAX_PERIOD],
            stride: [0; MAX_PERIOD],
        }
    }

    fn push(&mut self, v: i64) {
        self.history.rotate_right(1);
        self.history[0] = v;
        self.filled = (self.filled + 1).min(2 * MAX_PERIOD as u8);
    }

    fn best_period(&self) -> Option<usize> {
        (0..MAX_PERIOD)
            .filter(|&p| self.filled as usize > p)
            .max_by_key(|&p| (self.confidence[p], std::cmp::Reverse(p)))
            .filter(|&p| self.confidence[p] > 0)
    }
}

/// The H3VP value predictor.
#[derive(Clone, Debug)]
pub struct H3vp {
    table: HashMap<Addr, H3Entry>,
    capacity: usize,
}

impl H3vp {
    /// Creates an H3VP bounded to roughly `capacity` tracked PCs.
    pub fn new(capacity: usize) -> H3vp {
        H3vp { table: HashMap::new(), capacity: capacity.max(16) }
    }

    /// Default sizing comparable to the CVP-2019 budget class.
    pub fn default_size() -> H3vp {
        H3vp::new(8192)
    }
}

impl ValuePredictor for H3vp {
    fn predict(&self, pc: Addr) -> Option<ValuePrediction> {
        let e = self.table.get(&pc)?;
        let p = e.best_period()?;
        // Next value repeats (with stride) what happened `p` steps ago:
        // v[t+1] = v[t+1-p] + stride = history[p-1] + stride[p].
        Some(ValuePrediction {
            value: e.history[p].wrapping_add(e.stride[p]),
            confidence: e.confidence[p],
            // A recurring (zero-stride) period means the value is an
            // oscillating invariant; a strided period is a sequence.
            stable: e.stride[p] == 0,
        })
    }

    fn predict_nth(&self, pc: Addr, n: u64) -> Option<ValuePrediction> {
        if n <= 1 {
            return self.predict(pc);
        }
        let e = self.table.get(&pc)?;
        let p = e.best_period()?;
        let period = (p + 1) as u64;
        if e.stride[p] != 0 {
            // Strided periods would need a multiple-of-stride adjustment;
            // they are never adopted as invariants anyway.
            return None;
        }
        // v[t+n] = v[t+n-m*period] for the smallest m with t+n-m*period <= t:
        // index (period - (n % period)) % period into the history.
        let idx = ((period - (n % period)) % period) as usize;
        Some(ValuePrediction { value: e.history[idx], confidence: e.confidence[p], stable: true })
    }

    fn train(&mut self, pc: Addr, actual: i64) {
        if self.table.len() >= self.capacity && !self.table.contains_key(&pc) {
            if let Some(&k) = self.table.keys().next() {
                self.table.remove(&k);
            }
        }
        let e = self.table.entry(pc).or_insert_with(H3Entry::new);
        for p in 0..MAX_PERIOD {
            if (e.filled as usize) < p + 1 {
                continue;
            }
            let base = e.history[p]; // value p+1 steps back after push? see below
            let observed = actual.wrapping_sub(base);
            if observed == e.stride[p] {
                // H3VP is aggressive: +2 per hit, slow decay on miss.
                e.confidence[p] = (e.confidence[p] + 2).min(crate::MAX_CONFIDENCE);
            } else if e.confidence[p] <= 2 {
                // Low confidence: adapt the stride hypothesis immediately.
                e.stride[p] = observed;
                e.confidence[p] = 0;
            } else {
                // Penalty balances the +2 hit reward so patterns that only
                // mostly repeat (e.g. period-4 seen through a period-1
                // lens) cannot ratchet up to full confidence.
                e.confidence[p] = e.confidence[p].saturating_sub(6);
            }
        }
        e.push(actual);
    }

    fn name(&self) -> &'static str {
        "h3vp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_seq(p: &mut H3vp, pc: Addr, seq: &[i64], reps: usize) {
        for _ in 0..reps {
            for &v in seq {
                p.train(pc, v);
            }
        }
    }

    fn accuracy(p: &mut H3vp, pc: Addr, seq: &[i64], probes: usize) -> f64 {
        let mut correct = 0;
        for i in 0..probes {
            let expect = seq[i % seq.len()];
            if let Some(pr) = p.predict(pc) {
                if pr.value == expect {
                    correct += 1;
                }
            }
            p.train(pc, expect);
        }
        correct as f64 / probes as f64
    }

    #[test]
    fn period_1_constant() {
        let mut p = H3vp::default_size();
        train_seq(&mut p, 1, &[42], 10);
        let pr = p.predict(1).unwrap();
        assert_eq!(pr.value, 42);
        assert!(pr.confidence >= 10);
    }

    #[test]
    fn period_2_oscillation() {
        let mut p = H3vp::default_size();
        train_seq(&mut p, 2, &[10, 20], 12);
        let acc = accuracy(&mut p, 2, &[10, 20], 20);
        assert!(acc >= 0.95, "period-2 oscillation accuracy {acc}");
    }

    #[test]
    fn period_3_oscillation() {
        let mut p = H3vp::default_size();
        train_seq(&mut p, 3, &[7, -3, 100], 12);
        let acc = accuracy(&mut p, 3, &[7, -3, 100], 30);
        assert!(acc >= 0.95, "period-3 oscillation accuracy {acc}");
    }

    #[test]
    fn strided_period_1_sequence() {
        let mut p = H3vp::default_size();
        for i in 0..20 {
            p.train(4, i * 8);
        }
        let pr = p.predict(4).unwrap();
        assert_eq!(pr.value, 160);
    }

    #[test]
    fn aggressive_confidence_builds_faster_than_eves() {
        let mut h = H3vp::default_size();
        let mut e = crate::Eves::default_size();
        for _ in 0..4 {
            h.train(9, 5);
            e.train(9, 5);
        }
        let hc = h.predict(9).unwrap().confidence;
        let ec = e.predict(9).map(|p| p.confidence).unwrap_or(0);
        assert!(hc > ec, "h3vp {hc} should out-confidence eves {ec} early");
    }

    #[test]
    fn period_4_is_beyond_reach() {
        // H3VP only tracks periods 1-3; a pure period-4 oscillation with
        // distinct values should not reach high confidence.
        let mut p = H3vp::default_size();
        train_seq(&mut p, 5, &[1, 2, 3, 4], 20);
        if let Some(pr) = p.predict(5) {
            assert!(pr.confidence < 10, "period-4 should stay low-confidence");
        }
    }

    #[test]
    fn capacity_bounded() {
        let mut p = H3vp::new(16);
        for pc in 0..500u64 {
            p.train(pc, 1);
        }
        assert!(p.table.len() <= 16);
    }
}
