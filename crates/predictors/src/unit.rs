//! The composed branch prediction unit used by the fetch engine and SCC.

use crate::branch::{Bimodal, DirectionPredictor, GShare, TageLite};
use crate::btb::{Btb, IndirectPredictor, ReturnAddressStack};
use crate::loopdet::LoopDetector;
use crate::loopexit::LoopExitPredictor;
use scc_isa::{Addr, Op, Uop};

/// Which direction predictor backs the unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BranchPredictorKind {
    /// Per-PC 2-bit counters.
    Bimodal,
    /// Global-history gshare.
    GShare,
    /// TAGE-lite (the default; Table I models an LTAGE-class predictor).
    #[default]
    TageLite,
}

impl std::fmt::Display for BranchPredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BranchPredictorKind::Bimodal => "bimodal",
            BranchPredictorKind::GShare => "gshare",
            BranchPredictorKind::TageLite => "tage-lite",
        };
        f.write_str(s)
    }
}

/// A full branch prediction: direction, target when known, confidence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictedBranch {
    /// Predicted direction (always true for unconditional transfers).
    pub taken: bool,
    /// Predicted next PC; `None` when no target source (BTB/RAS/indirect)
    /// has one.
    pub target: Option<Addr>,
    /// Direction confidence on the 0–15 scale (15 for unconditional
    /// branches with a known target).
    pub confidence: u8,
}

/// Composite branch prediction unit: direction predictor + BTB + indirect
/// predictor + return-address stack + loop stream detector.
///
/// The paper doubles "the prediction width (along with the associated
/// logic) to allow the fetch engine to simultaneously read two predictor
/// entries at once" so SCC can probe while fetch predicts; the energy
/// model charges for that. Here both consumers simply call into this one
/// unit — probes use [`probe`](Self::probe) so they do not perturb stats.
pub struct BranchPredictorUnit {
    direction: Box<dyn DirectionPredictor>,
    btb: Btb,
    indirect: IndirectPredictor,
    ras: ReturnAddressStack,
    loops: LoopDetector,
    loop_exit: LoopExitPredictor,
    lookups: u64,
    mispredicts: u64,
}

impl std::fmt::Debug for BranchPredictorUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchPredictorUnit")
            .field("direction", &self.direction.name())
            .field("lookups", &self.lookups)
            .field("mispredicts", &self.mispredicts)
            .finish_non_exhaustive()
    }
}

impl BranchPredictorUnit {
    /// Creates a unit with the chosen direction predictor at default
    /// Ice Lake-ish sizes.
    pub fn new(kind: BranchPredictorKind) -> BranchPredictorUnit {
        let direction: Box<dyn DirectionPredictor> = match kind {
            BranchPredictorKind::Bimodal => Box::new(Bimodal::new(8192)),
            BranchPredictorKind::GShare => Box::new(GShare::new(8192, 12)),
            BranchPredictorKind::TageLite => Box::new(TageLite::new(2048)),
        };
        BranchPredictorUnit {
            direction,
            btb: Btb::new(4096),
            indirect: IndirectPredictor::new(1024),
            ras: ReturnAddressStack::new(32),
            loops: LoopDetector::default_size(),
            loop_exit: LoopExitPredictor::default_size(),
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Predicts a branch micro-op at fetch. Advances the RAS for
    /// call/return, and counts a lookup.
    pub fn predict(&mut self, uop: &Uop) -> PredictedBranch {
        self.lookups += 1;
        match uop.op {
            Op::Jmp => PredictedBranch { taken: true, target: uop.target, confidence: 15 },
            Op::Call => {
                self.ras.push(uop.next_addr());
                PredictedBranch { taken: true, target: uop.target, confidence: 15 }
            }
            Op::Ret => {
                let t = self.ras.pop();
                PredictedBranch { taken: true, target: t, confidence: if t.is_some() { 15 } else { 0 } }
            }
            Op::JmpInd => {
                let (target, confidence) = match self.indirect.predict(uop.macro_addr) {
                    Some((t, c)) => (Some(t), c),
                    None => (None, 0),
                };
                PredictedBranch { taken: true, target, confidence }
            }
            Op::BrCc | Op::CmpBr => {
                // The loop-exit component (the "L" in L-TAGE) overrides the
                // direction predictor when it confidently knows the trip
                // count; otherwise TAGE decides.
                let (taken, confidence) = match self.loop_exit.predict(uop.macro_addr) {
                    Some(t) => (t, 15),
                    None => {
                        let d = self.direction.predict(uop.macro_addr);
                        (d.taken, d.confidence)
                    }
                };
                let target = if taken {
                    uop.target.or_else(|| self.btb.lookup(uop.macro_addr))
                } else {
                    Some(uop.next_addr())
                };
                PredictedBranch { taken, target, confidence }
            }
            _ => panic!("predict called on non-branch uop {}", uop.op),
        }
    }

    /// Non-mutating probe for SCC's control-invariant identification:
    /// direction + confidence + target, with no stat or RAS side effects.
    pub fn probe(&self, uop: &Uop) -> PredictedBranch {
        match uop.op {
            Op::Jmp | Op::Call => {
                PredictedBranch { taken: true, target: uop.target, confidence: 15 }
            }
            Op::Ret | Op::JmpInd => {
                let (target, confidence) = match self.indirect.predict(uop.macro_addr) {
                    Some((t, c)) => (Some(t), c),
                    None => (None, 0),
                };
                PredictedBranch { taken: true, target, confidence }
            }
            Op::BrCc | Op::CmpBr => {
                let d = self.direction.predict(uop.macro_addr);
                let target = if d.taken {
                    uop.target.or_else(|| self.btb.peek(uop.macro_addr))
                } else {
                    Some(uop.next_addr())
                };
                PredictedBranch { taken: d.taken, target, confidence: d.confidence }
            }
            _ => panic!("probe called on non-branch uop {}", uop.op),
        }
    }

    /// Trains with a resolved branch: actual direction and target.
    /// `was_mispredicted` feeds the unit's accuracy stats.
    pub fn update(&mut self, uop: &Uop, taken: bool, target: Addr, was_mispredicted: bool) {
        if was_mispredicted {
            self.mispredicts += 1;
        }
        match uop.op {
            Op::BrCc | Op::CmpBr => {
                self.direction.update(uop.macro_addr, taken);
                self.loop_exit.update(uop.macro_addr, taken);
                if taken {
                    self.btb.update(uop.macro_addr, target);
                }
            }
            Op::JmpInd | Op::Ret => self.indirect.update(uop.macro_addr, target),
            Op::Jmp | Op::Call => {}
            _ => panic!("update called on non-branch uop {}", uop.op),
        }
        self.loops.observe(uop.macro_addr, target, taken);
    }

    /// The loop stream detector, for fetch and SCC hotness hints.
    pub fn loop_detector(&self) -> &LoopDetector {
        &self.loops
    }

    /// Repairs speculative predictor state (loop-exit iteration counts)
    /// after a squash.
    pub fn on_squash(&mut self) {
        self.loop_exit.on_squash();
    }

    /// The loop-exit component, for tests and reports.
    pub fn loop_exit(&self) -> &LoopExitPredictor {
        &self.loop_exit
    }

    /// (lookups, mispredicts).
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts)
    }

    /// Name of the underlying direction predictor.
    pub fn direction_name(&self) -> &'static str {
        self.direction.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::{Cond, Operand, Reg};

    fn cond_branch(pc: Addr, target: Addr) -> Uop {
        let mut u = Uop::new(Op::CmpBr);
        u.cond = Some(Cond::Ne);
        u.src1 = Operand::Reg(Reg::int(0));
        u.src2 = Operand::Imm(0);
        u.target = Some(target);
        u.macro_addr = pc;
        u.macro_len = 5;
        u
    }

    fn branch(op: Op, pc: Addr, target: Option<Addr>) -> Uop {
        let mut u = Uop::new(op);
        u.target = target;
        u.macro_addr = pc;
        u.macro_len = 5;
        if matches!(op, Op::Ret | Op::JmpInd) {
            u.src1 = Operand::Reg(Reg::int(15));
        }
        if op == Op::Call {
            u.dst = Some(Reg::int(15));
        }
        u
    }

    #[test]
    fn unconditional_jump_is_certain() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::TageLite);
        let j = branch(Op::Jmp, 0x100, Some(0x400));
        let p = bp.predict(&j);
        assert_eq!(p, PredictedBranch { taken: true, target: Some(0x400), confidence: 15 });
    }

    #[test]
    fn call_ret_pair_uses_ras() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::Bimodal);
        let call = branch(Op::Call, 0x100, Some(0x800));
        bp.predict(&call);
        let ret = branch(Op::Ret, 0x810, None);
        let p = bp.predict(&ret);
        assert_eq!(p.target, Some(0x105), "return to call.next_addr()");
        // Second return with empty RAS: no target.
        let p2 = bp.predict(&ret);
        assert_eq!(p2.target, None);
        assert_eq!(p2.confidence, 0);
    }

    #[test]
    fn conditional_branch_trains_toward_taken() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::TageLite);
        let b = cond_branch(0x200, 0x180);
        for _ in 0..50 {
            bp.update(&b, true, 0x180, false);
        }
        let p = bp.predict(&b);
        assert!(p.taken);
        assert_eq!(p.target, Some(0x180));
        assert!(p.confidence >= 10);
    }

    #[test]
    fn not_taken_prediction_targets_fallthrough() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::Bimodal);
        let b = cond_branch(0x200, 0x180);
        for _ in 0..20 {
            bp.update(&b, false, 0x205, false);
        }
        let p = bp.predict(&b);
        assert!(!p.taken);
        assert_eq!(p.target, Some(0x205));
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::TageLite);
        let b = cond_branch(0x300, 0x280);
        bp.update(&b, true, 0x280, false);
        let before = bp.stats();
        let _ = bp.probe(&b);
        let _ = bp.probe(&b);
        assert_eq!(bp.stats(), before, "probes must not count as lookups");
    }

    #[test]
    fn indirect_branch_learns_target() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::GShare);
        let j = branch(Op::JmpInd, 0x500, None);
        assert_eq!(bp.predict(&j).target, None);
        for _ in 0..4 {
            bp.update(&j, true, 0x1234, false);
        }
        let p = bp.predict(&j);
        assert_eq!(p.target, Some(0x1234));
        assert!(p.confidence >= 3);
    }

    #[test]
    fn loop_detector_is_fed() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::TageLite);
        let b = cond_branch(0x240, 0x200);
        for _ in 0..20 {
            bp.update(&b, true, 0x200, false);
        }
        assert!(bp.loop_detector().in_loop());
        assert!(bp.loop_detector().contains(0x220));
    }

    #[test]
    fn mispredict_stats() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::Bimodal);
        let b = cond_branch(0x200, 0x180);
        bp.predict(&b);
        bp.update(&b, true, 0x180, true);
        assert_eq!(bp.stats(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn predict_rejects_alu() {
        let mut bp = BranchPredictorUnit::new(BranchPredictorKind::Bimodal);
        bp.predict(&Uop::new(Op::Add));
    }
}
