//! Loop-exit predictor: the "L" in L-TAGE.
//!
//! Learns the trip count of regular loops and predicts the final,
//! not-taken execution of the loop-ending branch — the one case TAGE's
//! bounded history cannot see for long loops. Iteration counts advance
//! *speculatively* at prediction time (fetch runs ahead of resolution)
//! and are repaired to the committed count on a squash.

use scc_isa::Addr;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    /// Learned trip count hypothesis (taken executions before the exit).
    trip: u32,
    /// Confidence that `trip` repeats (0–3).
    confidence: u8,
    /// Taken executions observed since the last exit (committed).
    committed_count: u32,
    /// Taken executions fetch has speculatively predicted this pass.
    spec_count: u32,
}

/// The loop-exit predictor.
#[derive(Clone, Debug)]
pub struct LoopExitPredictor {
    table: HashMap<Addr, LoopEntry>,
    capacity: usize,
    overrides: u64,
}

impl LoopExitPredictor {
    /// Creates a predictor tracking up to `capacity` loop branches.
    pub fn new(capacity: usize) -> LoopExitPredictor {
        LoopExitPredictor { table: HashMap::new(), capacity: capacity.max(4), overrides: 0 }
    }

    /// Default sizing (64 loops, like LTAGE's loop table).
    pub fn default_size() -> LoopExitPredictor {
        LoopExitPredictor::new(64)
    }

    /// Consulted at fetch for the conditional branch at `pc`. Returns
    /// `Some(false)` when this execution is confidently the loop exit
    /// (predict not-taken), `Some(true)` when confidently another
    /// iteration, and `None` when the predictor has no opinion. Advances
    /// the speculative iteration count.
    pub fn predict(&mut self, pc: Addr) -> Option<bool> {
        let e = self.table.get_mut(&pc)?;
        if e.confidence < 3 || e.trip == 0 {
            return None;
        }
        if e.spec_count + 1 >= e.trip {
            // This instance should fall through; the speculative pass
            // restarts afterwards.
            e.spec_count = 0;
            self.overrides += 1;
            Some(false)
        } else {
            e.spec_count += 1;
            Some(true)
        }
    }

    /// Trains with the resolved direction of the branch at `pc`.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        if self.table.len() >= self.capacity && !self.table.contains_key(&pc) {
            if !taken {
                return; // don't allocate on a one-off not-taken
            }
            if let Some(&k) = self.table.keys().next() {
                self.table.remove(&k);
            }
        }
        let e = self.table.entry(pc).or_default();
        if taken {
            e.committed_count = e.committed_count.saturating_add(1);
        } else {
            // Loop exit: compare the observed trip count.
            let observed = e.committed_count;
            if observed > 0 && observed == e.trip {
                e.confidence = (e.confidence + 1).min(3);
            } else if observed > 0 {
                e.trip = observed;
                e.confidence = 0;
            }
            e.committed_count = 0;
            e.spec_count = 0;
        }
    }

    /// Repairs speculative counts after a squash: fetch restarts from the
    /// committed picture.
    pub fn on_squash(&mut self) {
        for e in self.table.values_mut() {
            e.spec_count = e.committed_count % e.trip.max(1);
        }
    }

    /// How many times the predictor overrode with an exit prediction.
    pub fn overrides(&self) -> u64 {
        self.overrides
    }

    /// The learned trip count for `pc`, if confident (tests/reports).
    pub fn trip_count(&self, pc: Addr) -> Option<u32> {
        self.table.get(&pc).filter(|e| e.confidence >= 3).map(|e| e.trip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_loop(p: &mut LoopExitPredictor, pc: Addr, trips: u32, passes: u32) {
        for _ in 0..passes {
            for _ in 0..trips {
                p.update(pc, true);
            }
            p.update(pc, false);
        }
    }

    #[test]
    fn learns_fixed_trip_counts() {
        let mut p = LoopExitPredictor::default_size();
        assert_eq!(p.trip_count(0x40), None);
        train_loop(&mut p, 0x40, 10, 5);
        assert_eq!(p.trip_count(0x40), Some(10));
    }

    #[test]
    fn predicts_the_exit_exactly() {
        let mut p = LoopExitPredictor::default_size();
        train_loop(&mut p, 0x40, 7, 5);
        // A fresh speculative pass: 6 taken predictions then the exit.
        for i in 0..6 {
            assert_eq!(p.predict(0x40), Some(true), "iteration {i}");
        }
        assert_eq!(p.predict(0x40), Some(false), "the 7th execution exits");
        // And the next pass repeats.
        for _ in 0..6 {
            assert_eq!(p.predict(0x40), Some(true));
        }
        assert_eq!(p.predict(0x40), Some(false));
        assert_eq!(p.overrides(), 2);
    }

    #[test]
    fn irregular_loops_give_no_opinion() {
        let mut p = LoopExitPredictor::default_size();
        // Trip counts 3, 5, 4, 7: never confident.
        for trips in [3u32, 5, 4, 7] {
            for _ in 0..trips {
                p.update(0x80, true);
            }
            p.update(0x80, false);
        }
        assert_eq!(p.predict(0x80), None);
        assert_eq!(p.trip_count(0x80), None);
    }

    #[test]
    fn squash_repairs_speculative_counts() {
        let mut p = LoopExitPredictor::default_size();
        train_loop(&mut p, 0x40, 10, 5);
        // Fetch ran ahead 4 iterations, then squashed with 1 committed.
        for _ in 0..4 {
            let _ = p.predict(0x40);
        }
        p.update(0x40, true); // one iteration committed
        p.on_squash();
        // After repair, 8 more taken predictions before the exit.
        let mut taken = 0;
        while p.predict(0x40) == Some(true) {
            taken += 1;
            assert!(taken < 20, "must terminate");
        }
        assert_eq!(taken, 8, "9 committed-equivalent iterations remain after 1 commit");
    }

    #[test]
    fn trip_count_changes_relearn() {
        let mut p = LoopExitPredictor::default_size();
        train_loop(&mut p, 0x40, 10, 5);
        assert_eq!(p.trip_count(0x40), Some(10));
        train_loop(&mut p, 0x40, 3, 1);
        assert_eq!(p.trip_count(0x40), None, "confidence resets on a new trip count");
        train_loop(&mut p, 0x40, 3, 4);
        assert_eq!(p.trip_count(0x40), Some(3));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut p = LoopExitPredictor::new(8);
        for pc in 0..100u64 {
            p.update(pc, true);
            p.update(pc, false);
        }
        assert!(p.table.len() <= 8);
    }
}
