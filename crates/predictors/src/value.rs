//! Value prediction: trait and the simple baseline predictors.
//!
//! Value prediction is SCC's primary mechanism for identifying speculative
//! data invariants: during compaction, each micro-op whose sources are not
//! already known is looked up in the value predictor, and a sufficiently
//! confident prediction becomes a data invariant (paper §IV).

use scc_isa::Addr;
use std::collections::HashMap;

/// A value prediction with confidence on the paper's 0–15 scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValuePrediction {
    /// Predicted result value of the instruction.
    pub value: i64,
    /// Confidence, 0 (none) to 15 (saturated).
    pub confidence: u8,
    /// True when the predictor's hypothesis implies the value *recurs*
    /// (zero stride, repeating pattern) rather than following a moving
    /// sequence. SCC only adopts recurring predictions as speculative
    /// data invariants — a striding loop counter is confidently
    /// predictable but is the opposite of an invariant.
    pub stable: bool,
}

/// A per-PC value predictor.
///
/// `predict` is non-mutating so SCC can probe it freely during compaction
/// and the profitability unit can re-check invariants against "the current
/// state of the value predictor" (paper §V) without perturbing training.
pub trait ValuePredictor {
    /// Predicts the next result of the instruction at `pc`.
    fn predict(&self, pc: Addr) -> Option<ValuePrediction>;

    /// Predicts the result of the `n`-th next execution of `pc` (`n = 1`
    /// is [`predict`](Self::predict)). Real CVP predictors adjust for
    /// in-flight, not-yet-trained instances exactly this way; SCC's
    /// profitability re-check uses it so a streamed invariant is compared
    /// against the dynamic instance it will actually validate against.
    /// The default is phase-insensitive (returns `predict`).
    fn predict_nth(&self, pc: Addr, n: u64) -> Option<ValuePrediction> {
        let _ = n;
        self.predict(pc)
    }

    /// Trains with the committed result of the instruction at `pc`.
    fn train(&mut self, pc: Addr, actual: i64);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Which value predictor to instantiate — the paper's Figure 9 sensitivity
/// axis plus the simple baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ValuePredictorKind {
    /// Last-value predictor.
    LastValue,
    /// Stride predictor.
    Stride,
    /// EVES (enhanced stride + context), the paper's default
    /// (`--lvpredType=eves`).
    #[default]
    Eves,
    /// H3VP, the 3-period oscillating-pattern predictor.
    H3vp,
}

impl ValuePredictorKind {
    /// Instantiates the predictor at its default size.
    pub fn build(self) -> Box<dyn ValuePredictor> {
        match self {
            ValuePredictorKind::LastValue => Box::new(LastValue::new()),
            ValuePredictorKind::Stride => Box::new(Stride::new()),
            ValuePredictorKind::Eves => Box::new(crate::Eves::default_size()),
            ValuePredictorKind::H3vp => Box::new(crate::H3vp::default_size()),
        }
    }

    /// All kinds, for sweeps.
    pub fn all() -> [ValuePredictorKind; 4] {
        [
            ValuePredictorKind::LastValue,
            ValuePredictorKind::Stride,
            ValuePredictorKind::Eves,
            ValuePredictorKind::H3vp,
        ]
    }
}

impl std::fmt::Display for ValuePredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ValuePredictorKind::LastValue => "last-value",
            ValuePredictorKind::Stride => "stride",
            ValuePredictorKind::Eves => "eves",
            ValuePredictorKind::H3vp => "h3vp",
        };
        f.write_str(s)
    }
}

/// Predicts that an instruction produces the same value it produced last
/// time; confidence builds with repetition.
#[derive(Clone, Debug, Default)]
pub struct LastValue {
    table: HashMap<Addr, (i64, u8)>,
}

impl LastValue {
    /// Creates an empty last-value predictor.
    pub fn new() -> LastValue {
        LastValue::default()
    }
}

impl ValuePredictor for LastValue {
    fn predict(&self, pc: Addr) -> Option<ValuePrediction> {
        self.table
            .get(&pc)
            .map(|&(value, confidence)| ValuePrediction { value, confidence, stable: true })
    }

    fn train(&mut self, pc: Addr, actual: i64) {
        let e = self.table.entry(pc).or_insert((actual, 0));
        if e.0 == actual {
            e.1 = (e.1 + 1).min(crate::MAX_CONFIDENCE);
        } else {
            *e = (actual, 0);
        }
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Classic stride predictor: learns `value[n+1] = value[n] + stride`.
#[derive(Clone, Debug, Default)]
pub struct Stride {
    table: HashMap<Addr, StrideEntry>,
}

#[derive(Clone, Copy, Debug)]
struct StrideEntry {
    last: i64,
    stride: i64,
    confidence: u8,
}

impl Stride {
    /// Creates an empty stride predictor.
    pub fn new() -> Stride {
        Stride::default()
    }
}

impl ValuePredictor for Stride {
    fn predict(&self, pc: Addr) -> Option<ValuePrediction> {
        self.table.get(&pc).map(|e| ValuePrediction {
            value: e.last.wrapping_add(e.stride),
            confidence: e.confidence,
            stable: e.stride == 0,
        })
    }

    fn train(&mut self, pc: Addr, actual: i64) {
        match self.table.get_mut(&pc) {
            Some(e) => {
                let observed = actual.wrapping_sub(e.last);
                if observed == e.stride {
                    e.confidence = (e.confidence + 1).min(crate::MAX_CONFIDENCE);
                } else {
                    e.stride = observed;
                    e.confidence = 0;
                }
                e.last = actual;
            }
            None => {
                self.table.insert(pc, StrideEntry { last: actual, stride: 0, confidence: 0 });
            }
        }
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_constant_stream() {
        let mut p = LastValue::new();
        assert!(p.predict(1).is_none());
        for _ in 0..20 {
            p.train(1, 42);
        }
        let pr = p.predict(1).unwrap();
        assert_eq!(pr.value, 42);
        assert_eq!(pr.confidence, 15);
    }

    #[test]
    fn last_value_change_resets_confidence() {
        let mut p = LastValue::new();
        for _ in 0..10 {
            p.train(1, 42);
        }
        p.train(1, 43);
        let pr = p.predict(1).unwrap();
        assert_eq!(pr.value, 43);
        assert_eq!(pr.confidence, 0);
    }

    #[test]
    fn stride_learns_arithmetic_sequence() {
        let mut p = Stride::new();
        for i in 0..10 {
            p.train(7, i * 8);
        }
        let pr = p.predict(7).unwrap();
        assert_eq!(pr.value, 80);
        assert!(pr.confidence >= 8);
    }

    #[test]
    fn stride_zero_is_last_value() {
        let mut p = Stride::new();
        for _ in 0..5 {
            p.train(7, 99);
        }
        assert_eq!(p.predict(7).unwrap().value, 99);
    }

    #[test]
    fn stride_handles_wrapping() {
        let mut p = Stride::new();
        p.train(3, i64::MAX - 1);
        p.train(3, i64::MAX);
        let pr = p.predict(3).unwrap();
        assert_eq!(pr.value, i64::MIN); // wraps, never panics
    }

    #[test]
    fn kinds_build_and_name() {
        for k in ValuePredictorKind::all() {
            let p = k.build();
            assert!(!p.name().is_empty());
            assert!(!k.to_string().is_empty());
        }
        assert_eq!(ValuePredictorKind::default(), ValuePredictorKind::Eves);
    }

    #[test]
    fn separate_pcs_are_independent() {
        let mut p = LastValue::new();
        p.train(1, 10);
        p.train(2, 20);
        assert_eq!(p.predict(1).unwrap().value, 10);
        assert_eq!(p.predict(2).unwrap().value, 20);
    }
}
