//! Saturating counters, the currency of confidence tracking.

/// A saturating up/down counter with a configurable ceiling.
///
/// The paper uses 4-bit saturating counters ("allowing us to track a large
/// spectrum of confidence levels") per predicted invariant in the optimized
/// micro-op cache partition's tag array; predictors use 2- and 3-bit
/// variants internally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates a counter at zero saturating at `max`.
    pub fn new(max: u8) -> SatCounter {
        SatCounter { value: 0, max }
    }

    /// Creates the paper's 4-bit confidence counter (saturates at 15).
    pub fn four_bit() -> SatCounter {
        SatCounter::new(crate::MAX_CONFIDENCE)
    }

    /// Creates a classic 2-bit counter initialized to weakly-not-taken (1).
    pub fn two_bit() -> SatCounter {
        SatCounter { value: 1, max: 3 }
    }

    /// Creates a counter at a given starting value.
    ///
    /// # Panics
    ///
    /// Panics if `value > max`.
    pub fn with_value(value: u8, max: u8) -> SatCounter {
        assert!(value <= max, "counter value {value} above ceiling {max}");
        SatCounter { value, max }
    }

    /// Current value.
    pub fn get(self) -> u8 {
        self.value
    }

    /// Ceiling.
    pub fn max(self) -> u8 {
        self.max
    }

    /// Increments, saturating at the ceiling.
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    pub fn dec(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Decrements by `n`, saturating at zero — used by the profitability
    /// unit to penalize misbehaving streams faster than it rewards.
    pub fn dec_by(&mut self, n: u8) {
        self.value = self.value.saturating_sub(n);
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// True when at or above the midpoint (the classic "predict taken"
    /// test for 2-bit counters).
    pub fn is_high(self) -> bool {
        self.value > self.max / 2
    }

    /// True when saturated.
    pub fn is_saturated(self) -> bool {
        self.value == self.max
    }

    /// Confidence rescaled to the paper's 0–15 range, regardless of the
    /// counter's native width.
    pub fn confidence(self) -> u8 {
        if self.max == 0 {
            0
        } else {
            ((self.value as u16 * crate::MAX_CONFIDENCE as u16) / self.max as u16) as u8
        }
    }
}

impl Default for SatCounter {
    fn default() -> SatCounter {
        SatCounter::four_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SatCounter::new(3);
        c.dec();
        assert_eq!(c.get(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.get(), 3);
        assert!(c.is_saturated());
    }

    #[test]
    fn two_bit_midpoint() {
        let mut c = SatCounter::two_bit();
        assert!(!c.is_high(), "weakly-not-taken starts low");
        c.inc();
        assert!(c.is_high());
    }

    #[test]
    fn dec_by_clamps() {
        let mut c = SatCounter::with_value(3, 15);
        c.dec_by(10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn confidence_rescales() {
        assert_eq!(SatCounter::with_value(3, 3).confidence(), 15);
        assert_eq!(SatCounter::with_value(0, 3).confidence(), 0);
        assert_eq!(SatCounter::with_value(7, 7).confidence(), 15);
        assert_eq!(SatCounter::with_value(15, 15).confidence(), 15);
        assert!(SatCounter::with_value(1, 3).confidence() >= 5);
    }

    #[test]
    #[should_panic(expected = "above ceiling")]
    fn with_value_validates() {
        let _ = SatCounter::with_value(4, 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = SatCounter::with_value(9, 15);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
