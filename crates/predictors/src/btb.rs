//! Branch target buffer, indirect-target predictor, and return-address
//! stack.

use scc_isa::Addr;

/// A tagged, direct-mapped branch target buffer.
///
/// The fetch engine needs a target before the branch decodes; SCC's
/// control-invariant identification also needs the *predicted target* to
/// pivot compaction across basic blocks.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(Addr, Addr)>>, // (branch pc, target)
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Btb {
        Btb { entries: vec![None; entries.next_power_of_two().max(2)], hits: 0, misses: 0 }
    }

    fn idx(&self, pc: Addr) -> usize {
        (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & (self.entries.len() - 1)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: Addr) -> Option<Addr> {
        match self.entries[self.idx(pc)] {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                Some(target)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-counting peek, for SCC probes that should not perturb stats.
    pub fn peek(&self, pc: Addr) -> Option<Addr> {
        match self.entries[self.idx(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs or updates the target for the branch at `pc`.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let i = self.idx(pc);
        self.entries[i] = Some((pc, target));
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Last-target indirect branch predictor (per-PC).
#[derive(Clone, Debug)]
pub struct IndirectPredictor {
    entries: Vec<Option<(Addr, Addr, u8)>>, // (pc, target, confidence)
}

impl IndirectPredictor {
    /// Creates an indirect predictor with `entries` slots.
    pub fn new(entries: usize) -> IndirectPredictor {
        IndirectPredictor { entries: vec![None; entries.next_power_of_two().max(2)] }
    }

    fn idx(&self, pc: Addr) -> usize {
        (pc.wrapping_mul(0xD6E8_FEB8_6659_FD93) >> 13) as usize & (self.entries.len() - 1)
    }

    /// Predicted target and 0–15 confidence for the indirect branch at
    /// `pc`.
    pub fn predict(&self, pc: Addr) -> Option<(Addr, u8)> {
        match self.entries[self.idx(pc)] {
            Some((tag, target, conf)) if tag == pc => Some((target, conf)),
            _ => None,
        }
    }

    /// Trains with the resolved target.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let i = self.idx(pc);
        match &mut self.entries[i] {
            Some((tag, t, conf)) if *tag == pc => {
                if *t == target {
                    *conf = (*conf + 1).min(crate::MAX_CONFIDENCE);
                } else {
                    *t = target;
                    *conf = 0;
                }
            }
            e => *e = Some((pc, target, 0)),
        }
    }
}

/// A bounded return-address stack.
///
/// Overflow wraps (oldest entry lost), underflow returns `None`; both
/// match hardware RAS behaviour under deep recursion.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<Addr>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        ReturnAddressStack { stack: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Pushes a return address (on call).
    pub fn push(&mut self, addr: Addr) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address (on return).
    pub fn pop(&mut self) -> Option<Addr> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_hit_after_update() {
        let mut btb = Btb::new(64);
        assert_eq!(btb.lookup(0x100), None);
        btb.update(0x100, 0x400);
        assert_eq!(btb.lookup(0x100), Some(0x400));
        assert_eq!(btb.peek(0x100), Some(0x400));
        assert_eq!(btb.stats(), (1, 1));
    }

    #[test]
    fn btb_tag_rejects_aliases() {
        let mut btb = Btb::new(2);
        btb.update(0x100, 0x400);
        // Find an aliasing pc that maps to the same index but has a
        // different tag; with 2 entries most PCs alias.
        let alias = (0..0x10000u64)
            .map(|i| 0x104 + i * 4)
            .find(|&pc| {
                let i1 = (0x100u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & 1;
                let i2 = (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & 1;
                i1 == i2
            })
            .unwrap();
        assert_eq!(btb.peek(alias), None, "aliased lookup must miss on tag");
    }

    #[test]
    fn indirect_confidence_builds_and_resets() {
        let mut ip = IndirectPredictor::new(32);
        assert_eq!(ip.predict(0x50), None);
        for _ in 0..5 {
            ip.update(0x50, 0x900);
        }
        let (t, c) = ip.predict(0x50).unwrap();
        assert_eq!(t, 0x900);
        assert_eq!(c, 4);
        ip.update(0x50, 0xA00);
        let (t, c) = ip.predict(0x50).unwrap();
        assert_eq!(t, 0xA00);
        assert_eq!(c, 0, "target change resets confidence");
    }

    #[test]
    fn ras_lifo_and_overflow() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // evicts 1
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }
}
