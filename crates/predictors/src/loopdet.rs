//! Loop stream detector.
//!
//! Intel front-ends detect short hot loops and stream them from the IDQ
//! without re-fetching; the paper lists the loop stream detector among the
//! hint sources SCC consults ("leveraging hints from in-processor features
//! such as the branch predictor, loop stream detector, and value
//! predictor"). Here it (a) tells the fetch engine a loop is streaming and
//! (b) gives SCC a strong hotness hint for the loop body's regions.

use scc_isa::Addr;

/// Tracks backward taken branches to detect steady loops.
#[derive(Clone, Debug)]
pub struct LoopDetector {
    /// (branch pc, target) of the candidate loop-ending branch.
    candidate: Option<(Addr, Addr)>,
    /// Consecutive taken occurrences of the candidate.
    streak: u32,
    /// Streak needed to declare a loop.
    threshold: u32,
    /// Loop body size limit in bytes (IDQ-streamable loops are small).
    max_body_bytes: u64,
}

impl LoopDetector {
    /// Creates a detector that declares a loop after `threshold`
    /// consecutive iterations of a backward branch spanning at most
    /// `max_body_bytes`.
    pub fn new(threshold: u32, max_body_bytes: u64) -> LoopDetector {
        LoopDetector { candidate: None, streak: 0, threshold, max_body_bytes }
    }

    /// Default sizing: 16 iterations, 256-byte bodies.
    pub fn default_size() -> LoopDetector {
        LoopDetector::new(16, 256)
    }

    /// Observes a resolved branch.
    pub fn observe(&mut self, pc: Addr, target: Addr, taken: bool) {
        let backward = taken && target < pc && pc - target <= self.max_body_bytes;
        match (backward, self.candidate) {
            (true, Some((cpc, ctgt))) if cpc == pc && ctgt == target => {
                self.streak = self.streak.saturating_add(1);
            }
            (true, _) => {
                self.candidate = Some((pc, target));
                self.streak = 1;
            }
            (false, Some((cpc, _))) if cpc == pc => {
                // The candidate fell through: loop exit.
                self.candidate = None;
                self.streak = 0;
            }
            _ => {}
        }
    }

    /// True once a loop is confidently detected.
    pub fn in_loop(&self) -> bool {
        self.streak >= self.threshold
    }

    /// The detected loop's `(branch pc, target)`, if streaming.
    pub fn loop_bounds(&self) -> Option<(Addr, Addr)> {
        self.in_loop().then_some(self.candidate).flatten()
    }

    /// True if `addr` lies inside the detected loop body.
    pub fn contains(&self, addr: Addr) -> bool {
        self.loop_bounds().is_some_and(|(pc, tgt)| addr >= tgt && addr <= pc)
    }

    /// Current iteration streak (SCC hotness hint).
    pub fn streak(&self) -> u32 {
        self.streak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_steady_loop() {
        let mut d = LoopDetector::new(4, 256);
        for _ in 0..3 {
            d.observe(0x140, 0x100, true);
            assert!(!d.in_loop());
        }
        d.observe(0x140, 0x100, true);
        assert!(d.in_loop());
        assert_eq!(d.loop_bounds(), Some((0x140, 0x100)));
        assert!(d.contains(0x120));
        assert!(!d.contains(0x180));
    }

    #[test]
    fn exit_clears_detection() {
        let mut d = LoopDetector::new(2, 256);
        d.observe(0x140, 0x100, true);
        d.observe(0x140, 0x100, true);
        assert!(d.in_loop());
        d.observe(0x140, 0x100, false);
        assert!(!d.in_loop());
        assert_eq!(d.streak(), 0);
    }

    #[test]
    fn forward_branches_ignored() {
        let mut d = LoopDetector::new(1, 256);
        for _ in 0..10 {
            d.observe(0x100, 0x200, true);
        }
        assert!(!d.in_loop());
    }

    #[test]
    fn oversized_bodies_ignored() {
        let mut d = LoopDetector::new(1, 64);
        for _ in 0..10 {
            d.observe(0x1000, 0x100, true);
        }
        assert!(!d.in_loop());
    }

    #[test]
    fn new_candidate_replaces_old() {
        let mut d = LoopDetector::new(3, 256);
        d.observe(0x140, 0x100, true);
        d.observe(0x240, 0x200, true); // different loop
        assert_eq!(d.streak(), 1);
        d.observe(0x240, 0x200, true);
        d.observe(0x240, 0x200, true);
        assert!(d.in_loop());
        assert_eq!(d.loop_bounds(), Some((0x240, 0x200)));
    }
}
