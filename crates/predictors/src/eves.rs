//! EVES: Enhanced VTAGE + Enhanced Stride, after Seznec's CVP-2019 entry.
//!
//! The paper uses EVES as its default value predictor
//! (`--lvpredType=eves`) and reports that it "provides better performance
//! with SCC by avoiding expensive squash penalties" on applications like
//! gcc, because its confidence estimation is conservative.
//!
//! This implementation keeps EVES's architecture — an enhanced stride
//! component for arithmetic sequences plus a context component keyed on
//! local value history for repeating (non-arithmetic) sequences, with the
//! more confident component providing the prediction — while simplifying
//! the probabilistic confidence-update machinery to deterministic
//! counters with asymmetric penalties (a misprediction costs far more
//! confidence than a correct prediction earns), which is the property the
//! paper's sensitivity study actually exercises.

use crate::value::{ValuePrediction, ValuePredictor};
use scc_isa::Addr;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
struct EStrideEntry {
    last: i64,
    stride: i64,
    confidence: u8,
}

#[derive(Clone, Debug, Default)]
struct ContextEntry {
    /// Last few committed values, most recent first.
    history: [i64; 4],
    filled: u8,
    /// Pattern table: hash of value history -> (predicted value, conf).
    patterns: HashMap<u64, (i64, u8)>,
}

impl ContextEntry {
    fn history_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in &self.history {
            h = (h ^ *v as u64).wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn push(&mut self, v: i64) {
        self.history.rotate_right(1);
        self.history[0] = v;
        self.filled = (self.filled + 1).min(4);
    }
}

/// The EVES value predictor.
#[derive(Clone, Debug)]
pub struct Eves {
    stride: HashMap<Addr, EStrideEntry>,
    context: HashMap<Addr, ContextEntry>,
    capacity: usize,
    /// Confidence lost on a stride mispredict (EVES is conservative).
    mispredict_penalty: u8,
}

impl Eves {
    /// Creates an EVES predictor bounded to roughly `capacity` tracked PCs
    /// per component.
    pub fn new(capacity: usize) -> Eves {
        Eves {
            stride: HashMap::new(),
            context: HashMap::new(),
            capacity: capacity.max(16),
            mispredict_penalty: 8,
        }
    }

    /// Default sizing comparable to the CVP-2019 budget class.
    pub fn default_size() -> Eves {
        Eves::new(8192)
    }

    fn evict_if_full<V>(map: &mut HashMap<Addr, V>, capacity: usize, pc: Addr) {
        if map.len() >= capacity && !map.contains_key(&pc) {
            // Random-ish eviction: drop an arbitrary entry. Hardware would
            // use set-indexed replacement; the aggregate effect (bounded
            // capacity, occasional loss of a tracked PC) is the same.
            if let Some(&k) = map.keys().next() {
                map.remove(&k);
            }
        }
    }
}

impl ValuePredictor for Eves {
    fn predict(&self, pc: Addr) -> Option<ValuePrediction> {
        let s = self.stride.get(&pc).map(|e| ValuePrediction {
            value: e.last.wrapping_add(e.stride),
            confidence: e.confidence,
            stable: e.stride == 0,
        });
        let c = self.context.get(&pc).and_then(|e| {
            if e.filled < 4 {
                return None;
            }
            e.patterns.get(&e.history_hash()).map(|&(value, confidence)| ValuePrediction {
                value,
                confidence,
                // A context prediction is only invariant-like when it says
                // the value *repeats*; sequence-following predictions
                // (value != last) go stale before a stream can use them.
                stable: value == e.history[0],
            })
        });
        // The more confident component provides; stride wins ties (it is
        // cheaper to validate and EVES gives it priority).
        match (s, c) {
            (Some(s), Some(c)) if c.confidence > s.confidence => Some(c),
            (Some(s), _) => Some(s),
            (None, c) => c,
        }
    }

    fn predict_nth(&self, pc: Addr, n: u64) -> Option<ValuePrediction> {
        if n <= 1 {
            return self.predict(pc);
        }
        let base = self.predict(pc)?;
        if base.stable {
            // Constant hypotheses predict the same value at any depth.
            return Some(base);
        }
        // Stride hypotheses advance linearly with depth.
        self.stride.get(&pc).map(|e| ValuePrediction {
            value: e.last.wrapping_add(e.stride.wrapping_mul(n as i64)),
            confidence: e.confidence,
            stable: false,
        })
    }

    fn train(&mut self, pc: Addr, actual: i64) {
        // Enhanced stride component.
        Self::evict_if_full(&mut self.stride, self.capacity, pc);
        match self.stride.get_mut(&pc) {
            Some(e) => {
                let observed = actual.wrapping_sub(e.last);
                if observed == e.stride {
                    e.confidence = (e.confidence + 1).min(crate::MAX_CONFIDENCE);
                } else {
                    // Asymmetric: lose confidence fast, relearn the stride.
                    e.confidence = e.confidence.saturating_sub(self.mispredict_penalty);
                    e.stride = observed;
                }
                e.last = actual;
            }
            None => {
                self.stride.insert(pc, EStrideEntry { last: actual, stride: 0, confidence: 0 });
            }
        }
        // Context (enhanced VTAGE-ish) component.
        Self::evict_if_full(&mut self.context, self.capacity, pc);
        let e = self.context.entry(pc).or_default();
        if e.filled >= 4 {
            let h = e.history_hash();
            let slot = e.patterns.entry(h).or_insert((actual, 0));
            if slot.0 == actual {
                slot.1 = (slot.1 + 1).min(crate::MAX_CONFIDENCE);
            } else {
                *slot = (actual, 0);
            }
            // Bound the per-PC pattern table.
            if e.patterns.len() > 64 {
                if let Some(&k) = e.patterns.keys().next() {
                    e.patterns.remove(&k);
                }
            }
        }
        e.push(actual);
    }

    fn name(&self) -> &'static str {
        "eves"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_strides_quickly() {
        let mut p = Eves::default_size();
        for i in 0..12 {
            p.train(0x10, 1000 + i * 24);
        }
        let pr = p.predict(0x10).unwrap();
        assert_eq!(pr.value, 1000 + 12 * 24);
        assert!(pr.confidence >= 10);
    }

    #[test]
    fn constant_values_predicted() {
        let mut p = Eves::default_size();
        for _ in 0..8 {
            p.train(0x20, -7);
        }
        let pr = p.predict(0x20).unwrap();
        assert_eq!(pr.value, -7);
    }

    #[test]
    fn mispredict_penalty_is_asymmetric() {
        let mut p = Eves::default_size();
        for i in 0..15 {
            p.train(0x30, i);
        }
        let before = p.predict(0x30).unwrap().confidence;
        p.train(0x30, 1_000_000); // break the stride
        // Re-query: stride component confidence collapsed.
        let after = p
            .predict(0x30)
            .map(|pr| pr.confidence)
            .unwrap_or(0);
        assert!(after + 6 <= before, "penalty should be steep: {before} -> {after}");
    }

    #[test]
    fn context_component_learns_repeating_sequence() {
        // 5, 9, 2, 7 repeating: no consistent stride, but the 4-deep local
        // history uniquely determines the next value.
        let seq = [5i64, 9, 2, 7];
        let mut p = Eves::default_size();
        for i in 0..64 {
            p.train(0x40, seq[i % 4]);
        }
        // After training, whatever the phase, prediction should be correct
        // for the next element.
        let mut correct = 0;
        for i in 64..80 {
            if let Some(pr) = p.predict(0x40) {
                if pr.value == seq[i % 4] && pr.confidence >= 5 {
                    correct += 1;
                }
            }
            p.train(0x40, seq[i % 4]);
        }
        assert!(correct >= 14, "context should nail a period-4 pattern, got {correct}/16");
    }

    #[test]
    fn capacity_is_bounded() {
        let mut p = Eves::new(32);
        for pc in 0..1000u64 {
            p.train(pc, pc as i64);
        }
        assert!(p.stride.len() <= 32);
        assert!(p.context.len() <= 32);
    }

    #[test]
    fn untrained_pc_predicts_nothing() {
        let p = Eves::default_size();
        assert!(p.predict(0xdead).is_none());
    }
}
