//! Branch direction predictors: bimodal, gshare, and a TAGE-lite.

use crate::counter::SatCounter;
use scc_isa::Addr;

/// A direction prediction with confidence on the 0–15 scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectionPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Confidence, 0 (none) to 15 (saturated).
    pub confidence: u8,
}

/// A conditional-branch direction predictor.
///
/// History is maintained inside the predictor and advanced at
/// [`update`](Self::update) time (i.e. with committed outcomes). This is a
/// deliberate simplification over fetch-time speculative history with
/// repair; the paper itself leans on the fact that SCC probes predictors
/// "based on the current execution state" and re-validates at streaming
/// time.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&self, pc: Addr) -> DirectionPrediction;

    /// Trains with the resolved outcome of the branch at `pc`.
    fn update(&mut self, pc: Addr, taken: bool);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

fn hash_pc(pc: Addr) -> u64 {
    // Branch PCs are byte addresses with low entropy in the low bits; mix.
    let x = pc.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^ (x >> 29)
}

/// Classic per-PC 2-bit-counter predictor.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<SatCounter>,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters (rounded up to a
    /// power of two).
    pub fn new(entries: usize) -> Bimodal {
        let n = entries.next_power_of_two().max(2);
        Bimodal { table: vec![SatCounter::two_bit(); n] }
    }

    fn idx(&self, pc: Addr) -> usize {
        (hash_pc(pc) as usize) & (self.table.len() - 1)
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: Addr) -> DirectionPrediction {
        let c = self.table[self.idx(pc)];
        DirectionPrediction {
            taken: c.is_high(),
            // Map counter extremity onto 0-15: strong states are confident.
            confidence: match c.get() {
                0 | 3 => 12,
                _ => 4,
            },
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.idx(pc);
        if taken {
            self.table[i].inc();
        } else {
            self.table[i].dec();
        }
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// Gshare: global history XOR PC indexing into 2-bit counters.
#[derive(Clone, Debug)]
pub struct GShare {
    table: Vec<SatCounter>,
    ghr: u64,
    hist_bits: u32,
}

impl GShare {
    /// Creates a gshare predictor with `entries` counters and
    /// `hist_bits` bits of global history.
    pub fn new(entries: usize, hist_bits: u32) -> GShare {
        let n = entries.next_power_of_two().max(2);
        GShare { table: vec![SatCounter::two_bit(); n], ghr: 0, hist_bits: hist_bits.min(63) }
    }

    fn idx(&self, pc: Addr) -> usize {
        let h = self.ghr & ((1 << self.hist_bits) - 1);
        ((hash_pc(pc) ^ h) as usize) & (self.table.len() - 1)
    }
}

impl DirectionPredictor for GShare {
    fn predict(&self, pc: Addr) -> DirectionPrediction {
        let c = self.table[self.idx(pc)];
        DirectionPrediction {
            taken: c.is_high(),
            confidence: match c.get() {
                0 | 3 => 12,
                _ => 4,
            },
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.idx(pc);
        if taken {
            self.table[i].inc();
        } else {
            self.table[i].dec();
        }
        self.ghr = (self.ghr << 1) | taken as u64;
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// One tagged TAGE component.
#[derive(Clone, Debug)]
struct TageTable {
    entries: Vec<TageEntry>,
    hist_len: u32,
}

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    tag: u16,
    /// Signed 3-bit counter in [-4, 3]; >= 0 predicts taken.
    ctr: i8,
    useful: u8,
}

/// A compact TAGE-style predictor: a bimodal base plus four tagged tables
/// with geometric history lengths, the class of predictor in Ice Lake-era
/// front-ends (Table I's branch predictor row).
#[derive(Clone, Debug)]
pub struct TageLite {
    base: Bimodal,
    tables: Vec<TageTable>,
    ghr: u64,
    tick: u32,
}

impl TageLite {
    /// Creates a TAGE-lite with per-table `entries` (rounded to a power of
    /// two) and history lengths 4, 8, 16, 32.
    pub fn new(entries: usize) -> TageLite {
        let n = entries.next_power_of_two().max(2);
        TageLite {
            base: Bimodal::new(n * 2),
            tables: [4u32, 8, 16, 32]
                .into_iter()
                .map(|hist_len| TageTable {
                    entries: vec![TageEntry::default(); n],
                    hist_len,
                })
                .collect(),
            ghr: 0,
            tick: 0,
        }
    }

    fn fold_history(&self, bits: u32, out_bits: u32) -> u64 {
        let mut h = self.ghr & if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut folded = 0u64;
        while h != 0 {
            folded ^= h & ((1 << out_bits) - 1);
            h >>= out_bits;
        }
        folded
    }

    fn index(&self, t: usize, pc: Addr) -> usize {
        let table = &self.tables[t];
        let bits = table.entries.len().trailing_zeros();
        let h = self.fold_history(table.hist_len, bits);
        ((hash_pc(pc) ^ h ^ (t as u64).wrapping_mul(0x5851_F42D)) as usize)
            & (table.entries.len() - 1)
    }

    fn tag(&self, t: usize, pc: Addr) -> u16 {
        let h = self.fold_history(self.tables[t].hist_len, 8);
        ((hash_pc(pc) >> 7) as u16 ^ (h as u16) ^ (t as u16 * 0x9D)) & 0xFF | 0x100
    }

    /// The provider component (longest history with a tag hit), if any.
    fn provider(&self, pc: Addr) -> Option<(usize, usize)> {
        (0..self.tables.len()).rev().find_map(|t| {
            let i = self.index(t, pc);
            (self.tables[t].entries[i].tag == self.tag(t, pc)).then_some((t, i))
        })
    }
}

impl DirectionPredictor for TageLite {
    fn predict(&self, pc: Addr) -> DirectionPrediction {
        if let Some((t, i)) = self.provider(pc) {
            let e = self.tables[t].entries[i];
            DirectionPrediction {
                taken: e.ctr >= 0,
                // |2c+1| magnitude in [1,7] scaled to 0-15.
                confidence: (((2 * e.ctr as i32 + 1).unsigned_abs() * 15) / 7) as u8,
            }
        } else {
            self.base.predict(pc)
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let provider = self.provider(pc);
        let pred = self.predict(pc).taken;
        match provider {
            Some((t, i)) => {
                let e = &mut self.tables[t].entries[i];
                if taken {
                    e.ctr = (e.ctr + 1).min(3);
                } else {
                    e.ctr = (e.ctr - 1).max(-4);
                }
                if pred == taken {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
            None => self.base.update(pc, taken),
        }
        // Allocate a longer-history entry on a misprediction.
        if pred != taken {
            let start = provider.map_or(0, |(t, _)| t + 1);
            let mut allocated = false;
            for t in start..self.tables.len() {
                let i = self.index(t, pc);
                let tag = self.tag(t, pc);
                let e = &mut self.tables[t].entries[i];
                if e.useful == 0 {
                    *e = TageEntry { tag, ctr: if taken { 0 } else { -1 }, useful: 0 };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Periodically age useful bits so allocation can't starve.
                self.tick += 1;
                if self.tick.is_multiple_of(64) {
                    for t in &mut self.tables {
                        for e in &mut t.entries {
                            e.useful = e.useful.saturating_sub(1);
                        }
                    }
                }
            }
        }
        if provider.is_some() {
            // Keep the base warm as fallback.
            self.base.update(pc, taken);
        }
        self.ghr = (self.ghr << 1) | taken as u64;
    }

    fn name(&self) -> &'static str {
        "tage-lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy<P: DirectionPredictor>(p: &mut P, seq: impl Iterator<Item = (Addr, bool)>) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (pc, taken) in seq {
            if p.predict(pc).taken == taken {
                correct += 1;
            }
            p.update(pc, taken);
            total += 1;
        }
        correct as f64 / total as f64
    }

    #[test]
    fn bimodal_learns_biased_branch() {
        let mut p = Bimodal::new(256);
        let acc = accuracy(&mut p, (0..1000).map(|_| (0x40u64, true)));
        assert!(acc > 0.99, "always-taken should be near-perfect, got {acc}");
    }

    #[test]
    fn bimodal_confidence_reflects_strength() {
        let mut p = Bimodal::new(64);
        for _ in 0..8 {
            p.update(0x10, true);
        }
        assert!(p.predict(0x10).confidence >= 12);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // T,N,T,N is hopeless for bimodal but trivial with history.
        let mut g = GShare::new(1024, 8);
        let acc = accuracy(&mut g, (0..2000).map(|i| (0x80u64, i % 2 == 0)));
        assert!(acc > 0.9, "gshare should learn alternation, got {acc}");
        let mut b = Bimodal::new(1024);
        let acc_b = accuracy(&mut b, (0..2000).map(|i| (0x80u64, i % 2 == 0)));
        assert!(acc_b < 0.7, "bimodal cannot learn alternation, got {acc_b}");
    }

    #[test]
    fn tage_learns_long_period_pattern() {
        // Period-7 loop-exit pattern: 6 taken then 1 not-taken.
        let mut t = TageLite::new(1024);
        let acc = accuracy(&mut t, (0..8000).map(|i| (0x33u64, i % 7 != 6)));
        assert!(acc > 0.93, "tage should learn period-7, got {acc}");
    }

    #[test]
    fn tage_beats_bimodal_on_correlated_branches() {
        // Branch B follows branch A's last outcome.
        let seq = |n: usize| {
            (0..n).flat_map(|i| {
                let a = (i / 3) % 2 == 0;
                [(0x100u64, a), (0x200u64, a)]
            })
        };
        let mut t = TageLite::new(1024);
        let mut b = Bimodal::new(2048);
        let at = accuracy(&mut t, seq(4000));
        let ab = accuracy(&mut b, seq(4000));
        assert!(at > ab, "tage {at} should beat bimodal {ab}");
    }

    #[test]
    fn predictors_handle_many_pcs() {
        let mut t = TageLite::new(256);
        for pc in (0..4096u64).step_by(4) {
            t.update(pc, pc % 8 == 0);
        }
        // Just exercise aliasing paths; no panic and sane outputs.
        let p = t.predict(0x40);
        assert!(p.confidence <= 15);
    }

    #[test]
    fn names() {
        assert_eq!(Bimodal::new(2).name(), "bimodal");
        assert_eq!(GShare::new(2, 4).name(), "gshare");
        assert_eq!(TageLite::new(2).name(), "tage-lite");
    }
}
