//! McPAT-like event-based energy and area model for the SCC reproduction.
//!
//! The paper models power with McPAT and area with CACTI on a 2.4 GHz
//! Ice Lake-class core, reporting chip-wide energy (Figure 8) and the SCC
//! additions' overheads: **1.5 % area and 0.62 % peak power** (§VII-B).
//! Neither tool is available here, so this crate substitutes an
//! analytical model: each microarchitectural event carries a fixed energy
//! (values chosen to preserve McPAT's *relative* magnitudes — an
//! instruction-cache access costs ~5× a micro-op cache access, DRAM ~60×
//! an L1 hit, and the out-of-order backend dominates per-instruction
//! energy), plus a static (leakage + clock) power charged per cycle.
//! Figure 8's shape falls out of exactly these relativities: SCC saves
//! energy by (a) eliminating micro-ops that would otherwise traverse
//! rename/scheduler/execute/commit and (b) converting instruction-cache
//! traffic into micro-op cache hits.
//!
//! # Example
//!
//! ```
//! use scc_energy::{EnergyEvents, EnergyModel};
//!
//! let model = EnergyModel::icelake();
//! let mut ev = EnergyEvents::default();
//! ev.cycles = 1_000;
//! ev.committed_uops = 2_000;
//! ev.alu_ops = 1_500;
//! let e = model.energy(&ev);
//! assert!(e.total_pj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Event counts feeding the energy model (one simulation's worth).
///
/// Decoupled from the pipeline's stats type so this crate stands alone;
/// the simulator maps its counters into this struct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnergyEvents {
    /// Cycles simulated (static energy).
    pub cycles: u64,
    /// Instruction-cache accesses.
    pub icache_accesses: u64,
    /// Micro-op cache line reads (both partitions).
    pub uopcache_accesses: u64,
    /// Macro-instructions decoded on the legacy path.
    pub decoded_macros: u64,
    /// Branch predictor lookups.
    pub bp_lookups: u64,
    /// Value predictor probes + trains.
    pub vp_accesses: u64,
    /// Micro-ops renamed (rename + ROB write).
    pub renamed_uops: u64,
    /// Live-out ghost installs (rename-structure writes only).
    pub ghost_installs: u64,
    /// Simple integer ALU executions.
    pub alu_ops: u64,
    /// Integer multiply/divide executions.
    pub muldiv_ops: u64,
    /// FP/SIMD executions.
    pub fp_ops: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Committed micro-ops (commit/retire bookkeeping).
    pub committed_uops: u64,
    /// SCC front-end ALU operations.
    pub scc_alu_ops: u64,
    /// Cycles the SCC unit was busy (its own small static/clock cost).
    pub scc_busy_cycles: u64,
}

/// Per-event energies in picojoules, plus static power per cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyParams {
    /// I-cache read (32 KB, 8-way).
    pub icache_pj: f64,
    /// Micro-op cache line read.
    pub uopcache_pj: f64,
    /// x86 macro decode.
    pub decode_pj: f64,
    /// Branch predictor lookup.
    pub bp_pj: f64,
    /// Value predictor access.
    pub vp_pj: f64,
    /// Rename + ROB write per micro-op.
    pub rename_pj: f64,
    /// Rename-structure constant install (physical register inlining).
    pub ghost_pj: f64,
    /// Scheduler wakeup + ALU execute.
    pub alu_pj: f64,
    /// Multiply/divide execute.
    pub muldiv_pj: f64,
    /// FP/SIMD execute.
    pub fp_pj: f64,
    /// L1D access.
    pub l1d_pj: f64,
    /// L2 access.
    pub l2_pj: f64,
    /// L3 access.
    pub l3_pj: f64,
    /// DRAM access.
    pub dram_pj: f64,
    /// Commit per micro-op.
    pub commit_pj: f64,
    /// SCC front-end ALU op (simple ALU, small operand latch).
    pub scc_alu_pj: f64,
    /// Static (leakage + clock tree) energy per core cycle.
    pub static_pj_per_cycle: f64,
}

impl EnergyParams {
    /// Ice Lake-class relative energies (pJ) at 2.4 GHz.
    pub fn icelake() -> EnergyParams {
        EnergyParams {
            icache_pj: 60.0,
            uopcache_pj: 12.0,
            decode_pj: 18.0,
            bp_pj: 6.0,
            vp_pj: 6.0,
            rename_pj: 22.0,
            ghost_pj: 3.0,
            alu_pj: 16.0,
            muldiv_pj: 45.0,
            fp_pj: 30.0,
            l1d_pj: 28.0,
            l2_pj: 120.0,
            l3_pj: 420.0,
            dram_pj: 1900.0,
            commit_pj: 9.0,
            scc_alu_pj: 6.0,
            static_pj_per_cycle: 480.0,
        }
    }
}

/// Energy broken down by pipeline section, in picojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Front end: icache, decode, micro-op cache, predictors, SCC unit.
    pub frontend_pj: f64,
    /// Back end: rename, execute, commit.
    pub backend_pj: f64,
    /// Memory: L1D/L2/L3/DRAM.
    pub memory_pj: f64,
    /// Static/leakage.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.frontend_pj + self.backend_pj + self.memory_pj + self.static_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }
}

/// The event-based energy model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with explicit parameters.
    pub fn new(params: EnergyParams) -> EnergyModel {
        EnergyModel { params }
    }

    /// The default Ice Lake-class model.
    pub fn icelake() -> EnergyModel {
        EnergyModel::new(EnergyParams::icelake())
    }

    /// The model's parameters.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the energy breakdown for one run's events.
    pub fn energy(&self, ev: &EnergyEvents) -> EnergyBreakdown {
        let p = &self.params;
        let n = |c: u64| c as f64;
        let frontend = n(ev.icache_accesses) * p.icache_pj
            + n(ev.uopcache_accesses) * p.uopcache_pj
            + n(ev.decoded_macros) * p.decode_pj
            + n(ev.bp_lookups) * p.bp_pj
            + n(ev.vp_accesses) * p.vp_pj
            + n(ev.scc_alu_ops) * p.scc_alu_pj
            + n(ev.scc_busy_cycles) * 0.5; // SCC unit clocking while busy
        let backend = n(ev.renamed_uops) * p.rename_pj
            + n(ev.ghost_installs) * p.ghost_pj
            + n(ev.alu_ops) * p.alu_pj
            + n(ev.muldiv_ops) * p.muldiv_pj
            + n(ev.fp_ops) * p.fp_pj
            + n(ev.committed_uops) * p.commit_pj;
        let memory = n(ev.l1d_accesses) * p.l1d_pj
            + n(ev.l2_accesses) * p.l2_pj
            + n(ev.l3_accesses) * p.l3_pj
            + n(ev.dram_accesses) * p.dram_pj;
        let static_e = n(ev.cycles) * p.static_pj_per_cycle;
        EnergyBreakdown {
            frontend_pj: frontend,
            backend_pj: backend,
            memory_pj: memory,
            static_pj: static_e,
        }
    }
}

impl EnergyModel {
    /// Renders a McPAT-style detailed report: per-component dynamic
    /// energy, shares, and totals.
    pub fn detailed_report(&self, ev: &EnergyEvents) -> String {
        let p = &self.params;
        let rows: &[(&str, u64, f64)] = &[
            ("icache reads", ev.icache_accesses, p.icache_pj),
            ("uop cache reads", ev.uopcache_accesses, p.uopcache_pj),
            ("legacy decode", ev.decoded_macros, p.decode_pj),
            ("branch predictor", ev.bp_lookups, p.bp_pj),
            ("value predictor", ev.vp_accesses, p.vp_pj),
            ("SCC front-end ALU", ev.scc_alu_ops, p.scc_alu_pj),
            ("rename + ROB", ev.renamed_uops, p.rename_pj),
            ("live-out inlining", ev.ghost_installs, p.ghost_pj),
            ("int ALU execute", ev.alu_ops, p.alu_pj),
            ("mul/div execute", ev.muldiv_ops, p.muldiv_pj),
            ("FP/SIMD execute", ev.fp_ops, p.fp_pj),
            ("commit", ev.committed_uops, p.commit_pj),
            ("L1D", ev.l1d_accesses, p.l1d_pj),
            ("L2", ev.l2_accesses, p.l2_pj),
            ("L3", ev.l3_accesses, p.l3_pj),
            ("DRAM", ev.dram_accesses, p.dram_pj),
        ];
        let breakdown = self.energy(ev);
        let total = breakdown.total_pj().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>14} {:>10} {:>14} {:>7}\n",
            "component", "events", "pJ/event", "energy (pJ)", "share"
        ));
        for (name, count, per) in rows {
            let e = *count as f64 * per;
            out.push_str(&format!(
                "{name:<22} {count:>14} {per:>10.1} {e:>14.0} {:>6.1}%\n",
                100.0 * e / total
            ));
        }
        out.push_str(&format!(
            "{:<22} {:>14} {:>10.1} {:>14.0} {:>6.1}%\n",
            "static/leakage",
            ev.cycles,
            p.static_pj_per_cycle,
            breakdown.static_pj,
            100.0 * breakdown.static_pj / total
        ));
        out.push_str(&format!(
            "{:<22} {:>14} {:>10} {:>14.0} {:>7}\n",
            "TOTAL", "-", "-", total, "100.0%"
        ));
        out
    }
}

/// Area model for the core and the SCC additions.
///
/// Mirrors the paper's CACTI/McPAT accounting: the SCC structures are a
/// simple integer ALU, the register context table, the doubled predictor
/// read ports, the extended tag arrays (lock bits + confidence counters),
/// the 6-entry request queue, and the 18-micro-op write buffer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// Baseline core area in mm² (per-core slice incl. private caches).
    pub core_mm2: f64,
    /// SCC front-end ALU.
    pub scc_alu_mm2: f64,
    /// Register context table (16×64-bit + flags).
    pub scc_rct_mm2: f64,
    /// Doubled predictor read ports and wiring.
    pub pred_ports_mm2: f64,
    /// Extended micro-op cache tag arrays (lock + confidence bits).
    pub tag_ext_mm2: f64,
    /// Request queue + write buffer.
    pub buffers_mm2: f64,
    /// Baseline core peak power in watts.
    pub core_peak_w: f64,
    /// SCC additions' peak power in watts.
    pub scc_peak_w: f64,
}

impl AreaModel {
    /// Ice Lake-class per-core accounting calibrated to the paper's
    /// reported overheads (≈1.5 % area, ≈0.62 % peak power).
    pub fn icelake() -> AreaModel {
        AreaModel {
            core_mm2: 7.10,
            scc_alu_mm2: 0.018,
            scc_rct_mm2: 0.006,
            pred_ports_mm2: 0.046,
            tag_ext_mm2: 0.024,
            buffers_mm2: 0.012,
            core_peak_w: 13.5,
            scc_peak_w: 0.084,
        }
    }

    /// Total SCC area in mm².
    pub fn scc_mm2(&self) -> f64 {
        self.scc_alu_mm2
            + self.scc_rct_mm2
            + self.pred_ports_mm2
            + self.tag_ext_mm2
            + self.buffers_mm2
    }

    /// SCC area overhead as a fraction of the core.
    pub fn area_overhead(&self) -> f64 {
        self.scc_mm2() / self.core_mm2
    }

    /// SCC peak-power overhead as a fraction of the core.
    pub fn peak_power_overhead(&self) -> f64 {
        self.scc_peak_w / self.core_peak_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> EnergyEvents {
        EnergyEvents {
            cycles: 1000,
            icache_accesses: 10,
            uopcache_accesses: 500,
            decoded_macros: 50,
            bp_lookups: 300,
            vp_accesses: 100,
            renamed_uops: 2000,
            ghost_installs: 20,
            alu_ops: 1200,
            muldiv_ops: 50,
            fp_ops: 100,
            l1d_accesses: 400,
            l2_accesses: 40,
            l3_accesses: 10,
            dram_accesses: 2,
            committed_uops: 1900,
            scc_alu_ops: 60,
            scc_busy_cycles: 80,
        }
    }

    #[test]
    fn energy_is_positive_and_additive() {
        let m = EnergyModel::icelake();
        let e = m.energy(&events());
        assert!(e.frontend_pj > 0.0);
        assert!(e.backend_pj > 0.0);
        assert!(e.memory_pj > 0.0);
        assert!(e.static_pj > 0.0);
        let total = e.frontend_pj + e.backend_pj + e.memory_pj + e.static_pj;
        assert!((e.total_pj() - total).abs() < 1e-9);
        assert!((e.total_mj() - total / 1e9).abs() < 1e-18);
    }

    #[test]
    fn eliminating_uops_saves_backend_energy() {
        let m = EnergyModel::icelake();
        let base = events();
        let mut scc = base;
        scc.renamed_uops -= 500;
        scc.alu_ops -= 400;
        scc.committed_uops -= 500;
        let eb = m.energy(&base);
        let es = m.energy(&scc);
        assert!(es.backend_pj < eb.backend_pj);
        assert!(es.total_pj() < eb.total_pj());
    }

    #[test]
    fn icache_traffic_is_much_pricier_than_uopcache() {
        let p = EnergyParams::icelake();
        assert!(p.icache_pj >= 4.0 * p.uopcache_pj, "paper: uop cache saves the icache trip");
        assert!(p.dram_pj >= 50.0 * p.l1d_pj);
    }

    #[test]
    fn zero_events_cost_nothing_dynamic() {
        let m = EnergyModel::icelake();
        let e = m.energy(&EnergyEvents::default());
        assert_eq!(e.total_pj(), 0.0);
    }

    #[test]
    fn area_overhead_matches_paper() {
        let a = AreaModel::icelake();
        let area = a.area_overhead();
        let power = a.peak_power_overhead();
        assert!((0.013..=0.017).contains(&area), "≈1.5% area, got {:.3}%", 100.0 * area);
        assert!((0.005..=0.008).contains(&power), "≈0.62% power, got {:.3}%", 100.0 * power);
    }

    #[test]
    fn scc_structures_are_individually_tiny() {
        let a = AreaModel::icelake();
        for part in [a.scc_alu_mm2, a.scc_rct_mm2, a.pred_ports_mm2, a.tag_ext_mm2, a.buffers_mm2] {
            assert!(part < 0.05, "every SCC structure is sub-0.05 mm²");
        }
        assert!(a.scc_mm2() < 0.15);
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    #[test]
    fn detailed_report_accounts_for_everything() {
        let m = EnergyModel::icelake();
        let ev = EnergyEvents {
            cycles: 100,
            icache_accesses: 5,
            uopcache_accesses: 50,
            renamed_uops: 200,
            alu_ops: 150,
            committed_uops: 190,
            l1d_accesses: 40,
            dram_accesses: 1,
            ..EnergyEvents::default()
        };
        let report = m.detailed_report(&ev);
        assert!(report.contains("icache reads"));
        assert!(report.contains("TOTAL"));
        assert!(report.contains("100.0%"));
        // Shares parse and sum to ~100 (excluding header/total lines).
        let share_sum: f64 = report
            .lines()
            .skip(1)
            .filter(|l| !l.starts_with("TOTAL"))
            .filter_map(|l| l.rsplit_once(' ').and_then(|(_, s)| s.trim_end_matches('%').parse::<f64>().ok()))
            .sum();
        assert!((share_sum - 100.0).abs() < 1.5, "shares sum to {share_sum}");
    }
}
