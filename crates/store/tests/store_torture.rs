//! Recovery torture suite: crash and corruption injection against the
//! persistent store.
//!
//! The contract under test, in every scenario:
//!
//! 1. `Store::open` never panics, whatever the bytes on disk;
//! 2. `get` never returns a value that was not written for that key
//!    (the CRC rejects mangled bytes — damage degrades to a miss,
//!    never to garbage);
//! 3. every record that was durable at the crash point (explicitly
//!    synced, or in a sealed/compacted segment) is still readable
//!    after recovery.
//!
//! Deterministic cases truncate the final record at every byte offset
//! and flip every bit of small segment files; the property-style case
//! runs a seeded open/write/kill/reopen loop against a model of the
//! synced state. `SCC_TORTURE_ROUNDS` scales the randomized depth
//! (default 30; CI nightly runs hundreds).

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use scc_isa::rand_prog::SplitMix64;
use scc_store::segment::{scan_records, SegmentHeader};
use scc_store::{Store, StoreConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("scc-torture-{}-{tag}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn cfg() -> StoreConfig {
    StoreConfig::new(1, "torture-rev")
}

fn torture_rounds() -> u64 {
    std::env::var("SCC_TORTURE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
}

/// Copies every file of `src` into a fresh directory.
fn clone_dir(src: &Path, tag: &str) -> PathBuf {
    let dst = temp_dir(tag);
    fs::create_dir_all(&dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

/// The single `.log` file in a directory (setup phases that write
/// little enough not to rotate).
fn only_segment(dir: &Path) -> PathBuf {
    let mut logs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    assert_eq!(logs.len(), 1, "setup expected exactly one segment in {dir:?}");
    logs.pop().unwrap()
}

fn value_for(key: &str) -> Vec<u8> {
    format!("value-of-{key}-padded-{}", "x".repeat(17)).into_bytes()
}

/// Seeds a store with `n` synced records and returns its directory.
fn seeded_store(tag: &str, n: usize) -> PathBuf {
    let dir = temp_dir(tag);
    let mut s = Store::open(&dir, cfg()).unwrap();
    for i in 0..n {
        let key = format!("key-{i:03}");
        s.put(&key, &value_for(&key)).unwrap();
    }
    s.sync().unwrap();
    drop(s);
    dir
}

#[test]
fn truncation_at_every_byte_offset_of_the_final_record() {
    const N: usize = 12;
    let base = seeded_store("trunc-base", N);
    let seg = only_segment(&base);
    let data = fs::read(&seg).unwrap();
    let (_, header_len) = SegmentHeader::parse(&data).unwrap();
    let scan = scan_records(&data, header_len);
    assert_eq!(scan.records.len(), N);
    let last = scan.records.last().unwrap();
    let last_start = last.offset as usize;

    for cut in last_start..data.len() {
        let dir = clone_dir(&base, "trunc");
        let seg = only_segment(&dir);
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        let mut s = Store::open(&dir, cfg()).unwrap();
        let rec = s.recovery();
        // Every record before the torn one must be intact.
        for i in 0..N - 1 {
            let key = format!("key-{i:03}");
            assert_eq!(
                s.get(&key).unwrap().as_deref(),
                Some(value_for(&key).as_slice()),
                "cut at {cut}: key {key} lost"
            );
        }
        // The final record is either wholly present (cut == full len is
        // excluded above) or wholly absent — never mangled.
        let last_key = format!("key-{:03}", N - 1);
        assert_eq!(s.get(&last_key).unwrap(), None, "cut at {cut}: torn record surfaced");
        if cut > last_start {
            assert_eq!(rec.torn_truncations, 1, "cut at {cut}");
            assert_eq!(rec.bytes_truncated, (cut - last_start) as u64, "cut at {cut}");
        }
        assert_eq!(rec.records_indexed as usize, N - 1);
        assert_eq!(rec.invalidated_segments(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&base).unwrap();
}

#[test]
fn single_bit_flips_anywhere_in_the_segment_never_yield_garbage() {
    const N: usize = 4;
    let base = seeded_store("flip-base", N);
    let seg_name = only_segment(&base).file_name().unwrap().to_owned();
    let data = fs::read(only_segment(&base)).unwrap();

    for byte in 0..data.len() {
        for bit in 0..8 {
            let dir = clone_dir(&base, "flip");
            let seg = dir.join(&seg_name);
            let mut bent = data.clone();
            bent[byte] ^= 1 << bit;
            fs::write(&seg, &bent).unwrap();

            let mut s = Store::open(&dir, cfg()).unwrap();
            for i in 0..N {
                let key = format!("key-{i:03}");
                let got = s.get(&key).unwrap();
                assert!(
                    got.is_none() || got.as_deref() == Some(value_for(&key).as_slice()),
                    "flip at byte {byte} bit {bit}: key {key} returned corrupt bytes {got:?}"
                );
            }
            // One flipped bit hits the header (whole segment refused),
            // or one record (skipped or tail-truncated); at most the
            // records at-and-after the damage may be lost.
            let rec = s.recovery();
            assert!(
                rec.records_indexed as usize >= N - 1
                    || rec.invalidated_segments() == 1
                    || rec.torn_truncations == 1
                    || rec.corrupt_records_skipped == 1,
                "flip at byte {byte} bit {bit}: implausible recovery {rec:?}"
            );
            fs::remove_dir_all(&dir).unwrap();
        }
    }
    fs::remove_dir_all(&base).unwrap();
}

#[test]
fn bit_flips_in_compacted_segment_and_sidecar_never_yield_garbage() {
    let dir = temp_dir("flip-sorted");
    let mut c = cfg();
    c.rotate_bytes = 256;
    c.compaction.min_bucket_bytes = 8192;
    c.compaction.trigger = 2;
    const N: usize = 16;
    {
        let mut s = Store::open(&dir, c.clone()).unwrap();
        for i in 0..N {
            let key = format!("key-{i:03}");
            s.put(&key, &value_for(&key)).unwrap();
        }
        s.sync().unwrap();
        while s.maybe_compact().unwrap() {}
        assert!(s.stats().compactions > 0);
    }
    let targets: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "idx")
                || (p.extension().is_some_and(|e| e == "log") && fs::metadata(p).unwrap().len() > 64)
        })
        .collect();
    assert!(!targets.is_empty());

    let mut rng = SplitMix64::new(0xC0FFEE);
    for trial in 0..200 {
        let dir2 = clone_dir(&dir, "flip-sorted-trial");
        let victim = &targets[rng.below(targets.len() as u64) as usize];
        let victim2 = dir2.join(victim.file_name().unwrap());
        let mut bytes = fs::read(&victim2).unwrap();
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] ^= 1 << rng.below(8);
        fs::write(&victim2, bytes).unwrap();

        let mut s = Store::open(&dir2, c.clone()).unwrap();
        for i in 0..N {
            let key = format!("key-{i:03}");
            let got = s.get(&key).unwrap();
            assert!(
                got.is_none() || got.as_deref() == Some(value_for(&key).as_slice()),
                "trial {trial}: key {key} returned corrupt bytes"
            );
        }
        fs::remove_dir_all(&dir2).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_never_panics_on_arbitrary_garbage_files() {
    let mut rng = SplitMix64::new(0xDEAD_BEEF);
    for trial in 0..40 {
        let dir = temp_dir("garbage");
        fs::create_dir_all(&dir).unwrap();
        let files = 1 + rng.below(3);
        for f in 0..files {
            let len = rng.below(4096) as usize;
            let mut bytes = vec![0u8; len];
            for b in &mut bytes {
                *b = rng.next_u64() as u8;
            }
            // Half the files get a plausible-looking magic prefix.
            if rng.chance(1, 2) && len >= 8 {
                bytes[..8].copy_from_slice(b"SCCSTOR1");
            }
            fs::write(dir.join(format!("seg-{f:016x}.log")), &bytes).unwrap();
        }
        let mut s = Store::open(&dir, cfg()).unwrap();
        assert_eq!(s.get("anything").unwrap(), None, "trial {trial}");
        s.put("k", b"v").unwrap();
        assert_eq!(s.get("k").unwrap().as_deref(), Some(&b"v"[..]));
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// The property-style crash loop. A model tracks (a) the full expected
/// state while the store is healthy and (b) the durable state — what
/// must survive a crash: everything up to the last sync/seal plus, per
/// key, any later writes that might or might not have hit the disk.
#[test]
fn randomized_open_write_kill_reopen_loop_preserves_synced_records() {
    let rounds = torture_rounds();
    let mut rng = SplitMix64::new(0x5CC_700D);
    let dir = temp_dir("crashloop");

    let mut c = cfg();
    c.rotate_bytes = 512;
    c.compaction.min_bucket_bytes = 16 * 1024;
    c.compaction.trigger = 3;

    let keys: Vec<String> = (0..12).map(|i| format!("key-{i:02}")).collect();
    // Current expected value per key (None = tombstoned/absent).
    let mut model: HashMap<String, Option<Vec<u8>>> = HashMap::new();
    // Expected state as of the last durability point.
    let mut durable: HashMap<String, Option<Vec<u8>>> = model.clone();
    // Values written after the last durability point, per key; a
    // post-crash read may surface any of these instead.
    let mut in_flight: HashMap<String, Vec<Option<Vec<u8>>>> = HashMap::new();

    for round in 0..rounds {
        let mut s = Store::open(&dir, c.clone()).unwrap();

        // Post-crash check: synced records must be exact; keys with
        // in-flight writes may hold any of those candidates.
        for k in &keys {
            let got = s.get(k).unwrap();
            let synced = durable.get(k).cloned().unwrap_or(None);
            let acceptable = got == synced
                || in_flight.get(k).is_some_and(|cands| cands.contains(&got));
            assert!(
                acceptable,
                "round {round}: key {k} returned {got:?}, synced state {synced:?}, \
                 in-flight {:?}",
                in_flight.get(k)
            );
            model.insert(k.clone(), got);
        }
        durable = model.clone();
        in_flight.clear();
        let mut synced_len = fs::metadata(s.active_segment_path()).unwrap().len();
        let mut active_path = s.active_segment_path();

        let ops = 20 + rng.below(40);
        for _ in 0..ops {
            let k = &keys[rng.below(keys.len() as u64) as usize];
            let roll = rng.below(100);
            let seals_before = s.stats().seals;
            if roll < 55 {
                let len = rng.below(120) as usize;
                let mut v = vec![0u8; len];
                for b in &mut v {
                    *b = rng.next_u64() as u8;
                }
                s.put(k, &v).unwrap();
                model.insert(k.clone(), Some(v.clone()));
                in_flight.entry(k.clone()).or_default().push(Some(v));
            } else if roll < 65 {
                s.tombstone(k).unwrap();
                model.insert(k.clone(), None);
                in_flight.entry(k.clone()).or_default().push(None);
            } else if roll < 85 {
                let got = s.get(k).unwrap();
                assert_eq!(
                    &got,
                    model.get(k).unwrap_or(&None),
                    "round {round}: healthy-store read mismatch for {k}"
                );
            } else if roll < 93 {
                s.sync().unwrap();
                durable = model.clone();
                in_flight.clear();
                synced_len = fs::metadata(s.active_segment_path()).unwrap().len();
            } else {
                s.maybe_compact().unwrap();
            }
            // A seal fsyncs the old active segment: everything written
            // so far became durable, and a fresh active file began.
            if s.stats().seals != seals_before {
                durable = model.clone();
                in_flight.clear();
                synced_len = fs::metadata(s.active_segment_path()).unwrap().len();
            }
            active_path = s.active_segment_path();
        }

        // Crash: drop without syncing, then mangle the unsynced suffix
        // of the active segment.
        drop(s);
        let cur_len = fs::metadata(&active_path).unwrap().len();
        assert!(cur_len >= synced_len);
        if cur_len > synced_len {
            let cut = synced_len + rng.below(cur_len - synced_len + 1);
            if rng.chance(1, 2) && cut > synced_len {
                // Flip a bit in the surviving unsynced region first.
                let mut bytes = fs::read(&active_path).unwrap();
                let at = synced_len + rng.below(cut - synced_len);
                bytes[at as usize] ^= 1 << rng.below(8);
                fs::write(&active_path, bytes).unwrap();
            }
            let f = fs::OpenOptions::new().write(true).open(&active_path).unwrap();
            f.set_len(cut).unwrap();
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}
