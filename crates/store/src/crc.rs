//! CRC-32C (Castagnoli), the checksum guarding every record and segment
//! header in the store.
//!
//! Table-driven, generated at compile time from the reflected
//! polynomial `0x82F63B78` — the same CRC family SSTable formats use
//! for block trailers. A store must not trust *any* bytes it reads back
//! from disk until this digest verifies; the recovery torture suite
//! flips single bits at arbitrary offsets and relies on the checksum to
//! reject every one of them.

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// One 256-entry lookup table, built in a `const` context so the crate
/// stays dependency-free without paying a runtime init.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32C digest of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 §B.4 test vectors for CRC-32C.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn single_bit_flip_changes_the_digest() {
        let base = b"the store must reject torn and flipped bytes".to_vec();
        let crc = crc32c(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), crc, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
