//! Size-tiered compaction planning.
//!
//! Pure bucketing logic, separated from the store so it can be tested
//! against synthetic segment populations. The algorithm follows the
//! classic size-tiered shape: sort sealed segments by size, group
//! segments of similar size into buckets (every segment within
//! `[avg * bucket_low, avg * bucket_high]` of the bucket's running
//! average joins it, with everything under `min_bucket_bytes` sharing
//! one "small" bucket), and compact the first bucket that accumulates
//! `trigger` members. Merging similarly-sized inputs keeps write
//! amplification near log(N) instead of rewriting the big segment every
//! time a small one appears.

/// Tuning knobs for compaction planning.
#[derive(Clone, Copy, Debug)]
pub struct CompactionConfig {
    /// Lower bound factor on a bucket's running average.
    pub bucket_low: f64,
    /// Upper bound factor on a bucket's running average.
    pub bucket_high: f64,
    /// Segments smaller than this all share one bucket regardless of
    /// relative size.
    pub min_bucket_bytes: u64,
    /// Number of co-bucketed segments that triggers a merge.
    pub trigger: usize,
    /// Cap on inputs merged in one pass, bounding pause time.
    pub max_inputs: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            bucket_low: 0.5,
            bucket_high: 1.5,
            min_bucket_bytes: 64 * 1024,
            trigger: 4,
            max_inputs: 32,
        }
    }
}

struct Bucket {
    avg: f64,
    members: Vec<(u64, u64)>, // (seg_id, bytes)
    small: bool,
}

/// Picks the segment ids to merge next, or `None` when no bucket has
/// reached the trigger. `segments` is `(seg_id, file_bytes)` for every
/// sealed, compactable segment (never the active write segment).
pub fn plan(segments: &[(u64, u64)], cfg: &CompactionConfig) -> Option<Vec<u64>> {
    let mut sorted: Vec<(u64, u64)> = segments.to_vec();
    sorted.sort_by_key(|&(id, bytes)| (bytes, id));

    let mut buckets: Vec<Bucket> = Vec::new();
    for &(id, bytes) in &sorted {
        if bytes < cfg.min_bucket_bytes {
            match buckets.iter_mut().find(|b| b.small) {
                Some(b) => b.members.push((id, bytes)),
                None => buckets.push(Bucket { avg: 0.0, members: vec![(id, bytes)], small: true }),
            }
            continue;
        }
        let fit = buckets.iter_mut().find(|b| {
            !b.small && bytes as f64 >= b.avg * cfg.bucket_low && bytes as f64 <= b.avg * cfg.bucket_high
        });
        match fit {
            Some(b) => {
                let n = b.members.len() as f64;
                b.avg = (b.avg * n + bytes as f64) / (n + 1.0);
                b.members.push((id, bytes));
            }
            None => buckets.push(Bucket { avg: bytes as f64, members: vec![(id, bytes)], small: false }),
        }
    }

    buckets
        .iter()
        .find(|b| b.members.len() >= cfg.trigger)
        .map(|b| {
            // Oldest (lowest-id) inputs first; the merge itself is
            // seq-ordered so input order is cosmetic, but determinism
            // keeps tests and logs stable.
            let mut ids: Vec<u64> = b.members.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            ids.truncate(cfg.max_inputs.max(2));
            ids
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CompactionConfig {
        CompactionConfig { min_bucket_bytes: 1000, trigger: 4, ..CompactionConfig::default() }
    }

    #[test]
    fn below_trigger_no_plan() {
        let segs = [(1, 500), (2, 600), (3, 550)];
        assert_eq!(plan(&segs, &cfg()), None);
    }

    #[test]
    fn small_segments_share_one_bucket() {
        // Wildly different relative sizes, all under min_bucket_bytes.
        let segs = [(1, 10), (2, 999), (3, 100), (4, 1)];
        assert_eq!(plan(&segs, &cfg()), Some(vec![1, 2, 3, 4]));
    }

    #[test]
    fn similar_sizes_bucket_together_dissimilar_do_not() {
        // Four ~100k segments and one 10MB segment: the big one must
        // not be rewritten when the small tier compacts.
        let segs = [(1, 100_000), (2, 110_000), (3, 95_000), (4, 105_000), (5, 10_000_000)];
        assert_eq!(plan(&segs, &cfg()), Some(vec![1, 2, 3, 4]));
    }

    #[test]
    fn dissimilar_sizes_never_trigger() {
        // Geometric sizes: each lands in its own bucket.
        let segs = [(1, 2_000), (2, 20_000), (3, 200_000), (4, 2_000_000)];
        assert_eq!(plan(&segs, &cfg()), None);
    }

    #[test]
    fn max_inputs_caps_a_merge() {
        let mut segs = Vec::new();
        for i in 0..40u64 {
            segs.push((i, 50_000 + i)); // all co-bucketed
        }
        let c = CompactionConfig { max_inputs: 8, ..cfg() };
        let picked = plan(&segs, &c).unwrap();
        assert_eq!(picked.len(), 8);
    }

    #[test]
    fn empty_population_no_plan() {
        assert_eq!(plan(&[], &cfg()), None);
    }
}
