//! Segment files: header format, defensive full-file scan, and the
//! checksummed sparse-index sidecar for sorted (compacted) segments.
//!
//! A segment file is a versioned header followed by zero or more
//! records (see [`crate::record`]):
//!
//! ```text
//! segment  := header record*
//! header   := magic body_len body_crc body
//! magic    := "SCCSTOR1"                ; 8 bytes
//! body_len := u32 le                    ; bytes of body
//! body_crc := u32 le                    ; CRC-32C of body
//! body     := format_version schema_version seg_id sorted rev_len rev
//! ```
//!
//! `format_version` guards the byte layout itself; `schema_version` and
//! `rev` (the engine git revision) guard the *meaning* of the stored
//! values — a segment written by a different engine build is refused
//! wholesale at recovery rather than risking silently-stale results.
//!
//! Sorted segments written by compaction carry a `.idx` sidecar holding
//! every Nth record's `(key_hash, offset)` anchor. The sidecar is an
//! optimisation only: it is CRC-checked on load and rebuilt from the
//! data scan if missing or corrupt, so a flipped bit in the index can
//! never redirect a lookup.

use crate::crc::crc32c;
use crate::record::{self, OwnedRecord, Parse};

/// Leading magic of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SCCSTOR1";

/// Leading magic of every sparse-index sidecar.
pub const INDEX_MAGIC: [u8; 8] = *b"SCCSIDX1";

/// Byte-layout version of segments and records. Bump only when the
/// physical encoding changes.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed bytes before a header body: magic + body_len + body_crc.
pub const HEADER_PREFIX_BYTES: usize = 8 + 4 + 4;

/// Upper bound on a header body; larger lengths are corruption.
const MAX_HEADER_BODY_BYTES: u32 = 4096;

/// Decoded segment header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Byte-layout version ([`FORMAT_VERSION`] for segments we write).
    pub format_version: u32,
    /// Version of the serialized value schema (the `SimResult` codec).
    pub schema_version: u32,
    /// Segment id; also encoded in the file name.
    pub seg_id: u64,
    /// True for compaction output sorted by `(key_hash, key)`.
    pub sorted: bool,
    /// Engine git revision that produced the stored values.
    pub engine_rev: String,
}

impl SegmentHeader {
    /// Serializes the header, checksum included.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.engine_rev.len() <= u16::MAX as usize);
        let mut body = Vec::with_capacity(32 + self.engine_rev.len());
        body.extend_from_slice(&self.format_version.to_le_bytes());
        body.extend_from_slice(&self.schema_version.to_le_bytes());
        body.extend_from_slice(&self.seg_id.to_le_bytes());
        body.push(self.sorted as u8);
        body.extend_from_slice(&(self.engine_rev.len() as u16).to_le_bytes());
        body.extend_from_slice(self.engine_rev.as_bytes());

        let mut out = Vec::with_capacity(HEADER_PREFIX_BYTES + body.len());
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32c(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses and verifies a header at the start of `data`, returning
    /// the header and its total encoded length. `None` means the file
    /// cannot be trusted at all (recovery deletes it).
    pub fn parse(data: &[u8]) -> Option<(SegmentHeader, usize)> {
        if data.len() < HEADER_PREFIX_BYTES || data[..8] != SEGMENT_MAGIC {
            return None;
        }
        let body_len = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if body_len > MAX_HEADER_BODY_BYTES {
            return None;
        }
        let total = HEADER_PREFIX_BYTES + body_len as usize;
        if data.len() < total {
            return None;
        }
        let expected_crc = u32::from_le_bytes(data[12..16].try_into().unwrap());
        let body = &data[HEADER_PREFIX_BYTES..total];
        if crc32c(body) != expected_crc {
            return None;
        }
        // Checksum verified; structural reads are still bounds-checked
        // because a future format may shrink the body.
        if body.len() < 19 {
            return None;
        }
        let format_version = u32::from_le_bytes(body[0..4].try_into().unwrap());
        let schema_version = u32::from_le_bytes(body[4..8].try_into().unwrap());
        let seg_id = u64::from_le_bytes(body[8..16].try_into().unwrap());
        let sorted = body[16] != 0;
        let rev_len = u16::from_le_bytes(body[17..19].try_into().unwrap()) as usize;
        if 19 + rev_len != body.len() {
            return None;
        }
        let engine_rev = std::str::from_utf8(&body[19..]).ok()?.to_string();
        Some((
            SegmentHeader { format_version, schema_version, seg_id, sorted, engine_rev },
            total,
        ))
    }
}

/// A record located inside a scanned segment.
#[derive(Clone, Debug)]
pub struct RecordAt {
    /// Byte offset of the record's magic within the file.
    pub offset: u64,
    /// Encoded length including the record header.
    pub len: u32,
    /// The decoded record.
    pub record: OwnedRecord,
}

/// Result of defensively scanning a segment's record region.
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// Every record that checksum-verified, in file order.
    pub records: Vec<RecordAt>,
    /// File length up to which bytes are valid (header + intact
    /// records, including skipped-but-framed corrupt ones). Anything
    /// beyond is a torn tail to truncate.
    pub valid_len: u64,
    /// Framed records whose checksum failed; skipped in place.
    pub corrupt_skipped: u64,
    /// True when the scan ended before end-of-data (torn or unframed
    /// bytes); `valid_len` is then shorter than the file.
    pub truncate_tail: bool,
}

/// Scans `data[start..]` record by record. Never panics; classifies
/// every anomaly per the [`crate::record`] parser contract.
pub fn scan_records(data: &[u8], start: usize) -> Scan {
    let mut scan = Scan { valid_len: start as u64, ..Scan::default() };
    let mut at = start;
    loop {
        match record::parse(&data[at..]) {
            Parse::Record { record, total } => {
                scan.records.push(RecordAt { offset: at as u64, len: total as u32, record });
                at += total;
                scan.valid_len = at as u64;
            }
            Parse::Corrupt { skip } => {
                // Keep the bytes (so offsets of later records stay
                // stable) but surface nothing from them.
                scan.corrupt_skipped += 1;
                at += skip;
                scan.valid_len = at as u64;
            }
            Parse::Torn | Parse::Unframed => {
                scan.truncate_tail = true;
                return scan;
            }
            Parse::End => return scan,
        }
    }
}

/// Sparse index for a sorted segment: every Nth record's
/// `(key_hash, file_offset)`, ascending by hash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseIndex {
    /// `(key_hash, offset)` anchors in ascending hash order.
    pub anchors: Vec<(u64, u64)>,
}

impl SparseIndex {
    /// Builds the index from a scan of a sorted segment, anchoring
    /// every `every`-th record (and always the first).
    pub fn build(records: &[RecordAt], every: usize) -> SparseIndex {
        let every = every.max(1);
        let anchors = records
            .iter()
            .enumerate()
            .filter(|(i, _)| i % every == 0)
            .map(|(_, r)| (record::key_hash(&r.record.key), r.offset))
            .collect();
        SparseIndex { anchors }
    }

    /// File offset to start a bounded forward scan for `hash`, or
    /// `None` when the hash precedes every anchor (definite miss for
    /// the first-record-always-anchored indexes we build).
    pub fn seek(&self, hash: u64) -> Option<u64> {
        let i = self.anchors.partition_point(|&(h, _)| h <= hash);
        if i == 0 {
            return None;
        }
        Some(self.anchors[i - 1].1)
    }

    /// Serializes the sidecar file: magic, count, crc, entries.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.anchors.len() * 16);
        for &(hash, offset) in &self.anchors {
            body.extend_from_slice(&hash.to_le_bytes());
            body.extend_from_slice(&offset.to_le_bytes());
        }
        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&(self.anchors.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32c(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses and verifies a sidecar; `None` (missing/corrupt) means
    /// the caller rebuilds from the data scan.
    pub fn parse(data: &[u8]) -> Option<SparseIndex> {
        if data.len() < 16 || data[..8] != INDEX_MAGIC {
            return None;
        }
        let count = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
        let expected_crc = u32::from_le_bytes(data[12..16].try_into().unwrap());
        let body = &data[16..];
        if body.len() != count * 16 || crc32c(body) != expected_crc {
            return None;
        }
        let mut anchors = Vec::with_capacity(count);
        for chunk in body.chunks_exact(16) {
            anchors.push((
                u64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                u64::from_le_bytes(chunk[8..16].try_into().unwrap()),
            ));
        }
        // Anchors must ascend or binary search would lie.
        if anchors.windows(2).any(|w| w[0].0 > w[1].0) {
            return None;
        }
        Some(SparseIndex { anchors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode;

    fn header() -> SegmentHeader {
        SegmentHeader {
            format_version: FORMAT_VERSION,
            schema_version: 3,
            seg_id: 17,
            sorted: true,
            engine_rev: "abc123def456".into(),
        }
    }

    #[test]
    fn header_round_trips() {
        let bytes = header().encode();
        let (parsed, total) = SegmentHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, header());
        assert_eq!(total, bytes.len());
    }

    #[test]
    fn header_bit_flips_are_rejected() {
        let bytes = header().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bent = bytes.clone();
                bent[byte] ^= 1 << bit;
                assert!(
                    SegmentHeader::parse(&bent).is_none(),
                    "flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn header_truncation_is_rejected() {
        let bytes = header().encode();
        for cut in 0..bytes.len() {
            assert!(SegmentHeader::parse(&bytes[..cut]).is_none(), "cut at {cut} accepted");
        }
    }

    fn segment_with(keys: &[&str]) -> (Vec<u8>, usize) {
        let mut data = header().encode();
        let header_len = data.len();
        for (i, k) in keys.iter().enumerate() {
            encode(&mut data, i as u64 + 1, k, Some(format!("value-{k}").as_bytes()));
        }
        (data, header_len)
    }

    #[test]
    fn scan_reads_all_records() {
        let (data, start) = segment_with(&["a", "b", "c"]);
        let scan = scan_records(&data, start);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, data.len() as u64);
        assert_eq!(scan.corrupt_skipped, 0);
        assert!(!scan.truncate_tail);
        assert_eq!(scan.records[1].record.key, "b");
    }

    #[test]
    fn scan_skips_framed_corruption_and_truncates_torn_tail() {
        let (mut data, start) = segment_with(&["a", "b", "c"]);
        // Corrupt a payload byte of record "b" (keep framing intact).
        let b_off = scan_records(&data, start).records[1].offset as usize;
        data[b_off + 15] ^= 0x01;
        // Tear the tail mid-record "c".
        let c_off = scan_records(&data, start).records.last().unwrap().offset as usize;
        // After the corruption of "b", "c" is still the last valid record.
        let torn = &data[..c_off + 5];
        let scan = scan_records(torn, start);
        let keys: Vec<_> = scan.records.iter().map(|r| r.record.key.as_str()).collect();
        assert_eq!(keys, ["a"]);
        assert_eq!(scan.corrupt_skipped, 1);
        assert!(scan.truncate_tail);
        assert_eq!(scan.valid_len, c_off as u64);
    }

    #[test]
    fn sparse_index_round_trips_and_rejects_flips() {
        let idx = SparseIndex { anchors: vec![(10, 100), (20, 200), (30, 300)] };
        let bytes = idx.encode();
        assert_eq!(SparseIndex::parse(&bytes).unwrap(), idx);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bent = bytes.clone();
                bent[byte] ^= 1 << bit;
                assert!(SparseIndex::parse(&bent).is_none(), "flip at {byte}:{bit} accepted");
            }
        }
    }

    #[test]
    fn sparse_index_seek_bounds() {
        let idx = SparseIndex { anchors: vec![(10, 100), (20, 200), (30, 300)] };
        assert_eq!(idx.seek(5), None);
        assert_eq!(idx.seek(10), Some(100));
        assert_eq!(idx.seek(19), Some(100));
        assert_eq!(idx.seek(20), Some(200));
        assert_eq!(idx.seek(u64::MAX), Some(300));
        assert_eq!(SparseIndex::default().seek(0), None);
    }

    #[test]
    fn sparse_index_build_anchors_every_nth() {
        let (data, start) = segment_with(&["a", "b", "c", "d", "e"]);
        let scan = scan_records(&data, start);
        let idx = SparseIndex::build(&scan.records, 2);
        assert_eq!(idx.anchors.len(), 3); // records 0, 2, 4
        assert_eq!(idx.anchors[0].1, scan.records[0].offset);
        assert_eq!(idx.anchors[1].1, scan.records[2].offset);
    }
}
