//! # scc-store — crash-safe persistent result store
//!
//! An append-only, segment-file log of simulation results keyed by the
//! runner's content hash (`Job::key`), designed so that a `kill -9` at
//! any instant — or a flipped bit anywhere on disk — can never make the
//! store panic, lose a synced record, or hand back bytes that don't
//! checksum-verify.
//!
//! Layers, bottom up:
//!
//! - [`crc`]: CRC-32C, the digest guarding every record, segment
//!   header, and index sidecar.
//! - [`record`]: the record wire format and its defensive parser,
//!   which classifies damage as *corrupt* (skip one record) or *torn*
//!   (truncate the tail).
//! - [`segment`]: segment headers (stamped with format/schema versions
//!   and the engine git revision — the staleness guard), the full-file
//!   recovery scan, and the sparse-index sidecar for sorted segments.
//! - [`compact`]: pure size-tiered bucketing that picks which sealed
//!   segments to merge.
//! - [`store`]: [`Store`] itself — open/recover, `put`/`get`/
//!   `tombstone`, rotation, and crash-safe compaction
//!   (tmp → fsync → rename).
//!
//! The crate is dependency-free and knows nothing about the simulator;
//! values are opaque bytes. `scc-sim` layers its result codec and the
//! runner's persistent tier on top.

pub mod compact;
pub mod crc;
pub mod record;
pub mod segment;
pub mod store;

pub use compact::CompactionConfig;
pub use record::key_hash;
pub use store::{RecoveryReport, Store, StoreConfig, StoreStats};
