//! The store proper: a directory of segment files, an in-memory index,
//! checksummed recovery at open, and size-tiered compaction.
//!
//! # Shape
//!
//! Writes append to one *active* segment; at `rotate_bytes` it is
//! sealed and a fresh active segment begins. Sealed segments are
//! immutable. Compaction merges a size-tiered bucket of sealed segments
//! into one *sorted* segment (ordered by key hash, carrying a sparse
//! index sidecar), deduplicating by key with the highest write sequence
//! winning and dropping tombstones once no older segment could still
//! hold a shadowed version.
//!
//! # Recovery contract
//!
//! [`Store::open`] must succeed on any byte-mangled directory without
//! panicking, and afterwards [`Store::get`] must never return bytes
//! whose checksum did not verify. Concretely, recovery:
//!
//! 1. deletes leftover `*.tmp` files (a compaction died mid-write);
//! 2. deletes segments whose header fails its CRC, and segments whose
//!    format/schema/engine revision mismatch this build (the
//!    silent-staleness guard);
//! 3. scans every surviving segment record by record — a framed record
//!    with a bad CRC is skipped, a torn or unframed tail is truncated
//!    off the file;
//! 4. rebuilds the in-memory key index from surviving records, and
//!    validates (or rebuilds) each sorted segment's sparse-index
//!    sidecar.
//!
//! Every one of those actions is counted in [`RecoveryReport`] so
//! callers can surface them as metrics.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::compact::{self, CompactionConfig};
use crate::record::{self, OwnedRecord, Parse, RECORD_HEADER_BYTES};
use crate::segment::{scan_records, Scan, SegmentHeader, SparseIndex, FORMAT_VERSION};

/// Store-wide configuration. `schema_version` and `engine_rev` identify
/// the build whose results are being persisted; segments stamped with
/// anything else are invalidated at open.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Version of the value encoding (bump when the payload codec changes).
    pub schema_version: u32,
    /// Engine git revision stamped into segment headers.
    pub engine_rev: String,
    /// Seal the active segment once it reaches this many bytes.
    pub rotate_bytes: u64,
    /// Anchor every Nth record in a sorted segment's sparse index.
    pub sparse_every: usize,
    /// Size-tiered compaction tuning.
    pub compaction: CompactionConfig,
}

impl StoreConfig {
    /// Config for the given schema/engine identity with default tuning.
    pub fn new(schema_version: u32, engine_rev: &str) -> StoreConfig {
        StoreConfig {
            schema_version,
            engine_rev: engine_rev.to_string(),
            rotate_bytes: 1024 * 1024,
            sparse_every: 8,
            compaction: CompactionConfig::default(),
        }
    }
}

/// What recovery found and did while opening the store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files inspected (before any invalidation).
    pub segments_scanned: u64,
    /// Records that checksum-verified and entered the index.
    pub records_indexed: u64,
    /// Framed records skipped because their CRC failed.
    pub corrupt_records_skipped: u64,
    /// Segments whose tail was truncated (torn or unframed bytes).
    pub torn_truncations: u64,
    /// Bytes removed by tail truncation.
    pub bytes_truncated: u64,
    /// Segments deleted because the header failed its checksum.
    pub header_corrupt_segments: u64,
    /// Segments deleted because format/schema/engine_rev mismatched.
    pub version_mismatch_segments: u64,
    /// Sorted segments whose sparse sidecar was missing or corrupt and
    /// had to be rebuilt from the data scan.
    pub index_rebuilds: u64,
    /// Leftover `*.tmp` files from an interrupted compaction, removed.
    pub tmp_files_removed: u64,
}

impl RecoveryReport {
    /// Segments refused wholesale, for any reason.
    pub fn invalidated_segments(&self) -> u64 {
        self.header_corrupt_segments + self.version_mismatch_segments
    }
}

/// Operation counters since open. Plain fields; the store is
/// externally synchronized (callers wrap it in a mutex).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Value writes accepted.
    pub puts: u64,
    /// Tombstone writes accepted.
    pub tombstones_written: u64,
    /// Lookups served.
    pub gets: u64,
    /// Lookups that returned a value.
    pub hits: u64,
    /// Lookups that found nothing (or a tombstone).
    pub misses: u64,
    /// Records rejected at read time because their bytes no longer
    /// checksum-verify (post-recovery disk rot).
    pub read_crc_rejects: u64,
    /// Explicit `sync` calls.
    pub syncs: u64,
    /// Active-segment seals (rotations).
    pub seals: u64,
    /// Compaction passes completed.
    pub compactions: u64,
    /// Segments consumed by compaction.
    pub compaction_input_segments: u64,
    /// Records read by compaction.
    pub compaction_records_in: u64,
    /// Records surviving compaction.
    pub compaction_records_out: u64,
    /// Older duplicates dropped by newest-wins merge.
    pub compaction_dups_dropped: u64,
    /// Tombstones garbage-collected (full-coverage merges only).
    pub compaction_tombstones_dropped: u64,
    /// Payload bytes appended to the active segment.
    pub bytes_written: u64,
}

/// Where the newest unsorted version of a key lives.
#[derive(Clone, Copy, Debug)]
struct Loc {
    seg_id: u64,
    offset: u64,
    seq: u64,
    tombstone: bool,
}

struct Segment {
    path: PathBuf,
    file: File,
    /// Valid data length (header + intact records).
    len: u64,
    sorted: bool,
    /// Present iff `sorted`.
    sparse: Option<SparseIndex>,
}

/// The persistent result store. Not internally synchronized.
pub struct Store {
    dir: PathBuf,
    cfg: StoreConfig,
    segments: BTreeMap<u64, Segment>,
    /// Newest unsorted location per key (sorted segments are probed
    /// via their sparse indexes instead).
    map: HashMap<String, Loc>,
    active: u64,
    next_seq: u64,
    recovery: RecoveryReport,
    stats: StoreStats,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:016x}.log"))
}

fn sidecar_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:016x}.idx"))
}

fn parse_segment_id(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Store {
    /// Opens (or creates) the store at `dir`, running full checksummed
    /// recovery. Corruption is never an error — it is repaired and
    /// counted in the [`RecoveryReport`]. I/O failures (permissions,
    /// disk full) are errors.
    pub fn open(dir: &Path, cfg: StoreConfig) -> io::Result<Store> {
        fs::create_dir_all(dir)?;
        let mut store = Store {
            dir: dir.to_path_buf(),
            cfg,
            segments: BTreeMap::new(),
            map: HashMap::new(),
            active: 0,
            next_seq: 1,
            recovery: RecoveryReport::default(),
            stats: StoreStats::default(),
        };
        store.recover()?;
        let active = store.create_segment()?;
        store.active = active;
        Ok(store)
    }

    fn recover(&mut self) -> io::Result<()> {
        let mut seg_ids = Vec::new();
        let mut idx_ids = HashSet::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                fs::remove_file(entry.path())?;
                self.recovery.tmp_files_removed += 1;
            } else if let Some(id) = parse_segment_id(&name) {
                seg_ids.push(id);
            } else if let Some(hex) = name.strip_prefix("seg-").and_then(|n| n.strip_suffix(".idx")) {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    idx_ids.insert(id);
                }
            }
        }
        seg_ids.sort_unstable();

        for id in seg_ids {
            self.recovery.segments_scanned += 1;
            let path = segment_path(&self.dir, id);
            let data = fs::read(&path)?;
            let parsed = SegmentHeader::parse(&data);
            let (header, header_len) = match parsed {
                Some(ok) => ok,
                None => {
                    self.remove_segment_files(id)?;
                    self.recovery.header_corrupt_segments += 1;
                    idx_ids.remove(&id);
                    continue;
                }
            };
            if header.format_version != FORMAT_VERSION
                || header.schema_version != self.cfg.schema_version
                || header.engine_rev != self.cfg.engine_rev
            {
                self.remove_segment_files(id)?;
                self.recovery.version_mismatch_segments += 1;
                idx_ids.remove(&id);
                continue;
            }

            let scan = scan_records(&data, header_len);
            self.recovery.corrupt_records_skipped += scan.corrupt_skipped;
            if scan.truncate_tail {
                self.recovery.torn_truncations += 1;
                self.recovery.bytes_truncated += data.len() as u64 - scan.valid_len;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_len)?;
                f.sync_data()?;
            }
            self.recovery.records_indexed += scan.records.len() as u64;

            for r in &scan.records {
                if r.record.seq >= self.next_seq {
                    self.next_seq = r.record.seq + 1;
                }
            }

            let sparse = if header.sorted {
                Some(self.load_or_rebuild_sidecar(id, &scan)?)
            } else {
                for r in &scan.records {
                    self.index_unsorted(id, r.offset, &r.record);
                }
                None
            };
            idx_ids.remove(&id);

            let file = OpenOptions::new().read(true).append(true).open(&path)?;
            self.segments.insert(
                id,
                Segment { path, file, len: scan.valid_len, sorted: header.sorted, sparse },
            );
        }

        // Orphan sidecars (their segment was deleted or never renamed).
        for id in idx_ids {
            let p = sidecar_path(&self.dir, id);
            if p.exists() {
                fs::remove_file(p)?;
            }
        }
        Ok(())
    }

    fn load_or_rebuild_sidecar(&mut self, id: u64, scan: &Scan) -> io::Result<SparseIndex> {
        let rebuilt = SparseIndex::build(&scan.records, self.cfg.sparse_every);
        let path = sidecar_path(&self.dir, id);
        let on_disk = fs::read(&path).ok().and_then(|b| SparseIndex::parse(&b));
        if on_disk.as_ref() == Some(&rebuilt) {
            return Ok(rebuilt);
        }
        self.recovery.index_rebuilds += 1;
        fs::write(&path, rebuilt.encode())?;
        Ok(rebuilt)
    }

    fn index_unsorted(&mut self, seg_id: u64, offset: u64, rec: &OwnedRecord) {
        let loc = Loc { seg_id, offset, seq: rec.seq, tombstone: rec.is_tombstone() };
        match self.map.get(&rec.key) {
            Some(prev) if prev.seq >= rec.seq => {}
            _ => {
                self.map.insert(rec.key.clone(), loc);
            }
        }
    }

    fn remove_segment_files(&self, id: u64) -> io::Result<()> {
        let log = segment_path(&self.dir, id);
        if log.exists() {
            fs::remove_file(log)?;
        }
        let idx = sidecar_path(&self.dir, id);
        if idx.exists() {
            fs::remove_file(idx)?;
        }
        Ok(())
    }

    fn next_segment_id(&self) -> u64 {
        self.segments.keys().next_back().map_or(1, |id| id + 1)
    }

    /// Creates a fresh unsorted segment and returns its id.
    fn create_segment(&mut self) -> io::Result<u64> {
        let id = self.next_segment_id();
        let path = segment_path(&self.dir, id);
        let header = SegmentHeader {
            format_version: FORMAT_VERSION,
            schema_version: self.cfg.schema_version,
            seg_id: id,
            sorted: false,
            engine_rev: self.cfg.engine_rev.clone(),
        };
        let bytes = header.encode();
        let mut file = OpenOptions::new().read(true).append(true).create_new(true).open(&path)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
        sync_dir(&self.dir)?;
        self.segments.insert(
            id,
            Segment { path, file, len: bytes.len() as u64, sorted: false, sparse: None },
        );
        Ok(id)
    }

    fn append(&mut self, key: &str, value: Option<&[u8]>) -> io::Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut buf = Vec::new();
        let n = record::encode(&mut buf, seq, key, value) as u64;
        let active = self.active;
        let offset;
        {
            let seg = self.segments.get_mut(&active).expect("active segment exists");
            seg.file.write_all(&buf)?;
            offset = seg.len;
            seg.len += n;
        }
        self.stats.bytes_written += n;
        self.map.insert(
            key.to_string(),
            Loc { seg_id: active, offset, seq, tombstone: value.is_none() },
        );
        if self.segments[&active].len >= self.cfg.rotate_bytes {
            self.seal_and_roll()?;
        }
        Ok(())
    }

    fn seal_and_roll(&mut self) -> io::Result<()> {
        {
            let seg = self.segments.get_mut(&self.active).expect("active segment exists");
            seg.file.sync_data()?;
        }
        self.stats.seals += 1;
        self.active = self.create_segment()?;
        Ok(())
    }

    /// Appends a value for `key`. Durable only after [`Store::sync`]
    /// (or an OS flush); the torture suite's contract is that synced
    /// records always survive a crash.
    pub fn put(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        self.stats.puts += 1;
        self.append(key, Some(value))
    }

    /// Appends a deletion marker for `key`.
    pub fn tombstone(&mut self, key: &str) -> io::Result<()> {
        self.stats.tombstones_written += 1;
        self.append(key, None)
    }

    /// Forces the active segment's bytes to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.stats.syncs += 1;
        let seg = self.segments.get_mut(&self.active).expect("active segment exists");
        seg.file.sync_data()
    }

    /// Looks up the newest live value for `key`. Values are
    /// CRC-verified on the way out; bytes that rot after recovery are
    /// rejected (counted in `read_crc_rejects`) rather than returned.
    pub fn get(&mut self, key: &str) -> io::Result<Option<Vec<u8>>> {
        self.stats.gets += 1;
        let hash = record::key_hash(key);

        let mut best_seq = 0u64;
        let mut best: Option<OwnedRecord> = None;
        let mut best_loc: Option<Loc> = None;

        if let Some(loc) = self.map.get(key).copied() {
            best_seq = loc.seq;
            best_loc = Some(loc);
        }

        let sorted_ids: Vec<u64> = self
            .segments
            .iter()
            .filter(|(_, s)| s.sorted)
            .map(|(&id, _)| id)
            .collect();
        for id in sorted_ids {
            if let Some(rec) = self.probe_sorted(id, key, hash)? {
                if rec.seq > best_seq {
                    best_seq = rec.seq;
                    best = Some(rec);
                    best_loc = None;
                }
            }
        }

        if let Some(loc) = best_loc {
            if loc.tombstone {
                self.stats.misses += 1;
                return Ok(None);
            }
            match self.read_record_at(loc.seg_id, loc.offset)? {
                Some(rec) if rec.key == key && rec.seq == loc.seq => best = Some(rec),
                _ => {
                    self.stats.read_crc_rejects += 1;
                    self.stats.misses += 1;
                    return Ok(None);
                }
            }
        }

        match best.and_then(|r| r.value) {
            Some(v) => {
                self.stats.hits += 1;
                Ok(Some(v))
            }
            None => {
                self.stats.misses += 1;
                Ok(None)
            }
        }
    }

    /// Probes one sorted segment for `key` via its sparse index: seek
    /// to the anchor at or before the key's hash, then scan forward
    /// until the (hash-ordered) records pass it.
    fn probe_sorted(&mut self, id: u64, key: &str, hash: u64) -> io::Result<Option<OwnedRecord>> {
        let (mut offset, len) = {
            let seg = self.segments.get(&id).expect("segment exists");
            let sparse = seg.sparse.as_ref().expect("sorted segment has index");
            match sparse.seek(hash) {
                Some(o) => (o, seg.len),
                None => return Ok(None),
            }
        };
        while offset < len {
            let rec = match self.read_record_at(id, offset)? {
                Some(r) => r,
                None => {
                    // Disk rot inside a sorted segment: stop probing it.
                    self.stats.read_crc_rejects += 1;
                    return Ok(None);
                }
            };
            let h = record::key_hash(&rec.key);
            if h > hash {
                return Ok(None);
            }
            if h == hash && rec.key == key {
                return Ok(Some(rec));
            }
            offset += RECORD_HEADER_BYTES as u64
                + (rec.encoded_payload_len()) as u64;
        }
        Ok(None)
    }

    /// Reads and CRC-verifies one record at a known offset. `None`
    /// means the bytes there no longer parse — never an invented value.
    fn read_record_at(&mut self, seg_id: u64, offset: u64) -> io::Result<Option<OwnedRecord>> {
        let seg = match self.segments.get_mut(&seg_id) {
            Some(s) => s,
            None => return Ok(None),
        };
        seg.file.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; RECORD_HEADER_BYTES];
        if read_fully(&mut seg.file, &mut header)?.is_none() {
            return Ok(None);
        }
        let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
        if header[0] != record::RECORD_MAGIC
            || len > record::MAX_PAYLOAD_BYTES
            || (len as usize) < record::PAYLOAD_PREFIX_BYTES
        {
            return Ok(None);
        }
        let mut buf = header.to_vec();
        buf.resize(RECORD_HEADER_BYTES + len as usize, 0);
        if read_fully(&mut seg.file, &mut buf[RECORD_HEADER_BYTES..])?.is_none() {
            return Ok(None);
        }
        match record::parse(&buf) {
            Parse::Record { record, .. } => Ok(Some(record)),
            _ => Ok(None),
        }
    }

    /// True when the size-tiered planner would merge something now.
    pub fn needs_compaction(&self) -> bool {
        compact::plan(&self.sealed_sizes(), &self.cfg.compaction).is_some()
    }

    fn sealed_sizes(&self) -> Vec<(u64, u64)> {
        self.segments
            .iter()
            .filter(|(&id, _)| id != self.active)
            .map(|(&id, s)| (id, s.len))
            .collect()
    }

    /// Runs at most one compaction pass. Returns whether a merge
    /// happened. Crash-safe: output is written to a `*.tmp`, fsynced,
    /// renamed, and only then are inputs deleted — recovery handles
    /// every intermediate state (leftover tmp, or duplicate records
    /// across old and new segments, which newest-wins dedup absorbs).
    pub fn maybe_compact(&mut self) -> io::Result<bool> {
        let sealed = self.sealed_sizes();
        let inputs = match compact::plan(&sealed, &self.cfg.compaction) {
            Some(ids) => ids,
            None => return Ok(false),
        };
        let input_set: HashSet<u64> = inputs.iter().copied().collect();
        // Tombstones may only be dropped when this merge covers every
        // sealed segment — otherwise an uncovered older segment could
        // still hold a value the tombstone must keep shadowing.
        let full_coverage = input_set.len() == sealed.len();

        // Gather every record from the inputs (defensive scan: corrupt
        // records are simply not carried forward).
        let mut records_in = 0u64;
        let mut newest: HashMap<String, OwnedRecord> = HashMap::new();
        let mut dups = 0u64;
        for &id in &inputs {
            let path = segment_path(&self.dir, id);
            let data = fs::read(&path)?;
            let header_len = match SegmentHeader::parse(&data) {
                Some((_, n)) => n,
                None => continue, // rotted since recovery; nothing to carry
            };
            let scan = scan_records(&data, header_len);
            records_in += scan.records.len() as u64;
            for r in scan.records {
                match newest.get(&r.record.key) {
                    Some(prev) if prev.seq >= r.record.seq => dups += 1,
                    Some(_) => {
                        dups += 1;
                        newest.insert(r.record.key.clone(), r.record);
                    }
                    None => {
                        newest.insert(r.record.key.clone(), r.record);
                    }
                }
            }
        }

        let mut tombs_dropped = 0u64;
        let mut survivors: Vec<OwnedRecord> = Vec::with_capacity(newest.len());
        for (_, rec) in newest {
            if rec.is_tombstone() && full_coverage {
                tombs_dropped += 1;
            } else {
                survivors.push(rec);
            }
        }
        survivors.sort_by(|a, b| {
            (record::key_hash(&a.key), a.key.as_str()).cmp(&(record::key_hash(&b.key), b.key.as_str()))
        });

        // Write the sorted output: tmp → fsync → rename → fsync dir.
        let out_id = self.next_segment_id();
        let tmp = self.dir.join(format!("seg-{out_id:016x}.tmp"));
        let final_path = segment_path(&self.dir, out_id);
        let header = SegmentHeader {
            format_version: FORMAT_VERSION,
            schema_version: self.cfg.schema_version,
            seg_id: out_id,
            sorted: true,
            engine_rev: self.cfg.engine_rev.clone(),
        };
        let mut data = header.encode();
        let mut offsets = Vec::with_capacity(survivors.len());
        for rec in &survivors {
            offsets.push(data.len() as u64);
            record::encode(&mut data, rec.seq, &rec.key, rec.value.as_deref());
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&data)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        sync_dir(&self.dir)?;

        let anchors: Vec<(u64, u64)> = survivors
            .iter()
            .zip(&offsets)
            .enumerate()
            .filter(|(i, _)| i % self.cfg.sparse_every.max(1) == 0)
            .map(|(_, (rec, &off))| (record::key_hash(&rec.key), off))
            .collect();
        let sparse = SparseIndex { anchors };
        fs::write(sidecar_path(&self.dir, out_id), sparse.encode())?;

        // Install the output, then retire the inputs.
        let file = OpenOptions::new().read(true).append(true).open(&final_path)?;
        self.segments.insert(
            out_id,
            Segment {
                path: final_path,
                file,
                len: data.len() as u64,
                sorted: true,
                sparse: Some(sparse),
            },
        );
        for &id in &inputs {
            self.segments.remove(&id);
            self.remove_segment_files(id)?;
        }
        sync_dir(&self.dir)?;
        self.map.retain(|_, loc| !input_set.contains(&loc.seg_id));

        self.stats.compactions += 1;
        self.stats.compaction_input_segments += inputs.len() as u64;
        self.stats.compaction_records_in += records_in;
        self.stats.compaction_records_out += survivors.len() as u64;
        self.stats.compaction_dups_dropped += dups;
        self.stats.compaction_tombstones_dropped += tombs_dropped;
        Ok(true)
    }

    /// Every live `(key, value)` pair, newest-wins, tombstones elided,
    /// sorted by key for determinism. Used for warm-start preloading.
    pub fn snapshot_live(&mut self) -> io::Result<Vec<(String, Vec<u8>)>> {
        let mut newest: HashMap<String, OwnedRecord> = HashMap::new();
        let paths: Vec<PathBuf> = self.segments.values().map(|s| s.path.clone()).collect();
        for path in paths {
            let data = fs::read(&path)?;
            let header_len = match SegmentHeader::parse(&data) {
                Some((_, n)) => n,
                None => continue,
            };
            for r in scan_records(&data, header_len).records {
                match newest.get(&r.record.key) {
                    Some(prev) if prev.seq >= r.record.seq => {}
                    _ => {
                        newest.insert(r.record.key.clone(), r.record);
                    }
                }
            }
        }
        let mut out: Vec<(String, Vec<u8>)> = newest
            .into_iter()
            .filter_map(|(k, rec)| rec.value.map(|v| (k, v)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats.clone()
    }

    /// What recovery did at open.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery.clone()
    }

    /// Segment files currently live (including the active one).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Distinct keys with a live (non-tombstone) newest version in the
    /// unsorted tier. Diagnostic only.
    pub fn unsorted_keys(&self) -> usize {
        self.map.values().filter(|l| !l.tombstone).count()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the segment currently receiving writes. Exposed so the
    /// crash-torture suite can mangle bytes beyond the last synced
    /// offset to simulate a `kill -9` mid-write.
    pub fn active_segment_path(&self) -> PathBuf {
        self.segments[&self.active].path.clone()
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }
}

impl OwnedRecord {
    fn encoded_payload_len(&self) -> usize {
        record::PAYLOAD_PREFIX_BYTES
            + self.key.len()
            + self.value.as_ref().map_or(0, |v| v.len())
    }
}

/// `read_exact` that reports EOF as `None` instead of an error.
fn read_fully(file: &mut File, buf: &mut [u8]) -> io::Result<Option<()>> {
    let mut at = 0;
    while at < buf.len() {
        let n = file.read(&mut buf[at..])?;
        if n == 0 {
            return Ok(None);
        }
        at += n;
    }
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "scc-store-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn cfg() -> StoreConfig {
        StoreConfig::new(1, "test-rev")
    }

    #[test]
    fn put_get_round_trip_and_reopen() {
        let dir = temp_dir("basic");
        {
            let mut s = Store::open(&dir, cfg()).unwrap();
            s.put("alpha", b"one").unwrap();
            s.put("beta", b"two").unwrap();
            s.put("alpha", b"one-v2").unwrap();
            s.sync().unwrap();
            assert_eq!(s.get("alpha").unwrap().as_deref(), Some(&b"one-v2"[..]));
            assert_eq!(s.get("missing").unwrap(), None);
        }
        let mut s = Store::open(&dir, cfg()).unwrap();
        assert_eq!(s.recovery().records_indexed, 3);
        assert_eq!(s.recovery().invalidated_segments(), 0);
        assert_eq!(s.get("alpha").unwrap().as_deref(), Some(&b"one-v2"[..]));
        assert_eq!(s.get("beta").unwrap().as_deref(), Some(&b"two"[..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tombstone_hides_and_survives_reopen() {
        let dir = temp_dir("tomb");
        {
            let mut s = Store::open(&dir, cfg()).unwrap();
            s.put("k", b"v").unwrap();
            s.tombstone("k").unwrap();
            s.sync().unwrap();
            assert_eq!(s.get("k").unwrap(), None);
        }
        let mut s = Store::open(&dir, cfg()).unwrap();
        assert_eq!(s.get("k").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn small_rotate_cfg() -> StoreConfig {
        let mut c = cfg();
        c.rotate_bytes = 256;
        c.compaction.min_bucket_bytes = 4096;
        c.compaction.trigger = 4;
        c
    }

    #[test]
    fn rotation_seals_segments_and_compaction_merges_them() {
        let dir = temp_dir("compact");
        let mut s = Store::open(&dir, small_rotate_cfg()).unwrap();
        for round in 0..6 {
            for k in 0..8 {
                s.put(&format!("key-{k}"), format!("value-{k}-round-{round}").as_bytes())
                    .unwrap();
            }
        }
        s.sync().unwrap();
        assert!(s.stats().seals > 0);
        assert!(s.needs_compaction());
        assert!(s.maybe_compact().unwrap());
        let st = s.stats();
        assert_eq!(st.compactions, 1);
        assert!(st.compaction_dups_dropped > 0);
        // All 8 keys must still resolve to their newest round.
        for k in 0..8 {
            assert_eq!(
                s.get(&format!("key-{k}")).unwrap().as_deref(),
                Some(format!("value-{k}-round-5").as_bytes()),
                "key-{k} after compaction"
            );
        }
        // And after a reopen, through the sorted probe path.
        drop(s);
        let mut s = Store::open(&dir, small_rotate_cfg()).unwrap();
        assert_eq!(s.recovery().index_rebuilds, 0, "sidecar should verify");
        for k in 0..8 {
            assert_eq!(
                s.get(&format!("key-{k}")).unwrap().as_deref(),
                Some(format!("value-{k}-round-5").as_bytes())
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_coverage_compaction_drops_tombstones_partial_keeps_them() {
        let dir = temp_dir("tombgc");
        let mut c = small_rotate_cfg();
        c.compaction.trigger = 2;
        let mut s = Store::open(&dir, c).unwrap();
        for k in 0..8 {
            s.put(&format!("key-{k}"), &[0u8; 64]).unwrap();
        }
        for k in 0..8 {
            s.tombstone(&format!("key-{k}")).unwrap();
        }
        s.sync().unwrap();
        while s.maybe_compact().unwrap() {}
        // Deleted keys stay deleted whatever the GC decided.
        for k in 0..8 {
            assert_eq!(s.get(&format!("key-{k}")).unwrap(), None);
        }
        assert_eq!(s.snapshot_live().unwrap(), Vec::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_version_bump_invalidates_all_segments() {
        let dir = temp_dir("schema");
        {
            let mut s = Store::open(&dir, cfg()).unwrap();
            s.put("k", b"v").unwrap();
            s.sync().unwrap();
        }
        let mut bumped = cfg();
        bumped.schema_version = 2;
        let mut s = Store::open(&dir, bumped).unwrap();
        assert!(s.recovery().version_mismatch_segments > 0);
        assert_eq!(s.get("k").unwrap(), None, "stale-schema record must not warm-hit");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_rev_change_invalidates_all_segments() {
        let dir = temp_dir("rev");
        {
            let mut s = Store::open(&dir, cfg()).unwrap();
            s.put("k", b"v").unwrap();
            s.sync().unwrap();
        }
        let mut other = cfg();
        other.engine_rev = "other-rev".into();
        let mut s = Store::open(&dir, other).unwrap();
        assert!(s.recovery().version_mismatch_segments > 0);
        assert_eq!(s.get("k").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_files_are_removed() {
        let dir = temp_dir("tmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("seg-00000000000000ff.tmp"), b"half-written compaction").unwrap();
        let s = Store::open(&dir, cfg()).unwrap();
        assert_eq!(s.recovery().tmp_files_removed, 1);
        assert!(!dir.join("seg-00000000000000ff.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sidecar_is_rebuilt() {
        let dir = temp_dir("sidecar");
        let mut c = small_rotate_cfg();
        c.compaction.trigger = 2;
        {
            let mut s = Store::open(&dir, c.clone()).unwrap();
            for k in 0..12 {
                s.put(&format!("key-{k}"), &[7u8; 80]).unwrap();
            }
            s.sync().unwrap();
            while s.maybe_compact().unwrap() {}
            assert!(s.segment_count() > 0);
        }
        // Mangle every sidecar on disk.
        let mut mangled = 0;
        for entry in fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "idx") {
                let mut b = fs::read(&p).unwrap();
                let mid = b.len() / 2;
                b[mid] ^= 0xFF;
                fs::write(&p, b).unwrap();
                mangled += 1;
            }
        }
        assert!(mangled > 0, "compaction should have produced a sidecar");
        let mut s = Store::open(&dir, c).unwrap();
        assert_eq!(s.recovery().index_rebuilds, mangled);
        for k in 0..12 {
            assert_eq!(s.get(&format!("key-{k}")).unwrap().as_deref(), Some(&[7u8; 80][..]));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_live_is_newest_wins_and_sorted() {
        let dir = temp_dir("snap");
        let mut s = Store::open(&dir, cfg()).unwrap();
        s.put("b", b"old").unwrap();
        s.put("a", b"1").unwrap();
        s.put("b", b"new").unwrap();
        s.put("c", b"3").unwrap();
        s.tombstone("c").unwrap();
        let live = s.snapshot_live().unwrap();
        assert_eq!(
            live,
            vec![("a".to_string(), b"1".to_vec()), ("b".to_string(), b"new".to_vec())]
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
