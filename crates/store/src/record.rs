//! The on-disk record format and its defensive parser.
//!
//! # Grammar
//!
//! Every record in a segment file is:
//!
//! ```text
//! record  := magic len crc payload
//! magic   := 0xC5                       ; one byte, resync sentinel
//! len     := u32 le                     ; payload length in bytes
//! crc     := u32 le                     ; CRC-32C of payload
//! payload := seq flags key_len key value
//! seq     := u64 le                     ; global write sequence (newest wins)
//! flags   := u8                         ; bit 0 = tombstone
//! key_len := u16 le
//! key     := key_len bytes of UTF-8
//! value   := (len - 11 - key_len) bytes
//! ```
//!
//! The parser never panics on hostile input: every read is
//! bounds-checked, the CRC is verified before any payload byte is
//! believed, and ill-framed bytes are classified as *torn* (a partial
//! tail write — truncate and keep everything before it) or *corrupt*
//! (framing survived but the checksum did not — skip exactly this
//! record and keep scanning). That classification is what the recovery
//! torture suite exercises at every byte offset and bit position.

use crate::crc::crc32c;

/// First byte of every record; a cheap resync check when skipping a
/// corrupt record (if the bytes after the skip don't start with the
/// magic, framing itself is untrustworthy and the scan stops).
pub const RECORD_MAGIC: u8 = 0xC5;

/// Fixed bytes before the payload: magic + len + crc.
pub const RECORD_HEADER_BYTES: usize = 1 + 4 + 4;

/// Payload bytes before the key: seq + flags + key_len.
pub const PAYLOAD_PREFIX_BYTES: usize = 8 + 1 + 2;

/// Hard cap on one record's payload. Anything larger in a `len` field
/// is treated as corruption, which bounds how far a flipped length bit
/// can send the scanner.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// Flag bit marking a deletion.
pub const FLAG_TOMBSTONE: u8 = 1 << 0;

/// One fully-decoded record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedRecord {
    /// Global write sequence number; the newest sequence for a key wins.
    pub seq: u64,
    /// Content key.
    pub key: String,
    /// Payload bytes; `None` for a tombstone.
    pub value: Option<Vec<u8>>,
}

impl OwnedRecord {
    /// True when this record deletes its key.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }
}

/// Serializes one record into `buf`, returning the encoded length.
pub fn encode(buf: &mut Vec<u8>, seq: u64, key: &str, value: Option<&[u8]>) -> usize {
    assert!(key.len() <= u16::MAX as usize, "key longer than 64 KiB");
    let value_bytes = value.unwrap_or(&[]);
    let payload_len = PAYLOAD_PREFIX_BYTES + key.len() + value_bytes.len();
    assert!(payload_len as u64 <= MAX_PAYLOAD_BYTES as u64, "record payload too large");

    let start = buf.len();
    buf.push(RECORD_MAGIC);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&[0; 4]); // crc patched below
    let payload_at = buf.len();
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(if value.is_none() { FLAG_TOMBSTONE } else { 0 });
    buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(value_bytes);
    let crc = crc32c(&buf[payload_at..]);
    buf[start + 5..start + 9].copy_from_slice(&crc.to_le_bytes());
    buf.len() - start
}

/// Outcome of parsing the bytes at one offset of a segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parse {
    /// A valid record occupying `total` bytes.
    Record {
        /// The decoded record.
        record: OwnedRecord,
        /// Encoded size including the header.
        total: usize,
    },
    /// Framing is intact (magic + plausible length) but the checksum —
    /// or the payload structure the checksum vouched against — does not
    /// verify. Skip exactly `skip` bytes and keep scanning.
    Corrupt {
        /// Bytes to skip to reach the next record boundary.
        skip: usize,
    },
    /// The bytes end mid-record: a torn tail write. Everything from
    /// this offset on is unusable; truncate here.
    Torn,
    /// The bytes cannot be framed at all (bad magic or absurd length):
    /// nothing after this offset can be trusted.
    Unframed,
    /// Clean end of data.
    End,
}

/// Parses the record starting at `data[0]`, defensively.
pub fn parse(data: &[u8]) -> Parse {
    if data.is_empty() {
        return Parse::End;
    }
    if data[0] != RECORD_MAGIC {
        return Parse::Unframed;
    }
    if data.len() < RECORD_HEADER_BYTES {
        return Parse::Torn;
    }
    let len = u32::from_le_bytes(data[1..5].try_into().unwrap());
    if len > MAX_PAYLOAD_BYTES || (len as usize) < PAYLOAD_PREFIX_BYTES {
        // The length itself is implausible: a flipped bit here destroys
        // framing, so the caller must not believe any later offset
        // either. (If this is really a partial header at the tail, the
        // effect — stop here — is the same.)
        return Parse::Unframed;
    }
    let total = RECORD_HEADER_BYTES + len as usize;
    if data.len() < total {
        return Parse::Torn;
    }
    let expected_crc = u32::from_le_bytes(data[5..9].try_into().unwrap());
    let payload = &data[RECORD_HEADER_BYTES..total];
    if crc32c(payload) != expected_crc {
        return Parse::Corrupt { skip: total };
    }
    // The checksum verified, so structural reads below cannot fail
    // unless the writer was buggy — but stay defensive anyway.
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let flags = payload[8];
    let key_len = u16::from_le_bytes(payload[9..11].try_into().unwrap()) as usize;
    if PAYLOAD_PREFIX_BYTES + key_len > payload.len() {
        return Parse::Corrupt { skip: total };
    }
    let key = match std::str::from_utf8(&payload[PAYLOAD_PREFIX_BYTES..PAYLOAD_PREFIX_BYTES + key_len]) {
        Ok(k) => k.to_string(),
        Err(_) => return Parse::Corrupt { skip: total },
    };
    let value = if flags & FLAG_TOMBSTONE != 0 {
        None
    } else {
        Some(payload[PAYLOAD_PREFIX_BYTES + key_len..].to_vec())
    };
    Parse::Record { record: OwnedRecord { seq, key, value }, total }
}

/// Stable 64-bit FNV-1a hash of a key — the sort and probe order of
/// compacted segments' sparse indexes. Must never change across
/// versions that share a segment format.
pub fn key_hash(key: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(seq: u64, key: &str, value: Option<&[u8]>) -> (Vec<u8>, OwnedRecord) {
        let mut buf = Vec::new();
        let n = encode(&mut buf, seq, key, value);
        assert_eq!(n, buf.len());
        match parse(&buf) {
            Parse::Record { record, total } => {
                assert_eq!(total, buf.len());
                (buf, record)
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn records_round_trip() {
        let (_, r) = roundtrip(7, "job|key|1", Some(b"payload bytes"));
        assert_eq!(r.seq, 7);
        assert_eq!(r.key, "job|key|1");
        assert_eq!(r.value.as_deref(), Some(&b"payload bytes"[..]));
        let (_, t) = roundtrip(8, "gone", None);
        assert!(t.is_tombstone());
    }

    #[test]
    fn empty_values_and_keys_survive() {
        let (_, r) = roundtrip(1, "", Some(b""));
        assert_eq!(r.key, "");
        assert_eq!(r.value.as_deref(), Some(&b""[..]));
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_reframed_but_never_garbage() {
        let mut buf = Vec::new();
        encode(&mut buf, 42, "the-key", Some(b"the value of the record"));
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut bent = buf.clone();
                bent[byte] ^= 1 << bit;
                match parse(&bent) {
                    // A flip may relocate framing fields; whatever
                    // parses must still checksum-verify, which a single
                    // flip cannot fake.
                    Parse::Record { record, .. } => {
                        panic!("flip at byte {byte} bit {bit} yielded {record:?}")
                    }
                    Parse::Corrupt { .. } | Parse::Torn | Parse::Unframed => {}
                    Parse::End => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_offset_is_torn_or_unframed() {
        let mut buf = Vec::new();
        encode(&mut buf, 9, "key", Some(&[0xAB; 100]));
        for cut in 1..buf.len() {
            match parse(&buf[..cut]) {
                Parse::Torn | Parse::Unframed => {}
                other => panic!("cut at {cut} gave {other:?}"),
            }
        }
        assert_eq!(parse(&[]), Parse::End);
    }

    #[test]
    fn corrupt_records_skip_exactly_their_framing() {
        let mut buf = Vec::new();
        encode(&mut buf, 1, "a", Some(b"first"));
        let first_len = buf.len();
        encode(&mut buf, 2, "b", Some(b"second"));
        // Flip a payload byte of the first record (well past its header).
        buf[RECORD_HEADER_BYTES + 12] ^= 0x40;
        match parse(&buf) {
            Parse::Corrupt { skip } => assert_eq!(skip, first_len),
            other => panic!("{other:?}"),
        }
        match parse(&buf[first_len..]) {
            Parse::Record { record, .. } => assert_eq!(record.key, "b"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn key_hash_is_stable() {
        // Pinned values: changing the hash silently breaks every
        // compacted segment on disk.
        assert_eq!(key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(key_hash("ab"), key_hash("ba"));
    }
}
