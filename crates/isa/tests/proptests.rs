//! Property-based tests for ISA semantics and the reference interpreter.

use proptest::prelude::*;
use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_isa::{eval_alu, eval_cond, CcFlags, Cond, Machine, Op, ProgramBuilder, Reg};

proptest! {
    #[test]
    fn alu_add_sub_match_wrapping(a in any::<i64>(), b in any::<i64>()) {
        let add = eval_alu(Op::Add, a, b, CcFlags::default(), None).unwrap();
        prop_assert_eq!(add.value, Some(a.wrapping_add(b)));
        let sub = eval_alu(Op::Sub, a, b, CcFlags::default(), None).unwrap();
        prop_assert_eq!(sub.value, Some(a.wrapping_sub(b)));
    }

    #[test]
    fn cond_negation_complements(a in any::<i64>(), b in any::<i64>()) {
        let cc = CcFlags::from_cmp(a, b);
        for c in Cond::all() {
            prop_assert_eq!(eval_cond(c, cc), !eval_cond(c.negate(), cc));
        }
    }

    #[test]
    fn cmp_flags_encode_all_orderings(a in any::<i64>(), b in any::<i64>()) {
        let cc = CcFlags::from_cmp(a, b);
        prop_assert_eq!(eval_cond(Cond::Lt, cc), a < b);
        prop_assert_eq!(eval_cond(Cond::Eq, cc), a == b);
        prop_assert_eq!(eval_cond(Cond::B, cc), (a as u64) < (b as u64));
    }

    #[test]
    fn shifts_are_masked(a in any::<i64>(), amt in 0i64..256) {
        let shl = eval_alu(Op::Shl, a, amt, CcFlags::default(), None).unwrap();
        prop_assert_eq!(shl.value, Some(a.wrapping_shl((amt & 63) as u32)));
    }

    #[test]
    fn straight_line_sum_program(vals in proptest::collection::vec(-10_000i64..10_000, 1..20)) {
        // An accumulation program computes the same sum the host does.
        let mut b = ProgramBuilder::new(0);
        let acc = Reg::int(0);
        let tmp = Reg::int(1);
        b.mov_imm(acc, 0);
        for &v in &vals {
            b.mov_imm(tmp, v);
            b.add(acc, acc, tmp);
        }
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        let res = m.run(1_000_000).unwrap();
        prop_assert!(res.halted);
        prop_assert_eq!(m.reg(acc), vals.iter().sum::<i64>());
    }

    #[test]
    fn memory_roundtrip_program(cells in proptest::collection::vec((0u64..64, -1000i64..1000), 1..16)) {
        let mut b = ProgramBuilder::new(0);
        let base = Reg::int(1);
        let v = Reg::int(2);
        b.mov_imm(base, 0x9000);
        for &(cell, val) in &cells {
            b.mov_imm(v, val);
            b.store(v, base, 8 * cell as i64);
        }
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        m.run(1_000_000).unwrap();
        // Last write to each cell wins.
        let mut expected = std::collections::HashMap::new();
        for &(cell, val) in &cells {
            expected.insert(0x9000u64 + 8 * cell, val);
        }
        for (addr, val) in expected {
            prop_assert_eq!(m.mem().read(addr), val);
        }
    }

    #[test]
    fn random_programs_halt_deterministically(seed in 0u64..512) {
        let cfg = RandProgConfig::default();
        let p = random_program(seed, &cfg);
        let mut m1 = Machine::new(&p);
        let mut m2 = Machine::new(&p);
        let r1 = m1.run(2_000_000).unwrap();
        prop_assert!(r1.halted);
        m2.run(2_000_000).unwrap();
        prop_assert_eq!(m1.snapshot(), m2.snapshot());
    }

    #[test]
    fn counted_loop_runs_exact_trip_count(trips in 1i64..200) {
        let mut b = ProgramBuilder::new(0);
        let (cnt, acc) = (Reg::int(1), Reg::int(0));
        b.mov_imm(acc, 0);
        b.mov_imm(cnt, trips);
        let top = b.here();
        b.add_imm(acc, acc, 1);
        b.sub_imm(cnt, cnt, 1);
        b.cmp_br_imm(Cond::Ne, cnt, 0, top);
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        m.run(10_000_000).unwrap();
        prop_assert_eq!(m.reg(acc), trips);
    }
}
