//! Property-style tests for ISA semantics and the reference interpreter,
//! driven by the in-crate SplitMix64 generator (no registry dependencies)
//! so they run identically in offline environments.

use scc_isa::rand_prog::{random_program, RandProgConfig, SplitMix64};
use scc_isa::{eval_alu, eval_cond, CcFlags, Cond, Machine, Op, ProgramBuilder, Reg};

fn i64_cases(seed: u64, n: usize) -> Vec<(i64, i64)> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n + 8);
    // Edge values first, then random pairs.
    let edges = [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
    for &a in &edges {
        out.push((a, a.wrapping_mul(3)));
    }
    for _ in 0..n {
        out.push((rng.next_u64() as i64, rng.next_u64() as i64));
    }
    out
}

#[test]
fn alu_add_sub_match_wrapping() {
    for (a, b) in i64_cases(1, 256) {
        let add = eval_alu(Op::Add, a, b, CcFlags::default(), None).unwrap();
        assert_eq!(add.value, Some(a.wrapping_add(b)));
        let sub = eval_alu(Op::Sub, a, b, CcFlags::default(), None).unwrap();
        assert_eq!(sub.value, Some(a.wrapping_sub(b)));
    }
}

#[test]
fn cond_negation_complements() {
    for (a, b) in i64_cases(2, 256) {
        let cc = CcFlags::from_cmp(a, b);
        for c in Cond::all() {
            assert_eq!(eval_cond(c, cc), !eval_cond(c.negate(), cc));
        }
    }
}

#[test]
fn cmp_flags_encode_all_orderings() {
    for (a, b) in i64_cases(3, 256) {
        let cc = CcFlags::from_cmp(a, b);
        assert_eq!(eval_cond(Cond::Lt, cc), a < b);
        assert_eq!(eval_cond(Cond::Eq, cc), a == b);
        assert_eq!(eval_cond(Cond::B, cc), (a as u64) < (b as u64));
    }
}

#[test]
fn shifts_are_masked() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..256 {
        let a = rng.next_u64() as i64;
        let amt = rng.below(256) as i64;
        let shl = eval_alu(Op::Shl, a, amt, CcFlags::default(), None).unwrap();
        assert_eq!(shl.value, Some(a.wrapping_shl((amt & 63) as u32)));
    }
}

#[test]
fn straight_line_sum_program() {
    let mut rng = SplitMix64::new(5);
    for _ in 0..24 {
        let len = 1 + rng.below(19) as usize;
        let vals: Vec<i64> = (0..len).map(|_| rng.below(20_001) as i64 - 10_000).collect();
        // An accumulation program computes the same sum the host does.
        let mut b = ProgramBuilder::new(0);
        let acc = Reg::int(0);
        let tmp = Reg::int(1);
        b.mov_imm(acc, 0);
        for &v in &vals {
            b.mov_imm(tmp, v);
            b.add(acc, acc, tmp);
        }
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        let res = m.run(1_000_000).unwrap();
        assert!(res.halted);
        assert_eq!(m.reg(acc), vals.iter().sum::<i64>());
    }
}

#[test]
fn memory_roundtrip_program() {
    let mut rng = SplitMix64::new(6);
    for _ in 0..24 {
        let len = 1 + rng.below(15) as usize;
        let cells: Vec<(u64, i64)> =
            (0..len).map(|_| (rng.below(64), rng.below(2000) as i64 - 1000)).collect();
        let mut b = ProgramBuilder::new(0);
        let base = Reg::int(1);
        let v = Reg::int(2);
        b.mov_imm(base, 0x9000);
        for &(cell, val) in &cells {
            b.mov_imm(v, val);
            b.store(v, base, 8 * cell as i64);
        }
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        m.run(1_000_000).unwrap();
        // Last write to each cell wins.
        let mut expected = std::collections::HashMap::new();
        for &(cell, val) in &cells {
            expected.insert(0x9000u64 + 8 * cell, val);
        }
        for (addr, val) in expected {
            assert_eq!(m.mem().read(addr), val);
        }
    }
}

#[test]
fn random_programs_halt_deterministically() {
    let cfg = RandProgConfig::default();
    for seed in (0..512).step_by(7) {
        let p = random_program(seed, &cfg);
        let mut m1 = Machine::new(&p);
        let mut m2 = Machine::new(&p);
        let r1 = m1.run(2_000_000).unwrap();
        assert!(r1.halted, "seed {seed} did not halt");
        m2.run(2_000_000).unwrap();
        assert_eq!(m1.snapshot(), m2.snapshot(), "seed {seed} nondeterministic");
    }
}

#[test]
fn counted_loop_runs_exact_trip_count() {
    let mut rng = SplitMix64::new(7);
    let mut trips: Vec<i64> = vec![1, 2, 199];
    trips.extend((0..12).map(|_| 1 + rng.below(199) as i64));
    for trips in trips {
        let mut b = ProgramBuilder::new(0);
        let (cnt, acc) = (Reg::int(1), Reg::int(0));
        b.mov_imm(acc, 0);
        b.mov_imm(cnt, trips);
        let top = b.here();
        b.add_imm(acc, acc, 1);
        b.sub_imm(cnt, cnt, 1);
        b.cmp_br_imm(Cond::Ne, cnt, 0, top);
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        m.run(10_000_000).unwrap();
        assert_eq!(m.reg(acc), trips);
    }
}
