//! A fast, deterministic hasher for hot-path maps keyed by addresses and
//! stream ids (the FxHash function from the Firefox/rustc lineage).
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! lookup and seeds itself per-process via `RandomState`, which both slows
//! the simulator's per-fetch maps and makes iteration order
//! process-dependent. FxHash is a couple of multiplies, and with the
//! default (zero) seed every process hashes identically — a requirement
//! for byte-identical report output across serial and parallel runs.
//! Simulator keys are trusted (addresses, ids), so hash-flooding
//! resistance is not needed.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher: rotate, xor, multiply per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero per-instance state, so maps start
/// identical in every process).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m1: FxHashMap<u64, u32> = FxHashMap::default();
        let mut m2: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m1.insert(i * 64, i as u32);
            m2.insert(i * 64, i as u32);
        }
        let k1: Vec<_> = m1.keys().copied().collect();
        let k2: Vec<_> = m2.keys().copied().collect();
        assert_eq!(k1, k2, "iteration order must match between instances");
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let hash = |k: u64| bh.hash_one(k);
        // Sequential region addresses (the hot key shape) must not collide.
        let hashes: FxHashSet<u64> = (0..10_000u64).map(|i| hash(i * 32)).collect();
        assert_eq!(hashes.len(), 10_000);
    }
}
