//! Micro-op (uop) definitions.

use crate::reg::Reg;
use std::fmt;

/// A code address in bytes. Macro-instructions occupy `[addr, addr+len)`.
pub type Addr = u64;

/// A micro-op source operand.
///
/// SCC's *speculative constant propagation* rewrites `Reg` operands into
/// `Imm` operands ("conversion from register-register to register-immediate
/// format"), so operands must be mutable in place on decoded micro-ops.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Operand {
    /// No operand in this slot.
    #[default]
    None,
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl Operand {
    /// The register named by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// The immediate carried by this operand, if any.
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            _ => None,
        }
    }

    /// True if the operand slot is used.
    pub fn is_some(self) -> bool {
        !matches!(self, Operand::None)
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

/// Branch conditions, evaluated against [`crate::CcFlags`] (or directly by
/// the fused compare-and-branch micro-op).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (`zf`).
    Eq,
    /// Not equal (`!zf`).
    Ne,
    /// Signed less-than (`sf != of`).
    Lt,
    /// Signed greater-or-equal (`sf == of`).
    Ge,
    /// Signed less-or-equal (`zf || sf != of`).
    Le,
    /// Signed greater-than (`!zf && sf == of`).
    Gt,
    /// Unsigned below (`cf`).
    B,
    /// Unsigned above-or-equal (`!cf`).
    Ae,
}

impl Cond {
    /// The condition with inverted sense (`Eq` ↔ `Ne`, etc.).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
        }
    }

    /// All conditions, for exhaustive tests.
    pub fn all() -> [Cond; 8] {
        [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le, Cond::Gt, Cond::B, Cond::Ae]
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::B => "b",
            Cond::Ae => "ae",
        };
        f.write_str(s)
    }
}

/// Micro-op operations.
///
/// The split matters to SCC: `Add`..`Neg` plus the moves are "simple
/// integer arithmetic, logic, and shift operations" the front-end ALU can
/// evaluate; `Mul`/`Div`/`Rem`, all memory ops, and all floating-point ops
/// are explicitly outside its reach (paper §III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// No operation.
    Nop,
    /// Stop the machine. Used to terminate workloads.
    Halt,
    /// `dst = imm` (register-immediate move).
    MovImm,
    /// `dst = src1` (register-register move).
    Mov,
    /// `dst = src1 + src2`.
    Add,
    /// `dst = src1 - src2`.
    Sub,
    /// `dst = src1 & src2`.
    And,
    /// `dst = src1 | src2`.
    Or,
    /// `dst = src1 ^ src2`.
    Xor,
    /// `dst = src1 << (src2 & 63)`.
    Shl,
    /// `dst = (src1 as u64) >> (src2 & 63)` (logical).
    Shr,
    /// `dst = src1 >> (src2 & 63)` (arithmetic).
    Sar,
    /// `dst = !src1`.
    Not,
    /// `dst = -src1`.
    Neg,
    /// `dst = src1 * src2` (complex integer: not SCC-foldable).
    Mul,
    /// `dst = src1 / src2`, 0 on divide-by-zero (complex: not SCC-foldable).
    Div,
    /// `dst = src1 % src2`, 0 on divide-by-zero (complex: not SCC-foldable).
    Rem,
    /// Compare `src1` with `src2`; writes condition codes only.
    Cmp,
    /// Test `src1 & src2`; writes condition codes only.
    Test,
    /// `dst = cond(CC) ? 1 : 0`.
    SetCc,
    /// `dst = mem[src1 + offset]`.
    Load,
    /// `mem[src1 + offset] = src2`.
    Store,
    /// Floating-point add on FP registers (bit-cast `f64`).
    FpAdd,
    /// Floating-point subtract.
    FpSub,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// FP register move.
    FpMov,
    /// Coarse stand-in for a SIMD operation (multi-cycle FP work).
    Simd,
    /// Unconditional direct jump to `target`.
    Jmp,
    /// Indirect jump to the address in `src1`.
    JmpInd,
    /// Conditional branch on CC to `target`.
    BrCc,
    /// Macro-fused compare-and-branch: compare `src1`,`src2`, branch on
    /// `cond` to `target`.
    CmpBr,
    /// Direct call: `dst = return address`, jump to `target`.
    Call,
    /// Return: indirect jump to the address in `src1`.
    Ret,
}

impl Op {
    /// True if the op writes condition codes.
    pub fn writes_cc(self) -> bool {
        matches!(
            self,
            Op::Cmp | Op::Test | Op::Add | Op::Sub | Op::And | Op::Or | Op::Xor | Op::Neg
        )
    }

    /// True if the op reads condition codes.
    pub fn reads_cc(self) -> bool {
        matches!(self, Op::BrCc | Op::SetCc)
    }

    /// True for any control-transfer op.
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Jmp | Op::JmpInd | Op::BrCc | Op::CmpBr | Op::Call | Op::Ret)
    }

    /// True for conditional control transfers.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Op::BrCc | Op::CmpBr)
    }

    /// True for memory operations.
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// True for floating-point / SIMD operations.
    pub fn is_fp(self) -> bool {
        matches!(self, Op::FpAdd | Op::FpSub | Op::FpMul | Op::FpDiv | Op::FpMov | Op::Simd)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Nop => "nop",
            Op::Halt => "halt",
            Op::MovImm => "movi",
            Op::Mov => "mov",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::Sar => "sar",
            Op::Not => "not",
            Op::Neg => "neg",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Rem => "rem",
            Op::Cmp => "cmp",
            Op::Test => "test",
            Op::SetCc => "setcc",
            Op::Load => "ld",
            Op::Store => "st",
            Op::FpAdd => "fadd",
            Op::FpSub => "fsub",
            Op::FpMul => "fmul",
            Op::FpDiv => "fdiv",
            Op::FpMov => "fmov",
            Op::Simd => "simd",
            Op::Jmp => "jmp",
            Op::JmpInd => "jmpi",
            Op::BrCc => "brcc",
            Op::CmpBr => "cmpbr",
            Op::Call => "call",
            Op::Ret => "ret",
        };
        f.write_str(s)
    }
}

/// A decoded micro-op.
///
/// Micro-ops are the currency of the whole simulator: the decoder produces
/// them, the micro-op cache stores them, SCC rewrites them, and the
/// out-of-order backend executes them. Each micro-op remembers the byte
/// address and length of its owning macro-instruction so region membership
/// and next-PC computation work everywhere.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Uop {
    /// Operation.
    pub op: Op,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// First source operand.
    pub src1: Operand,
    /// Second source operand.
    pub src2: Operand,
    /// Memory displacement (for `Load`/`Store`).
    pub offset: i64,
    /// Direct branch target, if any.
    pub target: Option<Addr>,
    /// Branch/set condition, if any.
    pub cond: Option<Cond>,
    /// Whether this op updates condition codes (set from [`Op::writes_cc`]
    /// at decode; SCC may clear it when folding proves the flags dead — we
    /// keep it faithful and never clear it).
    pub writes_cc: bool,
    /// Byte address of the owning macro-instruction.
    pub macro_addr: Addr,
    /// Byte length of the owning macro-instruction.
    pub macro_len: u8,
    /// True if this is a branch whose target lies inside its own
    /// macro-instruction (x86 string-op style). Compaction aborts on these
    /// (paper §III).
    pub self_loop: bool,
    /// Index of this micro-op within its macro-instruction's expansion.
    pub slot: u8,
    /// Micro-fused with the next micro-op in decode order: the pair
    /// occupies one fetch / micro-op cache slot (Table I counts "fused
    /// µops"). Execution still issues both halves.
    pub fused_with_next: bool,
}

impl Uop {
    /// Creates a micro-op with the given operation and all other fields
    /// empty; builders fill in the rest.
    pub fn new(op: Op) -> Uop {
        Uop {
            op,
            dst: None,
            src1: Operand::None,
            src2: Operand::None,
            offset: 0,
            target: None,
            cond: None,
            writes_cc: op.writes_cc(),
            macro_addr: 0,
            macro_len: 0,
            self_loop: false,
            slot: 0,
            fused_with_next: false,
        }
    }

    /// Address of the next sequential macro-instruction.
    pub fn next_addr(&self) -> Addr {
        self.macro_addr + self.macro_len as Addr
    }

    /// Registers read by this micro-op (at most 2).
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1.reg(), self.src2.reg()].into_iter().flatten()
    }

    /// True if this is the last micro-op of its macro-instruction's
    /// expansion — callers use this to advance the macro-level PC.
    pub fn is_last_in_macro(&self, macro_uop_count: u8) -> bool {
        self.slot + 1 == macro_uop_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let r = Reg::int(4);
        assert_eq!(Operand::from(r).reg(), Some(r));
        assert_eq!(Operand::from(42i64).imm(), Some(42));
        assert!(!Operand::None.is_some());
        assert!(Operand::from(r).is_some());
        assert_eq!(Operand::None.reg(), None);
        assert_eq!(Operand::Reg(r).imm(), None);
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in Cond::all() {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
    }

    #[test]
    fn op_classification() {
        assert!(Op::Cmp.writes_cc());
        assert!(Op::BrCc.reads_cc());
        assert!(!Op::Mov.writes_cc());
        assert!(Op::CmpBr.is_branch());
        assert!(Op::CmpBr.is_cond_branch());
        assert!(!Op::Jmp.is_cond_branch());
        assert!(Op::Load.is_mem());
        assert!(Op::Simd.is_fp());
        assert!(!Op::Add.is_mem());
        assert!(Op::Ret.is_branch());
    }

    #[test]
    fn uop_src_regs() {
        let mut u = Uop::new(Op::Add);
        u.src1 = Reg::int(1).into();
        u.src2 = Operand::Imm(3);
        let regs: Vec<_> = u.src_regs().collect();
        assert_eq!(regs, vec![Reg::int(1)]);
    }

    #[test]
    fn next_addr_uses_macro_len() {
        let mut u = Uop::new(Op::Nop);
        u.macro_addr = 0x1000;
        u.macro_len = 3;
        assert_eq!(u.next_addr(), 0x1003);
    }
}
