//! Micro-fusion detection (the artifact's `--enable-micro-fusion`).
//!
//! Intel front-ends fuse a load with its consuming ALU micro-op into one
//! *fused* micro-op for fetch, micro-op cache, and rename bandwidth
//! purposes; the pair splits again at the scheduler. Table I sizes the
//! machine in "fused µops" and the paper's artifact enables fusion in
//! both baseline and SCC runs.
//!
//! The model here is occupancy-only: [`fuse_pairs`] marks a load whose
//! destination feeds the *immediately following* simple integer micro-op
//! (and is not needed afterwards — we conservatively require the consumer
//! to overwrite it or it to be the consumer's only use site in the pair),
//! and slot accounting in the micro-op cache and fetch counts the pair as
//! one. Execution is unchanged: the pair still issues as two operations,
//! exactly like the real pipeline after un-lamination.

use crate::uop::{Op, Uop};

/// True if `consumer` can micro-fuse with a preceding load that writes
/// `loaded`: a simple single-cycle integer op reading the loaded value.
fn can_consume(consumer: &Uop, loaded: crate::Reg) -> bool {
    let simple = matches!(
        consumer.op,
        Op::Add | Op::Sub | Op::And | Op::Or | Op::Xor | Op::Shl | Op::Shr | Op::Sar
            | Op::Cmp | Op::Test | Op::Mov
    );
    simple && consumer.src_regs().any(|r| r == loaded)
}

/// Marks fusible load+op pairs in a decoded micro-op sequence by setting
/// [`Uop::fused_with_next`] on the load. Pairs never overlap: a micro-op
/// participates in at most one pair.
///
/// Returns the number of pairs fused.
pub fn fuse_pairs(uops: &mut [Uop]) -> usize {
    let mut fused = 0;
    let mut i = 0;
    while i + 1 < uops.len() {
        let fusible = uops[i].op == Op::Load
            && !uops[i].fused_with_next
            && uops[i]
                .dst
                .is_some_and(|d| d.is_int() && can_consume(&uops[i + 1], d));
        if fusible {
            uops[i].fused_with_next = true;
            fused += 1;
            i += 2; // the consumer cannot also start a pair
        } else {
            i += 1;
        }
    }
    fused
}

/// Number of front-end slots a micro-op sequence occupies with fusion:
/// each fused pair counts once.
pub fn slot_count(uops: &[Uop]) -> usize {
    let mut slots = 0;
    let mut skip = false;
    for u in uops {
        if skip {
            skip = false;
            continue;
        }
        slots += 1;
        skip = u.fused_with_next;
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::reg::Reg;

    fn decoded(b: ProgramBuilder) -> Vec<Uop> {
        b.try_build()
            .expect("valid program")
            .insts()
            .iter()
            .flat_map(|m| m.uops.iter().cloned())
            .collect()
    }

    #[test]
    fn load_feeding_next_alu_fuses() {
        let r = Reg::int;
        let mut b = ProgramBuilder::new(0);
        b.load(r(1), r(0), 8);
        b.add(r(2), r(1), r(3)); // consumes the load
        b.load(r(4), r(0), 16);
        b.mul(r(5), r(4), r(4)); // mul is not fusible
        b.halt();
        let mut uops = decoded(b);
        assert_eq!(fuse_pairs(&mut uops), 1);
        assert!(uops[0].fused_with_next);
        assert!(!uops[2].fused_with_next, "mul consumer does not fuse");
        assert_eq!(slot_count(&uops), 4, "5 uops, one pair");
    }

    #[test]
    fn unrelated_neighbor_does_not_fuse() {
        let r = Reg::int;
        let mut b = ProgramBuilder::new(0);
        b.load(r(1), r(0), 8);
        b.add(r(2), r(3), r(4)); // does not read r1
        b.halt();
        let mut uops = decoded(b);
        assert_eq!(fuse_pairs(&mut uops), 0);
        assert_eq!(slot_count(&uops), 3);
    }

    #[test]
    fn pairs_do_not_overlap_or_chain() {
        let r = Reg::int;
        let mut b = ProgramBuilder::new(0);
        b.load(r(1), r(0), 0);
        b.load(r(2), r(1), 0); // consumes r1, but loads never consume
        b.add(r(3), r(2), r(2));
        b.halt();
        let mut uops = decoded(b);
        // Only the second load + add fuse (a load is not a fusible consumer).
        assert_eq!(fuse_pairs(&mut uops), 1);
        assert!(!uops[0].fused_with_next);
        assert!(uops[1].fused_with_next);
    }

    #[test]
    fn fp_destinations_do_not_fuse() {
        let r = Reg::int;
        let mut b = ProgramBuilder::new(0);
        b.load(Reg::fp(0), r(0), 0);
        b.fadd(Reg::fp(1), Reg::fp(0), Reg::fp(2));
        b.halt();
        let mut uops = decoded(b);
        assert_eq!(fuse_pairs(&mut uops), 0);
    }

    #[test]
    fn idempotent() {
        let r = Reg::int;
        let mut b = ProgramBuilder::new(0);
        b.load(r(1), r(0), 8);
        b.xor(r(2), r(1), r(1));
        b.halt();
        let mut uops = decoded(b);
        assert_eq!(fuse_pairs(&mut uops), 1);
        assert_eq!(fuse_pairs(&mut uops), 0, "second pass finds nothing new");
        assert_eq!(slot_count(&uops), 2);
    }
}
