//! In-order reference interpreter: the correctness oracle.
//!
//! The out-of-order pipeline (with or without SCC) must finish any program
//! in an architectural state identical to this interpreter's; that
//! equivalence is property-tested across random programs in the
//! integration suite.

use crate::program::Program;
use crate::reg::{CcFlags, Reg, NUM_REGS};
use crate::semantics::{branch_of, eval_alu, eval_complex, eval_fp};
use crate::uop::{Addr, Op, Operand, Uop};
use std::collections::HashMap;
use std::fmt;

/// Simulated data memory: sparse, zero-default, 8-byte cells named by byte
/// address.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Memory {
    cells: HashMap<u64, i64>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Creates a memory seeded from `(address, value)` pairs.
    pub fn from_image(image: &[(u64, i64)]) -> Memory {
        Memory { cells: image.iter().copied().collect() }
    }

    /// Reads the cell at `addr` (zero if never written).
    pub fn read(&self, addr: u64) -> i64 {
        self.cells.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the cell at `addr`.
    pub fn write(&mut self, addr: u64, value: i64) {
        if value == 0 {
            self.cells.remove(&addr);
        } else {
            self.cells.insert(addr, value);
        }
    }

    /// Number of non-zero cells (for tests and stats).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cell holds a non-zero value.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// A canonical, sorted dump of all non-zero cells.
    pub fn dump(&self) -> Vec<(u64, i64)> {
        let mut v: Vec<_> = self.cells.iter().map(|(&a, &x)| (a, x)).collect();
        v.sort_unstable();
        v
    }
}

/// A comparable snapshot of architectural state: registers, condition
/// codes, and memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchSnapshot {
    /// All 32 architectural registers.
    pub regs: [i64; NUM_REGS],
    /// Condition codes.
    pub cc: CcFlags,
    /// Canonical memory dump.
    pub mem: Vec<(u64, i64)>,
}

/// Errors raised during interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// Control reached an address with no instruction.
    InvalidPc(Addr),
    /// The micro-op budget was exhausted before `halt`.
    OutOfBudget {
        /// Micro-ops executed before giving up.
        executed: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidPc(a) => write!(f, "control reached invalid address {a:#x}"),
            RunError::OutOfBudget { executed } => {
                write!(f, "micro-op budget exhausted after {executed} micro-ops")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Summary of a completed (or budget-bounded) run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Dynamic micro-op count executed (excluding the final `halt`).
    pub uops: u64,
    /// Dynamic macro-instruction count executed.
    pub macros: u64,
    /// Whether the program reached `halt`.
    pub halted: bool,
}

/// Per-macro-step trace information, for tests and debugging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepInfo {
    /// Address of the executed macro-instruction.
    pub addr: Addr,
    /// Number of micro-ops executed for it (string ops may repeat).
    pub uops: u64,
    /// Next PC after the instruction.
    pub next_pc: Addr,
}

/// The in-order reference machine.
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    regs: [i64; NUM_REGS],
    cc: CcFlags,
    mem: Memory,
    pc: Addr,
    halted: bool,
    uops: u64,
    macros: u64,
    op_counts: HashMap<Op, u64>,
}

impl<'p> Machine<'p> {
    /// Creates a machine at the program's entry with zeroed registers and
    /// the program's initial memory image.
    pub fn new(program: &'p Program) -> Machine<'p> {
        Machine {
            program,
            regs: [0; NUM_REGS],
            cc: CcFlags::default(),
            mem: Memory::from_image(program.init_data()),
            pc: program.entry(),
            halted: false,
            uops: 0,
            macros: 0,
            op_counts: HashMap::new(),
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// True once `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes a register (useful for test setup).
    pub fn set_reg(&mut self, r: Reg, v: i64) {
        self.regs[r.index()] = v;
    }

    /// Current condition codes.
    pub fn cc(&self) -> CcFlags {
        self.cc
    }

    /// The data memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to data memory (test setup).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Takes a comparable snapshot of the architectural state.
    pub fn snapshot(&self) -> ArchSnapshot {
        ArchSnapshot { regs: self.regs, cc: self.cc, mem: self.mem.dump() }
    }

    fn operand_value(&self, op: Operand) -> i64 {
        match op {
            Operand::None => 0,
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    /// Executes a single micro-op against the architectural state,
    /// returning the next PC if the micro-op redirected control.
    fn exec_uop(&mut self, uop: &Uop) -> Option<Addr> {
        let a = self.operand_value(uop.src1);
        let b = self.operand_value(uop.src2);
        match uop.op {
            Op::Nop => None,
            Op::Halt => {
                self.halted = true;
                None
            }
            Op::Load => {
                let addr = (a.wrapping_add(uop.offset)) as u64;
                let v = self.mem.read(addr);
                self.regs[uop.dst.expect("load has dst").index()] = v;
                None
            }
            Op::Store => {
                let addr = (a.wrapping_add(uop.offset)) as u64;
                self.mem.write(addr, b);
                None
            }
            Op::Mul | Op::Div | Op::Rem => {
                let v = eval_complex(uop.op, a, b).expect("complex op");
                self.regs[uop.dst.expect("complex op has dst").index()] = v;
                None
            }
            op if op.is_fp() => {
                let v = eval_fp(op, a, b).expect("fp op");
                self.regs[uop.dst.expect("fp op has dst").index()] = v;
                None
            }
            op if op.is_branch() => {
                if op == Op::Call {
                    self.regs[uop.dst.expect("call has link dst").index()] =
                        uop.next_addr() as i64;
                }
                let out = branch_of(uop, a, b, self.cc).expect("branch op");
                if out.taken || out.next != uop.next_addr() {
                    Some(out.next)
                } else {
                    // Not-taken conditional branch: fall through, but only
                    // redirect if this is the last uop of its macro (it
                    // always is in our decoder).
                    None
                }
            }
            op => {
                let r = eval_alu(op, a, b, self.cc, uop.cond).expect("alu op");
                if let Some(v) = r.value {
                    self.regs[uop.dst.expect("alu op with value has dst").index()] = v;
                }
                if let Some(cc) = r.cc {
                    if uop.writes_cc {
                        self.cc = cc;
                    }
                }
                None
            }
        }
    }

    /// Executes one macro-instruction (all of its micro-ops, including
    /// string-op self-loop iterations).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidPc`] if the PC does not name an
    /// instruction, and [`RunError::OutOfBudget`] if a single
    /// macro-instruction exceeds `uop_budget` micro-ops (a runaway string
    /// op).
    pub fn step_macro(&mut self, uop_budget: u64) -> Result<StepInfo, RunError> {
        let inst = self.program.inst_at(self.pc).ok_or(RunError::InvalidPc(self.pc))?;
        let addr = inst.addr;
        let mut executed: u64 = 0;
        let mut next_pc = inst.next_addr();
        // Execute the expansion; a self-looping branch restarts it.
        'expansion: loop {
            for uop in &inst.uops {
                executed += 1;
                self.uops += 1;
                *self.op_counts.entry(uop.op).or_insert(0) += 1;
                if executed > uop_budget {
                    return Err(RunError::OutOfBudget { executed });
                }
                if let Some(target) = self.exec_uop(uop) {
                    if uop.self_loop && target == addr {
                        continue 'expansion;
                    }
                    next_pc = target;
                    break 'expansion;
                }
                if self.halted {
                    next_pc = inst.next_addr();
                    break 'expansion;
                }
            }
            break;
        }
        self.macros += 1;
        self.pc = next_pc;
        Ok(StepInfo { addr, uops: executed, next_pc })
    }

    /// Runs until `halt` or until `max_uops` micro-ops have executed.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidPc`] if control escapes the program.
    /// Exhausting the budget is reported through `halted == false`, not an
    /// error, so bounded smoke runs are easy to write.
    pub fn run(&mut self, max_uops: u64) -> Result<RunResult, RunError> {
        while !self.halted && self.uops < max_uops {
            match self.step_macro(max_uops.saturating_sub(self.uops).max(1)) {
                Ok(_) => {}
                Err(RunError::OutOfBudget { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(RunResult { uops: self.uops, macros: self.macros, halted: self.halted })
    }

    /// Total micro-ops executed so far.
    pub fn uop_count(&self) -> u64 {
        self.uops
    }

    /// Total macro-instructions executed so far.
    pub fn macro_count(&self) -> u64 {
        self.macros
    }

    /// Dynamic execution count of one operation kind.
    pub fn op_count_of(&self, op: Op) -> u64 {
        self.op_counts.get(&op).copied().unwrap_or(0)
    }

    /// Dynamic count of floating-point/SIMD micro-ops executed (including
    /// loads/stores whose destination or source is an FP register).
    pub fn fp_uop_count(&self) -> u64 {
        self.op_counts
            .iter()
            .filter(|(op, _)| op.is_fp())
            .map(|(_, c)| *c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::uop::Cond;

    fn r(n: u8) -> Reg {
        Reg::int(n)
    }

    #[test]
    fn memory_zero_default_and_canonical_dump() {
        let mut m = Memory::new();
        assert_eq!(m.read(0x1000), 0);
        m.write(0x1000, 7);
        m.write(0x0800, 3);
        assert_eq!(m.dump(), vec![(0x0800, 3), (0x1000, 7)]);
        m.write(0x1000, 0);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = ProgramBuilder::new(0);
        b.mov_imm(r(1), 6);
        b.mov_imm(r(2), 7);
        b.mul(r(3), r(1), r(2));
        b.add_imm(r(3), r(3), 100);
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        let res = m.run(100).unwrap();
        assert!(res.halted);
        assert_eq!(m.reg(r(3)), 142);
        assert_eq!(res.macros, 5);
        assert_eq!(res.uops, 5);
    }

    #[test]
    fn loop_with_fused_branch() {
        let mut b = ProgramBuilder::new(0x1000);
        b.mov_imm(r(0), 0);
        b.mov_imm(r(1), 10);
        let top = b.here();
        b.add(r(0), r(0), r(1));
        b.sub_imm(r(1), r(1), 1);
        b.cmp_br_imm(Cond::Ne, r(1), 0, top);
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        m.run(10_000).unwrap();
        assert_eq!(m.reg(r(0)), 55);
        assert_eq!(m.reg(r(1)), 0);
    }

    #[test]
    fn cc_branch_and_setcc() {
        let mut b = ProgramBuilder::new(0);
        let less = b.label();
        b.mov_imm(r(1), 3);
        b.mov_imm(r(2), 5);
        b.cmp(r(1), r(2));
        b.br(Cond::Lt, less);
        b.mov_imm(r(3), 111); // skipped
        b.bind(less);
        b.setcc(Cond::Lt, r(4));
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(r(3)), 0);
        assert_eq!(m.reg(r(4)), 1, "flags survive the branch");
    }

    #[test]
    fn loads_stores_and_init_image() {
        let mut b = ProgramBuilder::new(0);
        b.words(0x4000, &[11, 22]);
        b.mov_imm(r(1), 0x4000);
        b.load(r(2), r(1), 0);
        b.load(r(3), r(1), 8);
        b.add(r(4), r(2), r(3));
        b.store(r(4), r(1), 16);
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(r(4)), 33);
        assert_eq!(m.mem().read(0x4010), 33);
    }

    #[test]
    fn call_and_ret() {
        let mut b = ProgramBuilder::new(0);
        let func = b.label();
        let link = r(15);
        b.mov_imm(r(1), 1);
        b.call(func, link);
        b.add_imm(r(1), r(1), 100); // after return
        b.halt();
        b.bind(func);
        b.add_imm(r(1), r(1), 10);
        b.ret(link);
        let p = b.build();
        let mut m = Machine::new(&p);
        let res = m.run(100).unwrap();
        assert!(res.halted);
        assert_eq!(m.reg(r(1)), 111);
    }

    #[test]
    fn indirect_jump() {
        let mut b = ProgramBuilder::new(0);
        let t = b.label();
        b.mov_imm(r(1), 0); // patched below via address math
        // We need the target address; bind after emitting and use a second pass:
        // simpler: jump indirect through a register loaded with a label we
        // compute by building a jump table in data memory.
        b.jmp_ind(r(1));
        b.bind(t);
        b.mov_imm(r(2), 42);
        b.halt();
        let p = {
            // Rebuild with the known target address of `t`.
            let taddr = b.try_build().unwrap().insts()[1].next_addr();
            let mut b2 = ProgramBuilder::new(0);
            let t2 = b2.label();
            b2.mov_imm(r(1), taddr as i64);
            b2.jmp_ind(r(1));
            b2.bind(t2);
            b2.mov_imm(r(2), 42);
            b2.halt();
            b2.build()
        };
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(r(2)), 42);
    }

    #[test]
    fn string_op_iterates() {
        let mut b = ProgramBuilder::new(0);
        b.mov_imm(r(1), 4); // count
        b.mov_imm(r(2), 0x8000); // base
        b.mov_imm(r(3), 9); // value
        b.rep_store(r(1), r(2), r(3));
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        let res = m.run(1000).unwrap();
        assert!(res.halted);
        for i in 0..4 {
            assert_eq!(m.mem().read(0x8000 + 8 * i), 9);
        }
        assert_eq!(m.mem().read(0x8020), 0);
        assert_eq!(m.reg(r(1)), 0);
        // One macro, 16 uops (4 iterations x 4 uops).
        assert_eq!(m.macro_count(), 4 + 1); // 3 movs + rep + halt
    }

    #[test]
    fn budget_exhaustion_is_not_an_error() {
        let mut b = ProgramBuilder::new(0);
        let top = b.here();
        b.add_imm(r(0), r(0), 1);
        b.jmp(top);
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        let res = m.run(10).unwrap();
        assert!(!res.halted);
        assert!(res.uops >= 10);
    }

    #[test]
    fn invalid_pc_is_reported() {
        let mut b = ProgramBuilder::new(0);
        b.nop();
        // No halt: control runs off the end.
        let p = b.build();
        let mut m = Machine::new(&p);
        let err = m.run(100).unwrap_err();
        assert!(matches!(err, RunError::InvalidPc(_)));
    }

    #[test]
    fn snapshot_equality() {
        let mut b = ProgramBuilder::new(0);
        b.mov_imm(r(1), 5);
        b.store(r(1), r(0), 0x100);
        b.halt();
        let p = b.build();
        let mut m1 = Machine::new(&p);
        let mut m2 = Machine::new(&p);
        m1.run(100).unwrap();
        m2.run(100).unwrap();
        assert_eq!(m1.snapshot(), m2.snapshot());
    }

    #[test]
    fn fp_pipeline_smoke() {
        let mut b = ProgramBuilder::new(0);
        let f0 = Reg::fp(0);
        let f1 = Reg::fp(1);
        let f2 = Reg::fp(2);
        b.word(0x100, 2.5f64.to_bits() as i64);
        b.word(0x108, 4.0f64.to_bits() as i64);
        b.mov_imm(r(1), 0x100);
        b.load(f0, r(1), 0);
        b.load(f1, r(1), 8);
        b.fmul(f2, f0, f1);
        b.store(f2, r(1), 16);
        b.halt();
        let p = b.build();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(f64::from_bits(m.mem().read(0x110) as u64), 10.0);
    }
}
