//! Single-source-of-truth execution semantics for micro-ops.
//!
//! Both the in-order reference interpreter ([`crate::Machine`]) and the
//! out-of-order pipeline's execute stage evaluate micro-ops through the
//! functions in this module, and crucially so does the SCC unit's front-end
//! ALU — so a speculatively folded result is bit-identical to what the
//! backend would have computed, and any divergence is a *prediction* error,
//! never a semantics mismatch.

use crate::reg::CcFlags;
use crate::uop::{Cond, Op, Uop};

/// The result of evaluating an ALU micro-op: the value written to the
/// destination (if any) and the resulting condition codes (if written).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AluResult {
    /// Destination value, when the op produces one.
    pub value: Option<i64>,
    /// New condition codes, when the op writes them.
    pub cc: Option<CcFlags>,
}

/// True if `op` is one of the "simple integer arithmetic, logic, and shift
/// operations" the SCC front-end ALU may evaluate (paper §III). Loads,
/// stores, floating point, and complex integer ops (`mul`/`div`/`rem`) are
/// excluded.
pub fn is_foldable_int(op: Op) -> bool {
    matches!(
        op,
        Op::MovImm
            | Op::Mov
            | Op::Add
            | Op::Sub
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::Sar
            | Op::Not
            | Op::Neg
            | Op::Cmp
            | Op::Test
            | Op::SetCc
    )
}

/// True if `op` transfers control. Re-exported convenience over
/// [`Op::is_branch`].
pub fn is_branch(op: Op) -> bool {
    op.is_branch()
}

/// Evaluates an integer ALU operation on concrete operand values.
///
/// `a` is the first source, `b` the second (ignored for unary ops), `cc`
/// the incoming condition codes (used by `SetCc`). Returns `None` for ops
/// that are not integer-ALU evaluable (memory, FP, branches, mul/div —
/// mul/div *are* evaluable by the backend but not here; the backend uses
/// [`eval_complex`]).
pub fn eval_alu(op: Op, a: i64, b: i64, cc: CcFlags, cond: Option<Cond>) -> Option<AluResult> {
    let r = |v: i64| AluResult { value: Some(v), cc: None };
    let rc = |v: i64| AluResult { value: Some(v), cc: Some(CcFlags::from_result(v)) };
    Some(match op {
        Op::MovImm | Op::Mov => r(a),
        Op::Add => {
            let v = a.wrapping_add(b);
            let (_, of) = a.overflowing_add(b);
            AluResult {
                value: Some(v),
                cc: Some(CcFlags {
                    zf: v == 0,
                    sf: v < 0,
                    of,
                    cf: (a as u64).checked_add(b as u64).is_none(),
                }),
            }
        }
        Op::Sub => AluResult { value: Some(a.wrapping_sub(b)), cc: Some(CcFlags::from_cmp(a, b)) },
        Op::And => rc(a & b),
        Op::Or => rc(a | b),
        Op::Xor => rc(a ^ b),
        Op::Shl => r(a.wrapping_shl((b & 63) as u32)),
        Op::Shr => r(((a as u64) >> (b & 63) as u32) as i64),
        Op::Sar => r(a >> ((b & 63) as u32)),
        Op::Not => r(!a),
        Op::Neg => rc(a.wrapping_neg()),
        Op::Cmp => AluResult { value: None, cc: Some(CcFlags::from_cmp(a, b)) },
        Op::Test => AluResult { value: None, cc: Some(CcFlags::from_test(a, b)) },
        Op::SetCc => r(if eval_cond(cond.expect("setcc requires a condition"), cc) { 1 } else { 0 }),
        _ => return None,
    })
}

/// Evaluates complex integer ops (`mul`/`div`/`rem`). Division by zero
/// yields 0 rather than trapping, so random programs always terminate.
pub fn eval_complex(op: Op, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        Op::Mul => a.wrapping_mul(b),
        Op::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Op::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        _ => return None,
    })
}

/// Evaluates floating-point ops on bit-cast `f64` operands, returning a
/// bit-cast result. NaNs are canonicalized through the bit-cast round trip
/// exactly as the hardware register file would hold them.
pub fn eval_fp(op: Op, a: i64, b: i64) -> Option<i64> {
    let fa = f64::from_bits(a as u64);
    let fb = f64::from_bits(b as u64);
    let v = match op {
        Op::FpAdd => fa + fb,
        Op::FpSub => fa - fb,
        Op::FpMul => fa * fb,
        Op::FpDiv => fa / fb,
        Op::FpMov => fa,
        // Stand-in SIMD op: a fused multiply-add-like reduction, chosen only
        // to consume FP execution bandwidth like packed x86 SSE work.
        Op::Simd => fa.mul_add(fb, fa),
        _ => return None,
    };
    Some(v.to_bits() as i64)
}

/// Evaluates a branch condition against condition codes.
pub fn eval_cond(cond: Cond, cc: CcFlags) -> bool {
    match cond {
        Cond::Eq => cc.zf,
        Cond::Ne => !cc.zf,
        Cond::Lt => cc.sf != cc.of,
        Cond::Ge => cc.sf == cc.of,
        Cond::Le => cc.zf || cc.sf != cc.of,
        Cond::Gt => !cc.zf && cc.sf == cc.of,
        Cond::B => cc.cf,
        Cond::Ae => !cc.cf,
    }
}

/// Branch outcome: taken or not, and where control goes next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The next macro-instruction address.
    pub next: u64,
}

/// Resolves a control-transfer micro-op given concrete operand values and
/// incoming condition codes.
///
/// `a`/`b` are the values of `src1`/`src2` (used by `JmpInd`/`Ret` for the
/// target, and by `CmpBr` for the comparison). Returns `None` if `uop` is
/// not a branch.
pub fn branch_of(uop: &Uop, a: i64, b: i64, cc: CcFlags) -> Option<BranchOutcome> {
    let fallthrough = uop.next_addr();
    Some(match uop.op {
        Op::Jmp | Op::Call => BranchOutcome {
            taken: true,
            next: uop.target.expect("direct jump requires target"),
        },
        Op::JmpInd | Op::Ret => BranchOutcome { taken: true, next: a as u64 },
        Op::BrCc => {
            let taken = eval_cond(uop.cond.expect("brcc requires cond"), cc);
            BranchOutcome {
                taken,
                next: if taken { uop.target.expect("brcc requires target") } else { fallthrough },
            }
        }
        Op::CmpBr => {
            let taken = eval_cond(uop.cond.expect("cmpbr requires cond"), CcFlags::from_cmp(a, b));
            BranchOutcome {
                taken,
                next: if taken { uop.target.expect("cmpbr requires target") } else { fallthrough },
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;
    use crate::uop::Operand;

    #[test]
    fn foldable_set_matches_paper_restrictions() {
        for op in [Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Shl, Op::Shr, Op::Sar, Op::Mov, Op::MovImm, Op::Not, Op::Neg, Op::Cmp, Op::Test, Op::SetCc] {
            assert!(is_foldable_int(op), "{op} should be foldable");
        }
        for op in [Op::Mul, Op::Div, Op::Rem, Op::Load, Op::Store, Op::FpAdd, Op::Simd, Op::Jmp, Op::BrCc, Op::CmpBr] {
            assert!(!is_foldable_int(op), "{op} should not be foldable");
        }
    }

    #[test]
    fn alu_add_wraps_and_sets_flags() {
        let r = eval_alu(Op::Add, i64::MAX, 1, CcFlags::default(), None).unwrap();
        assert_eq!(r.value, Some(i64::MIN));
        let cc = r.cc.unwrap();
        assert!(cc.of);
        assert!(cc.sf);
        assert!(!cc.zf);
    }

    #[test]
    fn alu_shifts_mask_amount() {
        let r = eval_alu(Op::Shl, 1, 65, CcFlags::default(), None).unwrap();
        assert_eq!(r.value, Some(2));
        let r = eval_alu(Op::Shr, -1, 63, CcFlags::default(), None).unwrap();
        assert_eq!(r.value, Some(1));
        let r = eval_alu(Op::Sar, -8, 2, CcFlags::default(), None).unwrap();
        assert_eq!(r.value, Some(-2));
    }

    #[test]
    fn alu_setcc_reads_cc() {
        let cc = CcFlags::from_cmp(3, 3);
        let r = eval_alu(Op::SetCc, 0, 0, cc, Some(Cond::Eq)).unwrap();
        assert_eq!(r.value, Some(1));
        let r = eval_alu(Op::SetCc, 0, 0, cc, Some(Cond::Ne)).unwrap();
        assert_eq!(r.value, Some(0));
    }

    #[test]
    fn alu_rejects_non_alu_ops() {
        assert!(eval_alu(Op::Load, 0, 0, CcFlags::default(), None).is_none());
        assert!(eval_alu(Op::Mul, 0, 0, CcFlags::default(), None).is_none());
        assert!(eval_alu(Op::FpAdd, 0, 0, CcFlags::default(), None).is_none());
    }

    #[test]
    fn complex_div_by_zero_is_zero() {
        assert_eq!(eval_complex(Op::Div, 7, 0), Some(0));
        assert_eq!(eval_complex(Op::Rem, 7, 0), Some(0));
        assert_eq!(eval_complex(Op::Div, 7, 2), Some(3));
        assert_eq!(eval_complex(Op::Mul, 3, -4), Some(-12));
        assert_eq!(eval_complex(Op::Div, i64::MIN, -1), Some(i64::MIN.wrapping_div(-1).wrapping_neg().wrapping_neg()));
    }

    #[test]
    fn complex_min_div_neg1_does_not_panic() {
        // i64::MIN / -1 overflows with a plain `/`; wrapping_div handles it.
        assert_eq!(eval_complex(Op::Div, i64::MIN, -1), Some(i64::MIN));
        assert_eq!(eval_complex(Op::Rem, i64::MIN, -1), Some(0));
    }

    #[test]
    fn fp_roundtrips_bits() {
        let a = 1.5f64.to_bits() as i64;
        let b = 2.25f64.to_bits() as i64;
        let r = eval_fp(Op::FpAdd, a, b).unwrap();
        assert_eq!(f64::from_bits(r as u64), 3.75);
        assert!(eval_fp(Op::Add, a, b).is_none());
    }

    #[test]
    fn cond_evaluation_matches_cmp() {
        let cases: [(i64, i64); 6] = [(1, 2), (2, 1), (5, 5), (-3, 4), (-1, -1), (i64::MIN, 1)];
        for (a, b) in cases {
            let cc = CcFlags::from_cmp(a, b);
            assert_eq!(eval_cond(Cond::Eq, cc), a == b, "{a} eq {b}");
            assert_eq!(eval_cond(Cond::Ne, cc), a != b, "{a} ne {b}");
            assert_eq!(eval_cond(Cond::Lt, cc), a < b, "{a} lt {b}");
            assert_eq!(eval_cond(Cond::Ge, cc), a >= b, "{a} ge {b}");
            assert_eq!(eval_cond(Cond::Le, cc), a <= b, "{a} le {b}");
            assert_eq!(eval_cond(Cond::Gt, cc), a > b, "{a} gt {b}");
            assert_eq!(eval_cond(Cond::B, cc), (a as u64) < (b as u64), "{a} b {b}");
            assert_eq!(eval_cond(Cond::Ae, cc), (a as u64) >= (b as u64), "{a} ae {b}");
        }
    }

    fn branch_uop(op: Op, cond: Option<Cond>, target: Option<u64>) -> Uop {
        let mut u = Uop::new(op);
        u.cond = cond;
        u.target = target;
        u.macro_addr = 0x100;
        u.macro_len = 2;
        u.src1 = Operand::Reg(Reg::int(0));
        u.src2 = Operand::Reg(Reg::int(1));
        u
    }

    #[test]
    fn branch_resolution() {
        let j = branch_uop(Op::Jmp, None, Some(0x200));
        assert_eq!(branch_of(&j, 0, 0, CcFlags::default()).unwrap(), BranchOutcome { taken: true, next: 0x200 });

        let ji = branch_uop(Op::JmpInd, None, None);
        assert_eq!(branch_of(&ji, 0x300, 0, CcFlags::default()).unwrap().next, 0x300);

        let cb = branch_uop(Op::CmpBr, Some(Cond::Lt), Some(0x400));
        let taken = branch_of(&cb, 1, 2, CcFlags::default()).unwrap();
        assert!(taken.taken);
        assert_eq!(taken.next, 0x400);
        let not = branch_of(&cb, 3, 2, CcFlags::default()).unwrap();
        assert!(!not.taken);
        assert_eq!(not.next, 0x102);

        let bc = branch_uop(Op::BrCc, Some(Cond::Eq), Some(0x500));
        let cc = CcFlags::from_cmp(9, 9);
        assert!(branch_of(&bc, 0, 0, cc).unwrap().taken);
        assert!(!branch_of(&bc, 0, 0, CcFlags::from_cmp(1, 9)).unwrap().taken);

        let add = Uop::new(Op::Add);
        assert!(branch_of(&add, 0, 0, CcFlags::default()).is_none());
    }

    #[test]
    fn shift_mask_boundary_is_mod_64() {
        // The `& 63` mask: amounts 63, 64, and 65 must behave as 63, 0,
        // and 1 — for all three shift ops, on positive and negative
        // inputs. This is the semantics any speculative folding path
        // must reproduce bit-for-bit.
        let cc = CcFlags::default();
        for a in [1i64, -1, i64::MIN, i64::MAX, 0x1234_5678_9abc_def0u64 as i64] {
            for (amt, eff) in [(62i64, 62u32), (63, 63), (64, 0), (65, 1), (127, 63), (-1, 63)] {
                let shl = eval_alu(Op::Shl, a, amt, cc, None).unwrap().value.unwrap();
                assert_eq!(shl, a.wrapping_shl(eff), "shl {a} by {amt}");
                let shr = eval_alu(Op::Shr, a, amt, cc, None).unwrap().value.unwrap();
                assert_eq!(shr, ((a as u64) >> eff) as i64, "shr {a} by {amt}");
                let sar = eval_alu(Op::Sar, a, amt, cc, None).unwrap().value.unwrap();
                assert_eq!(sar, a >> eff, "sar {a} by {amt}");
            }
        }
        // Amount 64 is the identity for every shift op.
        for op in [Op::Shl, Op::Shr, Op::Sar] {
            let r = eval_alu(op, -5, 64, cc, None).unwrap();
            assert_eq!(r.value, Some(-5), "{op} by 64 must be identity");
        }
    }
}
