//! Human-readable rendering of micro-ops and programs, for debugging and
//! for the compaction-explorer example (the paper's Figure 4 shows exactly
//! this kind of before/after listing).

use crate::program::Program;
use crate::uop::{Op, Operand, Uop};
use std::fmt;
use std::fmt::Write as _;

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::None => f.write_str("_"),
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v}"),
        }
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(c) = self.cond {
            write!(f, ".{c}")?;
        }
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        match self.op {
            Op::Load => write!(f, " <- [{}{}]", self.src1, fmt_offset(self.offset))?,
            Op::Store => {
                write!(f, " [{}{}] <- {}", self.src1, fmt_offset(self.offset), self.src2)?
            }
            _ => {
                if self.src1.is_some() {
                    write!(f, " {}", self.src1)?;
                }
                if self.src2.is_some() {
                    write!(f, ", {}", self.src2)?;
                }
            }
        }
        if let Some(t) = self.target {
            write!(f, " -> {t:#x}")?;
        }
        if self.self_loop {
            f.write_str(" (self-loop)")?;
        }
        if self.fused_with_next {
            f.write_str(" (+fused)")?;
        }
        Ok(())
    }
}

fn fmt_offset(off: i64) -> String {
    if off == 0 {
        String::new()
    } else if off > 0 {
        format!("+{off}")
    } else {
        format!("{off}")
    }
}

/// Renders a whole program as an address-annotated listing.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    let mut last_region = u64::MAX;
    for m in program.insts() {
        let region = crate::region(m.addr);
        if region != last_region {
            let _ = writeln!(out, "; --- region {region:#x} ---");
            last_region = region;
        }
        for (i, u) in m.uops.iter().enumerate() {
            if i == 0 {
                let _ = writeln!(out, "{:#06x}: {u}", m.addr);
            } else {
                let _ = writeln!(out, "        .{u}");
            }
        }
    }
    out
}

/// Renders a micro-op slice as an indented listing (used to show compacted
/// streams next to their unoptimized originals).
pub fn render_uops(uops: &[Uop]) -> String {
    let mut out = String::new();
    for u in uops {
        let _ = writeln!(out, "  {:#06x}.{}: {u}", u.macro_addr, u.slot);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::reg::Reg;
    use crate::uop::Cond;

    #[test]
    fn uop_display_forms() {
        let mut b = ProgramBuilder::new(0x20);
        b.mov_imm(Reg::int(1), 42);
        b.load(Reg::int(2), Reg::int(1), 8);
        b.store(Reg::int(2), Reg::int(1), -8);
        let top = b.here();
        b.cmp_br_imm(Cond::Ne, Reg::int(2), 0, top);
        b.halt();
        let p = b.build();
        let texts: Vec<String> =
            p.insts().iter().map(|m| m.uops[0].to_string()).collect();
        assert_eq!(texts[0], "movi r1 $42");
        assert_eq!(texts[1], "ld r2 <- [r1+8]");
        assert_eq!(texts[2], "st [r1-8] <- r2");
        assert!(texts[3].starts_with("cmpbr.ne r2, $0 -> "));
        assert_eq!(texts[4], "halt");
    }

    #[test]
    fn disassembly_groups_regions() {
        let mut b = ProgramBuilder::new(0);
        b.mov_imm(Reg::int(0), 1);
        b.align_region();
        b.mov_imm(Reg::int(1), 2);
        b.halt();
        let p = b.build();
        let text = disassemble(&p);
        assert!(text.contains("; --- region 0x0 ---"));
        assert!(text.contains("; --- region 0x20 ---"));
    }

    #[test]
    fn render_uops_includes_slots() {
        let mut b = ProgramBuilder::new(0);
        b.rep_store(Reg::int(0), Reg::int(1), Reg::int(2));
        b.halt();
        let p = b.build();
        let text = render_uops(&p.insts()[0].uops);
        assert!(text.contains(".0:"));
        assert!(text.contains(".3:"));
        assert!(text.contains("(self-loop)"));
    }
}
