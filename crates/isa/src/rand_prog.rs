//! Seeded random program generation.
//!
//! Produces structurally varied but *always-terminating* programs: loops
//! are counted down-counters with fixed trip counts, calls are to leaf
//! functions, and memory traffic stays in a bounded window. The
//! out-of-order pipeline's equivalence tests run these against the
//! reference interpreter, which is the linchpin correctness argument for
//! SCC (mis-speculation must be architecturally invisible).
//!
//! A tiny SplitMix64 generator keeps this module dependency-free and
//! reproducible across platforms.

use crate::asm::ProgramBuilder;
use crate::program::Program;
use crate::reg::Reg;
use crate::uop::Cond;

/// SplitMix64: tiny, seedable, good-enough PRNG for test-program shapes.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `i64` in a small range for immediates.
    pub fn imm(&mut self) -> i64 {
        (self.below(2001) as i64) - 1000
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Tuning knobs for random program generation.
#[derive(Clone, Debug)]
pub struct RandProgConfig {
    /// Number of top-level blocks (each a loop or straight-line block).
    pub blocks: usize,
    /// Instructions per block.
    pub block_len: usize,
    /// Maximum loop trip count.
    pub max_trips: u64,
    /// Base address of the data window.
    pub data_base: u64,
    /// Size of the data window in 8-byte cells.
    pub data_cells: u64,
    /// Include floating-point instructions.
    pub with_fp: bool,
    /// Include microcoded string ops.
    pub with_string_ops: bool,
    /// Include call/return pairs.
    pub with_calls: bool,
}

impl Default for RandProgConfig {
    fn default() -> RandProgConfig {
        RandProgConfig {
            blocks: 6,
            block_len: 10,
            max_trips: 8,
            data_base: 0x10_0000,
            data_cells: 64,
            with_fp: true,
            with_string_ops: true,
            with_calls: true,
        }
    }
}

/// Generates a random, always-terminating program from `seed`.
///
/// Register conventions: `r14` is the loop counter, `r15` the call link
/// register, and `r13` the data-window base pointer; generated bodies use
/// `r0`–`r12` and `f0`–`f7` freely.
pub fn random_program(seed: u64, cfg: &RandProgConfig) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut b = ProgramBuilder::new(0x1000);
    let base = Reg::int(13);
    let counter = Reg::int(14);
    let link = Reg::int(15);

    // Seed the data window with deterministic values.
    for i in 0..cfg.data_cells {
        b.word(cfg.data_base + 8 * i, (rng.imm()).wrapping_mul(3).wrapping_add(i as i64));
    }
    b.mov_imm(base, cfg.data_base as i64);
    // Seed a few live registers.
    for n in 0..6u8 {
        b.mov_imm(Reg::int(n), rng.imm());
    }

    for _ in 0..cfg.blocks {
        let looped = rng.chance(1, 2);
        if looped {
            let trips = 1 + rng.below(cfg.max_trips) as i64;
            b.mov_imm(counter, trips);
            let top = b.here();
            emit_block(&mut b, &mut rng, cfg, base, link);
            b.sub_imm(counter, counter, 1);
            b.cmp_br_imm(Cond::Ne, counter, 0, top);
        } else {
            emit_block(&mut b, &mut rng, cfg, base, link);
        }
        if rng.chance(1, 3) {
            b.align_region();
        }
    }
    b.halt();
    b.build()
}

fn emit_block(
    b: &mut ProgramBuilder,
    rng: &mut SplitMix64,
    cfg: &RandProgConfig,
    base: Reg,
    link: Reg,
) {
    // Occasionally emit a leaf call around the block.
    let call_here = cfg.with_calls && rng.chance(1, 6);
    if call_here {
        let func = b.label();
        let after = b.label();
        b.call(func, link);
        b.jmp(after);
        b.bind(func);
        for _ in 0..3 {
            emit_simple(b, rng, cfg, base);
        }
        b.ret(link);
        b.bind(after);
        return;
    }
    for _ in 0..cfg.block_len {
        emit_simple(b, rng, cfg, base);
    }
    // Occasionally a short forward skip over a couple of instructions.
    if rng.chance(1, 3) {
        let skip = b.label();
        let ra = Reg::int(rng.below(13) as u8);
        b.cmp_br_imm(rand_cond(rng), ra, rng.imm(), skip);
        emit_simple(b, rng, cfg, base);
        emit_simple(b, rng, cfg, base);
        b.bind(skip);
    }
    if cfg.with_string_ops && rng.chance(1, 8) {
        let cnt = Reg::int(12);
        let ptr = Reg::int(11);
        let val = Reg::int(rng.below(8) as u8);
        b.mov_imm(cnt, 1 + rng.below(4) as i64);
        b.mov_imm(ptr, (cfg.data_base + 8 * rng.below(cfg.data_cells / 2)) as i64);
        b.rep_store(cnt, ptr, val);
    }
}

fn rand_cond(rng: &mut SplitMix64) -> Cond {
    Cond::all()[rng.below(8) as usize]
}

fn emit_simple(b: &mut ProgramBuilder, rng: &mut SplitMix64, cfg: &RandProgConfig, base: Reg) {
    let rd = Reg::int(rng.below(13) as u8);
    let ra = Reg::int(rng.below(13) as u8);
    let rb = Reg::int(rng.below(13) as u8);
    match rng.below(16) {
        0 => b.mov_imm(rd, rng.imm()),
        1 => b.mov(rd, ra),
        2 => b.add(rd, ra, rb),
        3 => b.add_imm(rd, ra, rng.imm()),
        4 => b.sub(rd, ra, rb),
        5 => b.xor(rd, ra, rb),
        6 => b.and_imm(rd, ra, rng.imm()),
        7 => b.or_imm(rd, ra, rng.imm()),
        8 => b.shl_imm(rd, ra, rng.below(8) as i64),
        9 => b.sar_imm(rd, ra, rng.below(8) as i64),
        10 => b.mul(rd, ra, rb),
        11 => b.div(rd, ra, rb),
        12 => {
            let off = 8 * rng.below(cfg.data_cells) as i64;
            b.load(rd, base, off);
        }
        13 => {
            let off = 8 * rng.below(cfg.data_cells) as i64;
            b.store(ra, base, off);
        }
        14 => {
            b.cmp_imm(ra, rng.imm());
            b.setcc(rand_cond(rng), rd);
        }
        _ => {
            if cfg.with_fp {
                let fd = Reg::fp(rng.below(8) as u8);
                let fa = Reg::fp(rng.below(8) as u8);
                let fb = Reg::fp(rng.below(8) as u8);
                match rng.below(4) {
                    0 => b.fadd(fd, fa, fb),
                    1 => b.fmul(fd, fa, fb),
                    2 => b.simd(fd, fa, fb),
                    _ => {
                        let off = 8 * rng.below(cfg.data_cells) as i64;
                        b.load(fd, base, off);
                    }
                }
            } else {
                b.add_imm(rd, ra, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;

    #[test]
    fn generated_programs_halt_and_are_deterministic() {
        let cfg = RandProgConfig::default();
        for seed in 0..20 {
            let p1 = random_program(seed, &cfg);
            let p2 = random_program(seed, &cfg);
            let mut m1 = Machine::new(&p1);
            let mut m2 = Machine::new(&p2);
            let r1 = m1.run(2_000_000).unwrap();
            let r2 = m2.run(2_000_000).unwrap();
            assert!(r1.halted, "seed {seed} did not halt");
            assert_eq!(r1, r2);
            assert_eq!(m1.snapshot(), m2.snapshot(), "seed {seed} nondeterministic");
        }
    }

    #[test]
    fn different_seeds_give_different_programs() {
        let cfg = RandProgConfig::default();
        let p1 = random_program(1, &cfg);
        let p2 = random_program(2, &cfg);
        assert_ne!(p1.static_uop_count(), 0);
        let s1: Vec<_> = p1.insts().iter().map(|m| m.uops[0].op).collect();
        let s2: Vec<_> = p2.insts().iter().map(|m| m.uops[0].op).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn no_fp_config_generates_no_fp() {
        let cfg = RandProgConfig { with_fp: false, ..RandProgConfig::default() };
        for seed in 0..5 {
            let p = random_program(seed, &cfg);
            assert!(p.insts().iter().all(|m| m.uops.iter().all(|u| !u.op.is_fp())));
        }
    }

    #[test]
    fn splitmix_below_is_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
        assert!((-1000..=1000).contains(&rng.imm()));
    }
}
