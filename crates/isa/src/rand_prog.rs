//! Seeded random program generation.
//!
//! Produces structurally varied but *always-terminating* programs: loops
//! are counted down-counters with fixed trip counts, calls are to leaf
//! functions (optionally one level of nesting), indirect jumps only ever
//! target addresses laid down earlier in the build, and memory traffic
//! stays in a bounded window. The out-of-order pipeline's equivalence
//! tests and the `scc-check` differential harness run these against the
//! reference interpreter, which is the linchpin correctness argument for
//! SCC (mis-speculation must be architecturally invisible).
//!
//! The generator is *weighted*: the riskiest engine paths — indirect
//! control flow, aliasing stores, fused CMP+Jcc, shift amounts at the
//! `& 63` mask boundary, division edge operands — are emitted at tuned
//! rates and can be toggled per feature so a failure minimizer can rule
//! whole feature classes in or out.
//!
//! A tiny SplitMix64 generator keeps this module dependency-free and
//! reproducible across platforms.

use crate::asm::ProgramBuilder;
use crate::program::Program;
use crate::reg::Reg;
use crate::uop::Cond;

/// SplitMix64: tiny, seedable, good-enough PRNG for test-program shapes.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `i64` in a small range for immediates.
    pub fn imm(&mut self) -> i64 {
        (self.below(2001) as i64) - 1000
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `xs`.
    pub fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

/// Tuning knobs for random program generation.
#[derive(Clone, Debug)]
pub struct RandProgConfig {
    /// Number of top-level blocks (each a loop or straight-line block).
    pub blocks: usize,
    /// Instructions per block.
    pub block_len: usize,
    /// Maximum loop trip count.
    pub max_trips: u64,
    /// Base address of the data window.
    pub data_base: u64,
    /// Size of the data window in 8-byte cells.
    pub data_cells: u64,
    /// Include floating-point instructions.
    pub with_fp: bool,
    /// Include microcoded string ops.
    pub with_string_ops: bool,
    /// Include call/return pairs.
    pub with_calls: bool,
    /// Include nested (depth-2) call/ret chains.
    pub with_call_chains: bool,
    /// Include indirect jumps (`jmp_ind`) through registers and in-memory
    /// jump tables, including data-dependent two-target dispatch.
    pub with_indirect: bool,
    /// Include aliasing store/load clusters that address the same cell
    /// through different base registers (store-to-load forwarding stress).
    pub with_aliasing: bool,
    /// Include macro-fused reg-reg CMP+Jcc and split cmp/br pairs.
    pub with_fused_cmp: bool,
    /// Include directed division/remainder edge operands
    /// (0, ±1, `i64::MIN`, `i64::MAX`).
    pub with_div_edges: bool,
    /// Include shift amounts at and beyond the `& 63` mask boundary
    /// (62/63/64/65, negatives) and register-amount shifts.
    pub with_boundary_shifts: bool,
}

impl Default for RandProgConfig {
    fn default() -> RandProgConfig {
        RandProgConfig {
            blocks: 6,
            block_len: 10,
            max_trips: 8,
            data_base: 0x10_0000,
            data_cells: 64,
            with_fp: true,
            with_string_ops: true,
            with_calls: true,
            with_call_chains: true,
            with_indirect: true,
            with_aliasing: true,
            with_fused_cmp: true,
            with_div_edges: true,
            with_boundary_shifts: true,
        }
    }
}

impl RandProgConfig {
    /// The narrow pre-harness surface: straight-line ALU/memory code,
    /// direct branches, and leaf calls only. The differential harness
    /// uses this to bisect failures down to a feature class.
    pub fn narrow() -> RandProgConfig {
        RandProgConfig {
            with_call_chains: false,
            with_indirect: false,
            with_aliasing: false,
            with_fused_cmp: false,
            with_div_edges: false,
            with_boundary_shifts: false,
            ..RandProgConfig::default()
        }
    }
}

/// Shift amounts stressing the `& 63` mask boundary in
/// [`crate::semantics::eval_alu`].
const BOUNDARY_SHIFTS: [i64; 12] = [0, 1, 7, 31, 32, 33, 62, 63, 64, 65, 127, -1];

/// Division/remainder edge operands (numerators).
const DIV_NUMS: [i64; 6] = [0, 1, -1, i64::MIN, i64::MAX, 7];

/// Division/remainder edge operands (denominators): zero, the overflow
/// pair for `i64::MIN / -1`, and small values.
const DIV_DENS: [i64; 5] = [0, 1, -1, 2, i64::MIN];

/// Generates a random, always-terminating program from `seed`.
///
/// Register conventions: `r14` is the loop counter, `r15` the call link
/// register (with `r12` as the inner link of nested call chains), and
/// `r13` the data-window base pointer; generated bodies use `r0`–`r12`
/// and `f0`–`f7` freely.
pub fn random_program(seed: u64, cfg: &RandProgConfig) -> Program {
    let mut g = Gen {
        b: ProgramBuilder::new(0x1000),
        rng: SplitMix64::new(seed),
        cfg,
        base: Reg::int(13),
        counter: Reg::int(14),
        link: Reg::int(15),
        table_next: 0,
    };

    // Seed the data window with deterministic values.
    for i in 0..cfg.data_cells {
        g.b.word(cfg.data_base + 8 * i, (g.rng.imm()).wrapping_mul(3).wrapping_add(i as i64));
    }
    g.b.mov_imm(g.base, cfg.data_base as i64);
    // Seed a few live registers.
    for n in 0..6u8 {
        let v = g.rng.imm();
        g.b.mov_imm(Reg::int(n), v);
    }

    for _ in 0..cfg.blocks {
        let looped = g.rng.chance(1, 2);
        if looped {
            let trips = 1 + g.rng.below(cfg.max_trips) as i64;
            g.b.mov_imm(g.counter, trips);
            let top = g.b.here();
            g.emit_block();
            let counter = g.counter;
            g.b.sub_imm(counter, counter, 1);
            g.b.cmp_br_imm(Cond::Ne, counter, 0, top);
        } else {
            g.emit_block();
        }
        if g.rng.chance(1, 3) {
            g.b.align_region();
        }
    }
    g.b.halt();
    g.b.build()
}

/// Generation state: the builder, the PRNG, and the jump-table cursor.
struct Gen<'c> {
    b: ProgramBuilder,
    rng: SplitMix64,
    cfg: &'c RandProgConfig,
    base: Reg,
    counter: Reg,
    link: Reg,
    /// Next free jump-table slot, placed *above* the random-store window
    /// so data traffic can never redirect an indirect jump off the
    /// instruction map.
    table_next: u64,
}

impl Gen<'_> {
    fn rand_cond(&mut self) -> Cond {
        Cond::all()[self.rng.below(8) as usize]
    }

    /// A body register `r0..r{max-1}`; `max = 13` is the full body set,
    /// `max = 12` keeps `r12` free for the inner call link.
    fn reg(&mut self, max: u64) -> Reg {
        Reg::int(self.rng.below(max) as u8)
    }

    /// A shift amount: mostly small, but with the boundary set mixed in
    /// when enabled (satellite: `below(8)` never exercised the `& 63`
    /// mask at 63/64/65).
    fn shift_amount(&mut self) -> i64 {
        if self.cfg.with_boundary_shifts && self.rng.chance(1, 2) {
            self.rng.pick(&BOUNDARY_SHIFTS)
        } else {
            self.rng.below(8) as i64
        }
    }

    fn emit_block(&mut self) {
        // Occasionally emit a call around the block: a leaf function, or
        // a depth-2 chain when enabled.
        if self.cfg.with_calls && self.rng.chance(1, 6) {
            self.emit_call();
            return;
        }
        for _ in 0..self.cfg.block_len {
            self.emit_simple(13);
        }
        // Occasionally a short forward skip over a couple of
        // instructions: fused reg-reg CMP+Jcc, a split cmp/br pair (CC
        // tracked across the gap), or the legacy reg-imm fused form.
        if self.rng.chance(1, 3) {
            let skip = self.b.label();
            let ra = self.reg(13);
            let cond = self.rand_cond();
            if self.cfg.with_fused_cmp && self.rng.chance(1, 2) {
                let rb = self.reg(13);
                if self.rng.chance(1, 2) {
                    self.b.cmp_br(cond, ra, rb, skip);
                } else {
                    self.b.cmp(ra, rb);
                    self.emit_simple_no_cc(13);
                    self.b.br(cond, skip);
                }
            } else {
                let imm = self.rng.imm();
                self.b.cmp_br_imm(cond, ra, imm, skip);
            }
            self.emit_simple(13);
            self.emit_simple(13);
            self.b.bind(skip);
        }
        if self.cfg.with_indirect && self.rng.chance(1, 4) {
            self.emit_indirect();
        }
        if self.cfg.with_aliasing && self.rng.chance(1, 3) {
            self.emit_aliasing();
        }
        if self.cfg.with_div_edges && self.rng.chance(1, 4) {
            self.emit_div_edge();
        }
        if self.cfg.with_string_ops && self.rng.chance(1, 8) {
            let cnt = Reg::int(12);
            let ptr = Reg::int(11);
            let val = self.reg(8);
            let n = 1 + self.rng.below(4) as i64;
            let p = (self.cfg.data_base + 8 * self.rng.below(self.cfg.data_cells / 2)) as i64;
            self.b.mov_imm(cnt, n);
            self.b.mov_imm(ptr, p);
            self.b.rep_store(cnt, ptr, val);
        }
    }

    /// A call around the block: `call f; ...; f: body; ret`. With
    /// chains enabled, `f` itself calls a second leaf through `r12` (the
    /// bodies of chained functions avoid writing `r12` so the inner
    /// return address survives).
    fn emit_call(&mut self) {
        let func = self.b.label();
        let after = self.b.label();
        let link = self.link;
        self.b.call(func, link);
        self.b.jmp(after);
        self.b.bind(func);
        if self.cfg.with_call_chains && self.rng.chance(1, 2) {
            let inner = self.b.label();
            let mid = self.b.label();
            let link2 = Reg::int(12);
            for _ in 0..2 {
                self.emit_simple(12);
            }
            self.b.call(inner, link2);
            self.b.jmp(mid);
            self.b.bind(inner);
            for _ in 0..2 {
                self.emit_simple(12);
            }
            self.b.ret(link2);
            self.b.bind(mid);
            self.emit_simple(12);
            self.b.ret(link);
        } else {
            for _ in 0..3 {
                self.emit_simple(13);
            }
            self.b.ret(link);
        }
        self.b.bind(after);
    }

    /// An indirect jump whose landing pads are laid down *before* the
    /// `jmp_ind`, so every architecturally reachable target is a real
    /// instruction address. Three shapes: a register target, a target
    /// loaded from an in-memory jump table, and a data-dependent
    /// two-target dispatch (indirect-BTB stress).
    fn emit_indirect(&mut self) {
        let over = self.b.label();
        let join = self.b.label();
        self.b.jmp(over);
        let pad0 = self.b.cursor();
        self.emit_simple(13);
        self.b.jmp(join);
        let two_way = self.rng.chance(1, 3);
        let pad1 = if two_way {
            let p = self.b.cursor();
            self.emit_simple(13);
            self.b.jmp(join);
            Some(p)
        } else {
            None
        };
        self.b.bind(over);
        let scratch = self.reg(13);
        match pad1 {
            Some(p1) => {
                let use0 = self.b.label();
                let rx = self.reg(13);
                let cond = self.rand_cond();
                let imm = self.rng.imm();
                self.b.mov_imm(scratch, pad0 as i64);
                self.b.cmp_br_imm(cond, rx, imm, use0);
                self.b.mov_imm(scratch, p1 as i64);
                self.b.bind(use0);
            }
            None if self.rng.chance(1, 2) => {
                // Jump table: the slot lives above the random-store
                // window, so no generated store can corrupt it.
                let slot = self.cfg.data_cells + self.table_next;
                self.table_next += 1;
                self.b.word(self.cfg.data_base + 8 * slot, pad0 as i64);
                let base = self.base;
                self.b.load(scratch, base, 8 * slot as i64);
            }
            None => {
                self.b.mov_imm(scratch, pad0 as i64);
            }
        }
        self.b.jmp_ind(scratch);
        self.b.bind(join);
    }

    /// Aliasing store/load cluster: the same cell addressed through the
    /// window base and through a computed pointer, so disambiguation and
    /// store-to-load forwarding must see through different base
    /// registers.
    fn emit_aliasing(&mut self) {
        let cell = self.rng.below(self.cfg.data_cells - 2);
        let ai = self.rng.below(13) as u8;
        let alias = Reg::int(ai);
        let mut rd = self.reg(13);
        if rd == alias {
            rd = Reg::int((ai + 1) % 13);
        }
        let ra = self.reg(13);
        let base = self.base;
        self.b.add_imm(alias, base, (8 * cell) as i64);
        self.b.store(ra, alias, 8);
        self.b.load(rd, base, (8 * (cell + 1)) as i64);
        if self.rng.chance(1, 2) && rd != alias {
            let imm = self.rng.imm();
            self.b.store_imm(imm, base, (8 * cell) as i64);
            self.b.load(rd, alias, 0);
        }
    }

    /// Directed division/remainder edges: divide-by-zero and the
    /// `i64::MIN / -1` overflow pair, which the backend defines (0 and
    /// wrapping respectively) and any folding path must match exactly.
    fn emit_div_edge(&mut self) {
        let rd = self.reg(13);
        let ai = self.rng.below(13) as u8;
        let ra = Reg::int(ai);
        let mut rb = self.reg(13);
        if rb == ra {
            rb = Reg::int((ai + 1) % 13);
        }
        let num = self.rng.pick(&DIV_NUMS);
        let den = self.rng.pick(&DIV_DENS);
        self.b.mov_imm(ra, num);
        self.b.mov_imm(rb, den);
        if self.rng.chance(1, 2) {
            self.b.div(rd, ra, rb);
        } else {
            self.b.rem(rd, ra, rb);
        }
    }

    /// One weighted simple instruction. `max_rd` bounds the destination
    /// register (12 keeps `r12` free inside call chains); sources read
    /// the full body set.
    fn emit_simple(&mut self, max_rd: u64) {
        let rd = self.reg(max_rd);
        let ra = self.reg(13);
        let rb = self.reg(13);
        match self.rng.below(20) {
            0 => {
                let v = self.rng.imm();
                self.b.mov_imm(rd, v);
            }
            1 => self.b.mov(rd, ra),
            2 => self.b.add(rd, ra, rb),
            3 => {
                let v = self.rng.imm();
                self.b.add_imm(rd, ra, v);
            }
            4 => self.b.sub(rd, ra, rb),
            5 => self.b.xor(rd, ra, rb),
            6 => {
                let v = self.rng.imm();
                self.b.and_imm(rd, ra, v);
            }
            7 => {
                let v = self.rng.imm();
                self.b.or_imm(rd, ra, v);
            }
            8 => {
                let s = self.shift_amount();
                self.b.shl_imm(rd, ra, s);
            }
            9 => {
                let s = self.shift_amount();
                self.b.sar_imm(rd, ra, s);
            }
            10 => {
                let s = self.shift_amount();
                self.b.shr_imm(rd, ra, s);
            }
            11 => {
                // Register-amount shifts: the amount register holds an
                // arbitrary runtime value, so masking is exercised on
                // both the execute and any folding path.
                if self.cfg.with_boundary_shifts {
                    match self.rng.below(3) {
                        0 => self.b.shl(rd, ra, rb),
                        1 => self.b.shr(rd, ra, rb),
                        _ => self.b.sar(rd, ra, rb),
                    }
                } else {
                    self.b.add_imm(rd, ra, 1);
                }
            }
            12 => self.b.mul(rd, ra, rb),
            13 => {
                if self.rng.chance(1, 2) {
                    self.b.div(rd, ra, rb);
                } else {
                    self.b.rem(rd, ra, rb);
                }
            }
            14 => {
                let off = 8 * self.rng.below(self.cfg.data_cells) as i64;
                let base = self.base;
                self.b.load(rd, base, off);
            }
            15 => {
                let off = 8 * self.rng.below(self.cfg.data_cells) as i64;
                let base = self.base;
                self.b.store(ra, base, off);
            }
            16 => {
                let off = 8 * self.rng.below(self.cfg.data_cells) as i64;
                let v = self.rng.imm();
                let base = self.base;
                self.b.store_imm(v, base, off);
            }
            17 => {
                let v = self.rng.imm();
                let cond = self.rand_cond();
                self.b.cmp_imm(ra, v);
                self.b.setcc(cond, rd);
            }
            18 => {
                if self.rng.chance(1, 2) {
                    self.b.not(rd, ra);
                } else {
                    self.b.neg(rd, ra);
                }
            }
            _ => {
                if self.cfg.with_fp {
                    let fd = Reg::fp(self.rng.below(8) as u8);
                    let fa = Reg::fp(self.rng.below(8) as u8);
                    let fb = Reg::fp(self.rng.below(8) as u8);
                    match self.rng.below(4) {
                        0 => self.b.fadd(fd, fa, fb),
                        1 => self.b.fmul(fd, fa, fb),
                        2 => self.b.simd(fd, fa, fb),
                        _ => {
                            let off = 8 * self.rng.below(self.cfg.data_cells) as i64;
                            let base = self.base;
                            self.b.load(fd, base, off);
                        }
                    }
                } else {
                    self.b.add_imm(rd, ra, 1);
                }
            }
        }
    }

    /// A simple instruction guaranteed not to clobber the condition
    /// codes, for the gap of a split cmp/br pair.
    fn emit_simple_no_cc(&mut self, max_rd: u64) {
        let rd = self.reg(max_rd);
        let ra = self.reg(13);
        match self.rng.below(4) {
            0 => {
                let v = self.rng.imm();
                self.b.mov_imm(rd, v);
            }
            1 => self.b.mov(rd, ra),
            2 => {
                let s = self.shift_amount();
                self.b.shl_imm(rd, ra, s);
            }
            _ => {
                let rb = self.reg(13);
                self.b.mul(rd, ra, rb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;
    use crate::uop::Op;

    #[test]
    fn generated_programs_halt_and_are_deterministic() {
        let cfg = RandProgConfig::default();
        for seed in 0..20 {
            let p1 = random_program(seed, &cfg);
            let p2 = random_program(seed, &cfg);
            let mut m1 = Machine::new(&p1);
            let mut m2 = Machine::new(&p2);
            let r1 = m1.run(2_000_000).unwrap();
            let r2 = m2.run(2_000_000).unwrap();
            assert!(r1.halted, "seed {seed} did not halt");
            assert_eq!(r1, r2);
            assert_eq!(m1.snapshot(), m2.snapshot(), "seed {seed} nondeterministic");
        }
    }

    #[test]
    fn different_seeds_give_different_programs() {
        let cfg = RandProgConfig::default();
        let p1 = random_program(1, &cfg);
        let p2 = random_program(2, &cfg);
        assert_ne!(p1.static_uop_count(), 0);
        let s1: Vec<_> = p1.insts().iter().map(|m| m.uops[0].op).collect();
        let s2: Vec<_> = p2.insts().iter().map(|m| m.uops[0].op).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn no_fp_config_generates_no_fp() {
        let cfg = RandProgConfig { with_fp: false, ..RandProgConfig::default() };
        for seed in 0..5 {
            let p = random_program(seed, &cfg);
            assert!(p.insts().iter().all(|m| m.uops.iter().all(|u| !u.op.is_fp())));
        }
    }

    #[test]
    fn splitmix_below_is_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
        assert!((-1000..=1000).contains(&rng.imm()));
    }

    #[test]
    fn narrow_config_excludes_widened_features() {
        let cfg = RandProgConfig::narrow();
        for seed in 0..10 {
            let p = random_program(seed, &cfg);
            for m in p.insts() {
                for u in &m.uops {
                    assert_ne!(u.op, Op::JmpInd, "seed {seed} emitted jmp_ind under narrow");
                    if matches!(u.op, Op::Shl | Op::Shr | Op::Sar) {
                        if let Some(s) = u.src2.imm() {
                            assert!((0..8).contains(&s), "seed {seed}: narrow shift {s}");
                        } else {
                            panic!("seed {seed}: register-amount shift under narrow");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn widened_features_appear_across_seeds() {
        // Not every seed hits every feature, but across a modest batch
        // all the hard paths must show up — otherwise the fuzzer is
        // quietly not testing them.
        let cfg = RandProgConfig::default();
        let (mut ind, mut boundary, mut reg_shift, mut fused_rr, mut div0) =
            (false, false, false, false, false);
        for seed in 0..40 {
            let p = random_program(seed, &cfg);
            for m in p.insts() {
                for u in &m.uops {
                    match u.op {
                        Op::JmpInd => ind = true,
                        Op::Shl | Op::Shr | Op::Sar => match u.src2.imm() {
                            Some(s) if !(0..8).contains(&s) => boundary = true,
                            None => reg_shift = true,
                            _ => {}
                        },
                        Op::CmpBr if u.src2.reg().is_some() => fused_rr = true,
                        Op::MovImm if u.src1.imm() == Some(i64::MIN) => div0 = true,
                        _ => {}
                    }
                }
            }
        }
        assert!(ind, "no indirect jumps generated");
        assert!(boundary, "no boundary shift amounts generated");
        assert!(reg_shift, "no register-amount shifts generated");
        assert!(fused_rr, "no reg-reg fused cmp+branch generated");
        assert!(div0, "no i64::MIN div edge generated");
    }

    #[test]
    fn indirect_targets_always_land_on_instructions() {
        // Every jmp_ind target that can be architecturally reached is an
        // address the builder laid an instruction at; run through the
        // interpreter to prove no indirect jump escapes the program.
        let cfg = RandProgConfig { blocks: 8, ..RandProgConfig::default() };
        for seed in 100..130 {
            let p = random_program(seed, &cfg);
            let mut m = Machine::new(&p);
            let r = m.run(2_000_000).unwrap();
            assert!(r.halted, "seed {seed} did not halt");
        }
    }
}
