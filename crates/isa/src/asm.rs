//! Program builder: a tiny assembler with labels and x86-like instruction
//! lengths.
//!
//! Every emitter creates one macro-instruction and advances the address
//! cursor by a realistic byte length, so that the 32-byte-region structure
//! of the resulting code resembles compiled x86: a region typically holds
//! 5–10 macro-instructions, matching the paper's "roughly 18 fused
//! micro-ops or a 32-byte native x86 code region".

use crate::macroop::{MacroInst, MacroKind};
use crate::program::{Program, ProgramError};
use crate::reg::Reg;
use crate::uop::{Addr, Cond, Op, Operand, Uop};

/// A forward-referenceable code label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Program`] instruction by instruction.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug)]
pub struct ProgramBuilder {
    insts: Vec<MacroInst>,
    cursor: Addr,
    entry: Addr,
    labels: Vec<Option<Addr>>,
    // (instruction index, uop index, label) needing target patch
    patches: Vec<(usize, usize, Label)>,
    data: Vec<(u64, i64)>,
}

impl ProgramBuilder {
    /// Starts building at `entry`.
    pub fn new(entry: Addr) -> ProgramBuilder {
        ProgramBuilder {
            insts: Vec::new(),
            cursor: entry,
            entry,
            labels: Vec::new(),
            patches: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Current cursor address.
    pub fn cursor(&self) -> Addr {
        self.cursor
    }

    /// Creates an unbound label for later [`bind`](Self::bind).
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current cursor address.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.cursor);
    }

    /// Creates a label bound to the current cursor address.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Moves the cursor forward to `addr` (leaving a gap, like padding).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is behind the cursor.
    pub fn seek(&mut self, addr: Addr) {
        assert!(addr >= self.cursor, "cannot seek backwards");
        self.cursor = addr;
    }

    /// Aligns the cursor up to the next 32-byte region boundary by emitting
    /// single-byte `nop` padding (no-op if already aligned), exactly like a
    /// compiler aligning a loop head — so sequential fall-through across the
    /// boundary still works.
    pub fn align_region(&mut self) {
        while !self.cursor.is_multiple_of(crate::REGION_BYTES) {
            self.nop();
        }
    }

    /// Adds an initial-memory word.
    pub fn word(&mut self, addr: u64, value: i64) {
        self.data.push((addr, value));
    }

    /// Adds consecutive 8-byte-strided initial-memory words starting at
    /// `base`.
    pub fn words(&mut self, base: u64, values: &[i64]) {
        for (i, &v) in values.iter().enumerate() {
            self.data.push((base + 8 * i as u64, v));
        }
    }

    fn emit(&mut self, len: u8, kind: MacroKind, uops: Vec<Uop>) -> usize {
        let m = MacroInst::new(self.cursor, len, kind, uops);
        self.cursor = m.next_addr();
        self.insts.push(m);
        self.insts.len() - 1
    }

    fn emit1(&mut self, len: u8, uop: Uop) -> usize {
        self.emit(len, MacroKind::Simple, vec![uop])
    }

    // --- moves ---

    /// `dst = imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: i64) {
        let mut u = Uop::new(Op::MovImm);
        u.dst = Some(dst);
        u.src1 = Operand::Imm(imm);
        self.emit1(5, u);
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        let mut u = Uop::new(Op::Mov);
        u.dst = Some(dst);
        u.src1 = Operand::Reg(src);
        self.emit1(3, u);
    }

    // --- integer ALU ---

    fn alu3(&mut self, op: Op, dst: Reg, a: Operand, b: Operand, len: u8) {
        let mut u = Uop::new(op);
        u.dst = Some(dst);
        u.src1 = a;
        u.src2 = b;
        self.emit1(len, u);
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Add, dst, a.into(), b.into(), 3);
    }

    /// `dst = a + imm`.
    pub fn add_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu3(Op::Add, dst, a.into(), imm.into(), 4);
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Sub, dst, a.into(), b.into(), 3);
    }

    /// `dst = a - imm`.
    pub fn sub_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu3(Op::Sub, dst, a.into(), imm.into(), 4);
    }

    /// `dst = a & b`.
    pub fn and(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::And, dst, a.into(), b.into(), 3);
    }

    /// `dst = a & imm`.
    pub fn and_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu3(Op::And, dst, a.into(), imm.into(), 4);
    }

    /// `dst = a | b`.
    pub fn or(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Or, dst, a.into(), b.into(), 3);
    }

    /// `dst = a | imm`.
    pub fn or_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu3(Op::Or, dst, a.into(), imm.into(), 4);
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Xor, dst, a.into(), b.into(), 3);
    }

    /// `dst = a ^ imm`.
    pub fn xor_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu3(Op::Xor, dst, a.into(), imm.into(), 4);
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Shl, dst, a.into(), b.into(), 3);
    }

    /// `dst = a << imm`.
    pub fn shl_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu3(Op::Shl, dst, a.into(), imm.into(), 4);
    }

    /// `dst = a >> b` (logical).
    pub fn shr(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Shr, dst, a.into(), b.into(), 3);
    }

    /// `dst = a >> imm` (logical).
    pub fn shr_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu3(Op::Shr, dst, a.into(), imm.into(), 4);
    }

    /// `dst = a >> b` (arithmetic).
    pub fn sar(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Sar, dst, a.into(), b.into(), 3);
    }

    /// `dst = a >> imm` (arithmetic).
    pub fn sar_imm(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu3(Op::Sar, dst, a.into(), imm.into(), 4);
    }

    /// `dst = !a`.
    pub fn not(&mut self, dst: Reg, a: Reg) {
        self.alu3(Op::Not, dst, a.into(), Operand::None, 3);
    }

    /// `dst = -a`.
    pub fn neg(&mut self, dst: Reg, a: Reg) {
        self.alu3(Op::Neg, dst, a.into(), Operand::None, 3);
    }

    /// `dst = a * b` (not SCC-foldable).
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Mul, dst, a.into(), b.into(), 4);
    }

    /// `dst = a / b` (not SCC-foldable; 0 on division by zero).
    pub fn div(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Div, dst, a.into(), b.into(), 4);
    }

    /// `dst = a % b` (not SCC-foldable; 0 on division by zero).
    pub fn rem(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu3(Op::Rem, dst, a.into(), b.into(), 4);
    }

    // --- flags ---

    /// Compare `a` with `b`, setting condition codes.
    pub fn cmp(&mut self, a: Reg, b: Reg) {
        let mut u = Uop::new(Op::Cmp);
        u.src1 = a.into();
        u.src2 = b.into();
        self.emit1(3, u);
    }

    /// Compare `a` with an immediate, setting condition codes.
    pub fn cmp_imm(&mut self, a: Reg, imm: i64) {
        let mut u = Uop::new(Op::Cmp);
        u.src1 = a.into();
        u.src2 = imm.into();
        self.emit1(4, u);
    }

    /// Test `a & b`, setting condition codes.
    pub fn test(&mut self, a: Reg, b: Reg) {
        let mut u = Uop::new(Op::Test);
        u.src1 = a.into();
        u.src2 = b.into();
        self.emit1(3, u);
    }

    /// `dst = cond ? 1 : 0` from current condition codes.
    pub fn setcc(&mut self, cond: Cond, dst: Reg) {
        let mut u = Uop::new(Op::SetCc);
        u.dst = Some(dst);
        u.cond = Some(cond);
        self.emit1(4, u);
    }

    // --- memory ---

    /// `dst = mem[base + offset]`. `dst` may be an integer or FP register.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) {
        let mut u = Uop::new(Op::Load);
        u.dst = Some(dst);
        u.src1 = base.into();
        u.offset = offset;
        self.emit1(4, u);
    }

    /// `mem[base + offset] = src`. `src` may be an integer or FP register.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) {
        let mut u = Uop::new(Op::Store);
        u.src1 = base.into();
        u.src2 = src.into();
        u.offset = offset;
        self.emit1(4, u);
    }

    /// `mem[base + offset] = imm`.
    pub fn store_imm(&mut self, imm: i64, base: Reg, offset: i64) {
        let mut u = Uop::new(Op::Store);
        u.src1 = base.into();
        u.src2 = imm.into();
        u.offset = offset;
        self.emit1(6, u);
    }

    // --- floating point / SIMD ---

    fn fp3(&mut self, op: Op, dst: Reg, a: Reg, b: Reg, len: u8) {
        assert!(dst.is_fp() && a.is_fp() && b.is_fp(), "FP ops require FP registers");
        let mut u = Uop::new(op);
        u.dst = Some(dst);
        u.src1 = a.into();
        u.src2 = b.into();
        self.emit1(len, u);
    }

    /// `dst = a + b` (FP).
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.fp3(Op::FpAdd, dst, a, b, 4);
    }

    /// `dst = a - b` (FP).
    pub fn fsub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.fp3(Op::FpSub, dst, a, b, 4);
    }

    /// `dst = a * b` (FP).
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.fp3(Op::FpMul, dst, a, b, 4);
    }

    /// `dst = a / b` (FP).
    pub fn fdiv(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.fp3(Op::FpDiv, dst, a, b, 4);
    }

    /// `dst = a` (FP move).
    pub fn fmov(&mut self, dst: Reg, a: Reg) {
        assert!(dst.is_fp() && a.is_fp(), "FP ops require FP registers");
        let mut u = Uop::new(Op::FpMov);
        u.dst = Some(dst);
        u.src1 = a.into();
        self.emit1(3, u);
    }

    /// Coarse SIMD stand-in operating on FP registers.
    pub fn simd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.fp3(Op::Simd, dst, a, b, 5);
    }

    // --- control flow ---

    fn emit_branch(&mut self, len: u8, kind: MacroKind, mut uop: Uop, label: Label) {
        uop.target = Some(0); // patched at build
        let idx = self.emit(len, kind, vec![uop]);
        let slot = self.insts[idx].uops.len() - 1;
        self.patches.push((idx, slot, label));
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.emit_branch(2, MacroKind::Simple, Uop::new(Op::Jmp), label);
    }

    /// Indirect jump to the address in `reg`.
    pub fn jmp_ind(&mut self, reg: Reg) {
        let mut u = Uop::new(Op::JmpInd);
        u.src1 = reg.into();
        self.emit1(3, u);
    }

    /// Conditional branch on condition codes to `label`.
    pub fn br(&mut self, cond: Cond, label: Label) {
        let mut u = Uop::new(Op::BrCc);
        u.cond = Some(cond);
        self.emit_branch(2, MacroKind::Simple, u, label);
    }

    /// Macro-fused compare-and-branch: `if a cond b goto label`.
    pub fn cmp_br(&mut self, cond: Cond, a: Reg, b: Reg, label: Label) {
        let mut u = Uop::new(Op::CmpBr);
        u.cond = Some(cond);
        u.src1 = a.into();
        u.src2 = b.into();
        self.emit_branch(5, MacroKind::Fused, u, label);
    }

    /// Macro-fused compare-immediate-and-branch: `if a cond imm goto label`.
    pub fn cmp_br_imm(&mut self, cond: Cond, a: Reg, imm: i64, label: Label) {
        let mut u = Uop::new(Op::CmpBr);
        u.cond = Some(cond);
        u.src1 = a.into();
        u.src2 = imm.into();
        self.emit_branch(6, MacroKind::Fused, u, label);
    }

    /// Call `label`, writing the return address to `link`.
    pub fn call(&mut self, label: Label, link: Reg) {
        let mut u = Uop::new(Op::Call);
        u.dst = Some(link);
        self.emit_branch(5, MacroKind::Simple, u, label);
    }

    /// Return through the address in `link`.
    pub fn ret(&mut self, link: Reg) {
        let mut u = Uop::new(Op::Ret);
        u.src1 = link.into();
        self.emit1(1, u);
    }

    // --- microcoded string op ---

    /// A microcoded string-store (x86 `rep stos` style): stores `val` to
    /// `count` consecutive 8-byte-strided cells starting at `base`,
    /// advancing `base` and decrementing `count` in place.
    ///
    /// Decodes to four micro-ops, the last a self-looping branch — the
    /// pattern that forces SCC to abort compaction (paper §III).
    pub fn rep_store(&mut self, count: Reg, base: Reg, val: Reg) {
        let addr = self.cursor;
        let mut st = Uop::new(Op::Store);
        st.src1 = base.into();
        st.src2 = val.into();
        let mut adv = Uop::new(Op::Add);
        adv.dst = Some(base);
        adv.src1 = base.into();
        adv.src2 = Operand::Imm(8);
        let mut dec = Uop::new(Op::Sub);
        dec.dst = Some(count);
        dec.src1 = count.into();
        dec.src2 = Operand::Imm(1);
        let mut br = Uop::new(Op::CmpBr);
        br.cond = Some(Cond::Ne);
        br.src1 = count.into();
        br.src2 = Operand::Imm(0);
        br.target = Some(addr);
        self.emit(3, MacroKind::StringOp, vec![st, adv, dec, br]);
    }

    // --- misc ---

    /// No-operation.
    pub fn nop(&mut self) {
        self.emit1(1, Uop::new(Op::Nop));
    }

    /// Stop the machine.
    pub fn halt(&mut self) {
        self.emit1(1, Uop::new(Op::Halt));
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound, or on structural
    /// errors ([`ProgramError`]) — builder misuse is a programming error in
    /// the workload generator, not a runtime condition.
    pub fn build(self) -> Program {
        self.try_build().expect("program assembly failed")
    }

    /// Finalizes the program, returning structural errors instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on overlapping instructions, dangling
    /// branch targets, or a bad entry point.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn try_build(mut self) -> Result<Program, ProgramError> {
        for (inst, slot, label) in std::mem::take(&mut self.patches) {
            let addr = self.labels[label.0].expect("label referenced but never bound");
            self.insts[inst].uops[slot].target = Some(addr);
        }
        Program::new(self.insts, self.entry, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_are_patched() {
        let mut b = ProgramBuilder::new(0);
        let done = b.label();
        b.mov_imm(Reg::int(0), 1);
        b.jmp(done);
        b.mov_imm(Reg::int(0), 2);
        b.bind(done);
        b.halt();
        let p = b.build();
        let jmp = &p.insts()[1];
        let target = jmp.uops[0].target.unwrap();
        assert_eq!(target, p.insts()[3].addr);
    }

    #[test]
    fn lengths_advance_cursor() {
        let mut b = ProgramBuilder::new(0x100);
        b.mov_imm(Reg::int(0), 5);
        assert_eq!(b.cursor(), 0x105);
        b.add(Reg::int(0), Reg::int(0), Reg::int(0));
        assert_eq!(b.cursor(), 0x108);
    }

    #[test]
    fn align_region_rounds_up() {
        let mut b = ProgramBuilder::new(0x100);
        b.nop();
        b.align_region();
        assert_eq!(b.cursor(), 0x120);
        b.align_region();
        assert_eq!(b.cursor(), 0x120);
    }

    #[test]
    fn rep_store_is_self_looping() {
        let mut b = ProgramBuilder::new(0);
        b.rep_store(Reg::int(0), Reg::int(1), Reg::int(2));
        b.halt();
        let p = b.build();
        assert!(p.insts()[0].is_self_looping());
        assert_eq!(p.insts()[0].uop_count(), 4);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new(0);
        let l = b.label();
        b.jmp(l);
        b.halt();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "FP ops require FP registers")]
    fn fp_op_rejects_int_regs() {
        let mut b = ProgramBuilder::new(0);
        b.fadd(Reg::int(0), Reg::fp(0), Reg::fp(1));
    }

    #[test]
    fn words_stride_by_eight() {
        let mut b = ProgramBuilder::new(0);
        b.words(0x1000, &[10, 20, 30]);
        b.halt();
        let p = b.build();
        assert_eq!(p.init_data(), &[(0x1000, 10), (0x1008, 20), (0x1010, 30)]);
    }
}
