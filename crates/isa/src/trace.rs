//! Shared observability vocabulary for the SCC reproduction.
//!
//! Every layer of the simulator — the compaction engine, the micro-op
//! cache partitions, the cycle-level pipeline, and the experiment runner —
//! reports what it did through the same narrow interface: a [`Sink`] that
//! receives structured [`Event`]s. Consumers (the Chrome trace exporter,
//! the SCC decision audit log, test collectors) implement `Sink` once and
//! can be attached anywhere in the stack.
//!
//! The contract for producers is that observability must be free when it
//! is off: every emission site guards on [`SinkHandle::is_enabled`] (a
//! single `Option` discriminant check) before constructing an event, so a
//! simulation run with no sink attached pays one predictable branch per
//! site and allocates nothing.
//!
//! Events use simulated cycles as their clock wherever possible so that
//! traces are byte-for-byte deterministic for a given seed and
//! configuration. The only wall-clock events are the runner's
//! [`Event::JobStarted`] / [`Event::JobFinished`] pair, which describe
//! host-side scheduling and are inherently nondeterministic.

use crate::Addr;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The transformation the SCC engine applied to one scanned micro-op.
///
/// This is the paper's taxonomy of speculative rewrites (Table 2 of
/// MICRO 2022), plus the two bookkeeping outcomes (`Propagate` for a
/// kept-but-rewritten micro-op and `Kept` for an untouched one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transformation {
    /// Kept as the source of a *data* invariant: the value predictor was
    /// confident enough that downstream uses were folded against the
    /// predicted value. Carries the saturating-counter confidence
    /// (0..=15) that justified the speculation.
    DataInvariantSource {
        /// Predictor confidence at decision time (0..=15).
        confidence: u8,
    },
    /// Kept as the source of a *control* invariant: the branch predictor
    /// asserted a stable direction/target, letting compaction continue
    /// past the branch. Carries the branch-stability confidence.
    ControlInvariantSource {
        /// Predictor confidence at decision time (0..=15).
        confidence: u8,
    },
    /// Eliminated by move elimination (register-to-register copy
    /// absorbed into the rename context).
    MoveElim,
    /// Eliminated by constant folding (all inputs known; result computed
    /// at compaction time).
    Fold,
    /// Branch eliminated outright because its direction and target were
    /// known constants.
    BranchFold,
    /// Branch kept, but with a known target the compaction walk pivoted
    /// through it into the successor region.
    ControlPivot,
    /// Kept, with at least one source operand rewritten to an immediate
    /// by constant propagation.
    Propagate,
    /// Kept untouched.
    Kept,
}

impl Transformation {
    /// All transformation labels in canonical (histogram) order.
    pub const LABELS: [&'static str; 8] = [
        "data-invariant-source",
        "control-invariant-source",
        "move-elim",
        "fold",
        "branch-fold",
        "control-pivot",
        "propagate",
        "kept",
    ];

    /// Stable lowercase label for serialization.
    pub fn label(self) -> &'static str {
        match self {
            Transformation::DataInvariantSource { .. } => Self::LABELS[0],
            Transformation::ControlInvariantSource { .. } => Self::LABELS[1],
            Transformation::MoveElim => Self::LABELS[2],
            Transformation::Fold => Self::LABELS[3],
            Transformation::BranchFold => Self::LABELS[4],
            Transformation::ControlPivot => Self::LABELS[5],
            Transformation::Propagate => Self::LABELS[6],
            Transformation::Kept => Self::LABELS[7],
        }
    }

    /// The predictor confidence that justified the decision, if the
    /// transformation was speculative.
    pub fn confidence(self) -> Option<u8> {
        match self {
            Transformation::DataInvariantSource { confidence }
            | Transformation::ControlInvariantSource { confidence } => Some(confidence),
            _ => None,
        }
    }
}

/// The audit record for one micro-op scanned by a compaction pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UopDecision {
    /// Macro-instruction address of the scanned micro-op.
    pub pc: Addr,
    /// Micro-op slot within the macro-instruction.
    pub slot: u8,
    /// Disassembled opcode mnemonic.
    pub op: String,
    /// The transformation the engine chose.
    pub action: Transformation,
}

/// One structured observability event.
///
/// Cycle-stamped variants are deterministic for a fixed seed and
/// configuration; the `Job*` variants use host wall-clock microseconds.
#[derive(Clone, Debug)]
pub enum Event {
    /// Aggregated fetch-source mix over `[start_cycle, end_cycle)`:
    /// how many micro-ops the front end delivered from the legacy
    /// decode path, the unoptimized partition, and the optimized
    /// (compacted-stream) partition.
    FetchInterval {
        /// First cycle of the interval (inclusive).
        start_cycle: u64,
        /// Last cycle of the interval (exclusive).
        end_cycle: u64,
        /// Micro-ops delivered by the legacy decode path.
        icache: u64,
        /// Micro-ops delivered from the unoptimized partition.
        unopt: u64,
        /// Micro-ops delivered from the optimized partition.
        opt: u64,
    },
    /// One compaction pass through the SCC unit.
    CompactionPass {
        /// Cycle the pass started.
        start_cycle: u64,
        /// Cycle the SCC unit becomes free again.
        end_cycle: u64,
        /// 32-byte home region of the pass.
        region: Addr,
        /// Entry address the walk started from.
        entry: Addr,
        /// `"committed"`, `"discarded"`, or `"aborted"`.
        outcome: &'static str,
        /// Micro-ops removed relative to the original stream.
        shrinkage: u32,
        /// Stream id if the pass committed a stream.
        stream_id: Option<u64>,
    },
    /// Per-micro-op decision taken during the most recent compaction
    /// pass (only emitted when audit recording is on).
    Decision {
        /// Home region of the compaction pass.
        region: Addr,
        /// Stream id if the pass committed; `None` for discarded or
        /// aborted passes.
        stream_id: Option<u64>,
        /// The decision record itself.
        decision: UopDecision,
    },
    /// The front end switched fetch onto a compacted stream.
    StreamActivated {
        /// Cycle of activation.
        cycle: u64,
        /// Stream id.
        stream_id: u64,
        /// Entry address of the stream.
        pc: Addr,
        /// Micro-ops in the compacted stream.
        len: usize,
    },
    /// A compacted stream was inserted into the optimized partition.
    StreamInserted {
        /// Insertion cycle.
        cycle: u64,
        /// Stream id.
        stream_id: u64,
        /// Home region of the stream.
        region: Addr,
        /// Micro-ops removed by compaction.
        shrinkage: u32,
        /// Number of recorded invariants guarding the stream.
        invariants: usize,
    },
    /// A compacted stream left the optimized partition.
    StreamEvicted {
        /// Eviction cycle.
        cycle: u64,
        /// Stream id.
        stream_id: u64,
        /// Home region of the stream.
        region: Addr,
        /// `"capacity"`, `"replaced"`, `"phase-out"`, or `"invalidated"`.
        reason: &'static str,
    },
    /// A decoded region was filled into the unoptimized partition.
    RegionFilled {
        /// Fill cycle.
        cycle: u64,
        /// 32-byte region base.
        region: Addr,
        /// Micro-ops in the region's line.
        uops: usize,
    },
    /// A region was evicted from the unoptimized partition.
    RegionEvicted {
        /// Eviction cycle.
        cycle: u64,
        /// 32-byte region base.
        region: Addr,
    },
    /// A pipeline squash: from the triggering cycle until
    /// `resume_cycle` the front end is stalled redirecting fetch.
    SquashWindow {
        /// Cycle the squash was triggered.
        cycle: u64,
        /// Cycle fetch resumes at `new_pc`.
        resume_cycle: u64,
        /// `"scc-data"`, `"scc-control"`, `"branch"`, or `"vp-forward"`.
        cause: &'static str,
        /// Address fetch restarts from.
        new_pc: Addr,
        /// In-flight micro-ops flushed.
        flushed: u64,
        /// Offending stream id for SCC-caused squashes.
        stream_id: Option<u64>,
    },
    /// A recorded SCC assumption was checked at commit and held.
    AssumptionValidated {
        /// Commit cycle.
        cycle: u64,
        /// Stream whose invariant was validated.
        stream_id: u64,
        /// Index of the invariant within the stream.
        invariant: usize,
        /// `"data"` or `"control"`.
        kind: &'static str,
    },
    /// A recorded SCC assumption failed, squashing the pipeline.
    AssumptionFailed {
        /// Cycle the failure was detected.
        cycle: u64,
        /// Stream whose invariant failed.
        stream_id: u64,
        /// Index of the invariant within the stream.
        invariant: usize,
        /// `"data"` or `"control"`.
        kind: &'static str,
        /// Macro-instruction address of the invariant source.
        pc: Addr,
    },
    /// A runner worker started executing a simulation job
    /// (wall-clock microseconds since the runner's process epoch).
    JobStarted {
        /// Worker slot index.
        worker: usize,
        /// Wall-clock microseconds since process epoch.
        ts_us: u64,
        /// Workload name.
        workload: String,
        /// Optimization-level label.
        level: &'static str,
    },
    /// A runner worker finished a simulation job, or a cached result
    /// was resolved (in which case `cached` is true and the span is
    /// zero-length).
    JobFinished {
        /// Worker slot index.
        worker: usize,
        /// Wall-clock microseconds since process epoch.
        ts_us: u64,
        /// Workload name.
        workload: String,
        /// Optimization-level label.
        level: &'static str,
        /// True when the result came from the cross-figure cache.
        cached: bool,
    },
    /// An operation of the runner's persistent store tier (wall-clock
    /// microseconds since the process epoch, like the `Job*` events).
    StoreOp {
        /// Wall-clock microseconds since process epoch.
        ts_us: u64,
        /// `"recover"`, `"hit"`, `"miss"`, `"write"`, `"warm"`, or
        /// `"flush"`.
        op: &'static str,
        /// Human-readable identity: the content key for per-result
        /// operations, the store directory for lifecycle ones.
        detail: String,
        /// Records involved: 1 for per-result operations, the batch
        /// size for `recover`/`warm`.
        count: u64,
    },
}

/// A consumer of observability [`Event`]s.
///
/// Implementors should be cheap per call; producers only invoke the sink
/// when one is attached, so the disabled path never reaches this trait.
pub trait Sink {
    /// Receive one event.
    fn record(&mut self, event: &Event);
}

/// A shared, dynamically-dispatched sink handle.
///
/// The pipeline is single-threaded, so `Rc<RefCell<..>>` suffices; each
/// runner worker builds its own pipeline (and sink) on its own thread.
pub type SharedSink = Rc<RefCell<dyn Sink>>;

/// Wraps a concrete sink into a [`SharedSink`]-compatible handle while
/// keeping a typed `Rc` so the caller can read results back out later.
pub fn shared<S: Sink + 'static>(sink: S) -> Rc<RefCell<S>> {
    Rc::new(RefCell::new(sink))
}

/// A cloneable handle that is either attached to a [`SharedSink`] or
/// disabled.
///
/// This is the type threaded through simulator structs: it derives
/// `Clone`, prints opaquely under `Debug` (so stats-bearing structs keep
/// their derives), defaults to disabled, and makes the hot-path guard a
/// single `Option` discriminant check.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<SharedSink>);

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkHandle(enabled)"
        } else {
            "SinkHandle(disabled)"
        })
    }
}

impl SinkHandle {
    /// A disabled handle; every [`SinkHandle::emit`] is a no-op.
    pub fn disabled() -> SinkHandle {
        SinkHandle(None)
    }

    /// A handle attached to `sink`.
    pub fn attached(sink: SharedSink) -> SinkHandle {
        SinkHandle(Some(sink))
    }

    /// True when a sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emit an event. The closure runs — and the event is constructed —
    /// only when a sink is attached.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(sink) = &self.0 {
            let event = make();
            sink.borrow_mut().record(&event);
        }
    }
}

/// Fans every event out to several sinks (e.g. a Chrome trace exporter
/// plus an audit log on the same run).
#[derive(Default)]
pub struct Tee {
    sinks: Vec<SharedSink>,
}

impl Tee {
    /// An empty tee.
    pub fn new() -> Tee {
        Tee::default()
    }

    /// Add a downstream sink.
    pub fn push(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }

    /// Number of downstream sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Sink for Tee {
    fn record(&mut self, event: &Event) {
        for sink in &self.sinks {
            sink.borrow_mut().record(event);
        }
    }
}

/// A test sink that keeps every event it receives.
#[derive(Default)]
pub struct CollectSink {
    /// Events in arrival order.
    pub events: Vec<Event>,
}

impl Sink for CollectSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_builds_events() {
        let handle = SinkHandle::disabled();
        assert!(!handle.is_enabled());
        let mut built = false;
        handle.emit(|| {
            built = true;
            Event::RegionEvicted { cycle: 0, region: 0 }
        });
        assert!(!built);
    }

    #[test]
    fn attached_handle_delivers_events() {
        let collect = shared(CollectSink::default());
        let handle = SinkHandle::attached(collect.clone());
        assert!(handle.is_enabled());
        handle.emit(|| Event::RegionFilled { cycle: 7, region: 0x1000, uops: 5 });
        let events = &collect.borrow().events;
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::RegionFilled { cycle, region, uops } => {
                assert_eq!((*cycle, *region, *uops), (7, 0x1000, 5));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn tee_fans_out_to_every_sink() {
        let a = shared(CollectSink::default());
        let b = shared(CollectSink::default());
        let mut tee = Tee::new();
        tee.push(a.clone());
        tee.push(b.clone());
        assert_eq!(tee.len(), 2);
        tee.record(&Event::RegionEvicted { cycle: 1, region: 32 });
        assert_eq!(a.borrow().events.len(), 1);
        assert_eq!(b.borrow().events.len(), 1);
    }

    #[test]
    fn transformation_labels_and_confidence() {
        assert_eq!(Transformation::Fold.label(), "fold");
        assert_eq!(Transformation::Fold.confidence(), None);
        let src = Transformation::DataInvariantSource { confidence: 12 };
        assert_eq!(src.label(), "data-invariant-source");
        assert_eq!(src.confidence(), Some(12));
        // Every variant maps onto a distinct canonical label.
        let all = [
            Transformation::DataInvariantSource { confidence: 0 },
            Transformation::ControlInvariantSource { confidence: 0 },
            Transformation::MoveElim,
            Transformation::Fold,
            Transformation::BranchFold,
            Transformation::ControlPivot,
            Transformation::Propagate,
            Transformation::Kept,
        ];
        for (i, t) in all.iter().enumerate() {
            assert_eq!(t.label(), Transformation::LABELS[i]);
        }
    }
}
