//! Architectural registers and condition codes.

use std::fmt;

/// Number of integer architectural registers (`r0`–`r15`).
pub const NUM_INT_REGS: usize = 16;

/// Total number of architectural registers: 16 integer + 16 floating-point.
///
/// Floating-point registers hold `f64` values bit-cast into the common
/// `i64` value representation; SCC never tracks or folds them (the paper's
/// front-end ALU handles "only simple integer arithmetic, logic, and shift
/// operations").
pub const NUM_REGS: usize = 32;

/// An architectural register identifier.
///
/// Indices `0..16` are integer registers, `16..32` are floating-point
/// registers. The distinction matters to SCC: only integer registers are
/// eligible for the register context table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Creates the `n`-th integer register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub fn int(n: u8) -> Reg {
        assert!((n as usize) < NUM_INT_REGS, "integer register out of range: {n}");
        Reg(n)
    }

    /// Creates the `n`-th floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub fn fp(n: u8) -> Reg {
        assert!((n as usize) < NUM_REGS - NUM_INT_REGS, "fp register out of range: {n}");
        Reg(n + NUM_INT_REGS as u8)
    }

    /// Raw index into a 32-entry register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for integer registers (`r0`–`r15`), the only ones SCC tracks.
    pub fn is_int(self) -> bool {
        (self.0 as usize) < NUM_INT_REGS
    }

    /// True for floating-point registers (`f0`–`f15`).
    pub fn is_fp(self) -> bool {
        !self.is_int()
    }

    /// Iterator over all integer registers.
    pub fn all_int() -> impl Iterator<Item = Reg> {
        (0..NUM_INT_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "f{}", self.0 - NUM_INT_REGS as u8)
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// x86-style condition codes produced by `cmp`/`test` and CC-writing ALU
/// micro-ops, consumed by `brcc`/`setcc`.
///
/// SCC tracks these in its register context table (the paper's
/// `usingCCTracking` knob): folding a CC-writing micro-op records the
/// resulting flags so that a dependent conditional branch can itself be
/// folded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CcFlags {
    /// Zero flag: result was zero.
    pub zf: bool,
    /// Sign flag: result was negative.
    pub sf: bool,
    /// Overflow flag: signed overflow occurred.
    pub of: bool,
    /// Carry flag: unsigned borrow/carry occurred.
    pub cf: bool,
}

impl CcFlags {
    /// Flags resulting from comparing `a` with `b` (i.e. computing `a - b`).
    pub fn from_cmp(a: i64, b: i64) -> CcFlags {
        let (res, of) = a.overflowing_sub(b);
        CcFlags {
            zf: res == 0,
            sf: res < 0,
            of,
            cf: (a as u64) < (b as u64),
        }
    }

    /// Flags resulting from testing `a & b` (x86 `test`).
    pub fn from_test(a: i64, b: i64) -> CcFlags {
        let res = a & b;
        CcFlags { zf: res == 0, sf: res < 0, of: false, cf: false }
    }

    /// Flags resulting from a plain ALU result (logic ops and moves clear
    /// overflow/carry).
    pub fn from_result(res: i64) -> CcFlags {
        CcFlags { zf: res == 0, sf: res < 0, of: false, cf: false }
    }
}

impl fmt::Display for CcFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}]",
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.of { 'O' } else { '-' },
            if self.cf { 'C' } else { '-' }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_registers_are_distinct() {
        let r3 = Reg::int(3);
        let f3 = Reg::fp(3);
        assert_ne!(r3, f3);
        assert!(r3.is_int());
        assert!(f3.is_fp());
        assert_eq!(r3.index(), 3);
        assert_eq!(f3.index(), 19);
    }

    #[test]
    #[should_panic(expected = "integer register out of range")]
    fn int_register_out_of_range_panics() {
        let _ = Reg::int(16);
    }

    #[test]
    #[should_panic(expected = "fp register out of range")]
    fn fp_register_out_of_range_panics() {
        let _ = Reg::fp(16);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::int(0).to_string(), "r0");
        assert_eq!(Reg::fp(15).to_string(), "f15");
    }

    #[test]
    fn cmp_flags_equal() {
        let cc = CcFlags::from_cmp(5, 5);
        assert!(cc.zf);
        assert!(!cc.sf);
        assert!(!cc.cf);
    }

    #[test]
    fn cmp_flags_unsigned_borrow() {
        let cc = CcFlags::from_cmp(1, 2);
        assert!(cc.cf, "1 < 2 unsigned should set carry");
        assert!(cc.sf);
        let cc = CcFlags::from_cmp(-1, 1);
        assert!(!cc.cf, "-1 as u64 is huge, no borrow");
        assert!(cc.sf);
    }

    #[test]
    fn cmp_flags_signed_overflow() {
        let cc = CcFlags::from_cmp(i64::MIN, 1);
        assert!(cc.of);
    }

    #[test]
    fn test_flags() {
        let cc = CcFlags::from_test(0b1010, 0b0101);
        assert!(cc.zf);
        let cc = CcFlags::from_test(-1, -1);
        assert!(cc.sf);
        assert!(!cc.zf);
    }

    #[test]
    fn all_int_covers_sixteen() {
        assert_eq!(Reg::all_int().count(), 16);
        assert!(Reg::all_int().all(|r| r.is_int()));
    }
}
