//! Executable programs: an address-indexed collection of macro-instructions
//! plus an initial memory image.

use crate::macroop::MacroInst;
use crate::uop::Addr;
use std::collections::HashMap;
use std::fmt;

/// Errors detected while assembling a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Two macro-instructions overlap in the address space.
    Overlap {
        /// Address of the first instruction.
        first: Addr,
        /// Address of the overlapping instruction.
        second: Addr,
    },
    /// A direct branch targets an address where no instruction starts.
    DanglingTarget {
        /// Address of the branching instruction.
        from: Addr,
        /// The missing target.
        target: Addr,
    },
    /// The entry point is not the address of an instruction.
    BadEntry(Addr),
    /// The program contains no instructions.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Overlap { first, second } => {
                write!(f, "instruction at {second:#x} overlaps instruction at {first:#x}")
            }
            ProgramError::DanglingTarget { from, target } => {
                write!(f, "branch at {from:#x} targets {target:#x} where no instruction starts")
            }
            ProgramError::BadEntry(a) => write!(f, "entry point {a:#x} is not an instruction"),
            ProgramError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// An executable program.
///
/// Instructions are looked up by byte address (the fetch engine, the
/// micro-op cache, and SCC all address code this way). The initial memory
/// image seeds the simulated data memory; cells not listed read as zero.
#[derive(Clone, Debug)]
pub struct Program {
    insts: Vec<MacroInst>,
    index: HashMap<Addr, usize>,
    entry: Addr,
    init_data: Vec<(u64, i64)>,
}

impl Program {
    /// Assembles a program from macro-instructions, an entry point, and an
    /// initial data image.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if instructions overlap, a direct branch
    /// target does not start an instruction, or the entry is invalid.
    pub fn new(
        mut insts: Vec<MacroInst>,
        entry: Addr,
        init_data: Vec<(u64, i64)>,
    ) -> Result<Program, ProgramError> {
        if insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        insts.sort_by_key(|m| m.addr);
        let mut index = HashMap::with_capacity(insts.len());
        for (i, m) in insts.iter().enumerate() {
            if i > 0 {
                let prev = &insts[i - 1];
                if m.addr < prev.next_addr() {
                    return Err(ProgramError::Overlap { first: prev.addr, second: m.addr });
                }
            }
            index.insert(m.addr, i);
        }
        for m in &insts {
            for u in &m.uops {
                if let Some(t) = u.target {
                    if !index.contains_key(&t) {
                        return Err(ProgramError::DanglingTarget { from: m.addr, target: t });
                    }
                }
            }
        }
        if !index.contains_key(&entry) {
            return Err(ProgramError::BadEntry(entry));
        }
        Ok(Program { insts, index, entry, init_data })
    }

    /// The entry-point address.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Looks up the macro-instruction starting at `addr`.
    pub fn inst_at(&self, addr: Addr) -> Option<&MacroInst> {
        self.index.get(&addr).map(|&i| &self.insts[i])
    }

    /// All macro-instructions, sorted by address.
    pub fn insts(&self) -> &[MacroInst] {
        &self.insts
    }

    /// The macro-instruction following `addr` in address order, if any.
    pub fn inst_after(&self, addr: Addr) -> Option<&MacroInst> {
        let i = *self.index.get(&addr)?;
        self.insts.get(i + 1)
    }

    /// The initial memory image as `(address, value)` pairs.
    pub fn init_data(&self) -> &[(u64, i64)] {
        &self.init_data
    }

    /// Total number of micro-ops across all macro-instructions (static
    /// count).
    pub fn static_uop_count(&self) -> usize {
        self.insts.iter().map(|m| m.uops.len()).sum()
    }

    /// Number of distinct 32-byte code regions the program touches.
    pub fn region_count(&self) -> usize {
        let mut regions: Vec<u64> = self.insts.iter().map(|m| crate::region(m.addr)).collect();
        regions.sort_unstable();
        regions.dedup();
        regions.len()
    }

    /// Iterates over the macro-instructions whose first byte lies in the
    /// 32-byte region starting at `region_base`, in address order.
    pub fn insts_in_region(&self, region_base: Addr) -> impl Iterator<Item = &MacroInst> {
        debug_assert_eq!(region_base % crate::REGION_BYTES, 0);
        self.insts
            .iter()
            .skip_while(move |m| m.addr < region_base)
            .take_while(move |m| m.addr < region_base + crate::REGION_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macroop::MacroKind;
    use crate::uop::{Op, Uop};

    fn nop_at(addr: Addr, len: u8) -> MacroInst {
        MacroInst::new(addr, len, MacroKind::Simple, vec![Uop::new(Op::Nop)])
    }

    #[test]
    fn lookup_by_address() {
        let p = Program::new(vec![nop_at(0x10, 4), nop_at(0x14, 2)], 0x10, vec![]).unwrap();
        assert!(p.inst_at(0x10).is_some());
        assert!(p.inst_at(0x14).is_some());
        assert!(p.inst_at(0x12).is_none());
        assert_eq!(p.inst_after(0x10).unwrap().addr, 0x14);
        assert!(p.inst_after(0x14).is_none());
        assert_eq!(p.entry(), 0x10);
        assert_eq!(p.static_uop_count(), 2);
    }

    #[test]
    fn rejects_overlap() {
        let err = Program::new(vec![nop_at(0x10, 4), nop_at(0x12, 2)], 0x10, vec![]).unwrap_err();
        assert_eq!(err, ProgramError::Overlap { first: 0x10, second: 0x12 });
    }

    #[test]
    fn rejects_dangling_target() {
        let mut j = Uop::new(Op::Jmp);
        j.target = Some(0x999);
        let jmp = MacroInst::new(0x10, 2, MacroKind::Simple, vec![j]);
        let err = Program::new(vec![jmp], 0x10, vec![]).unwrap_err();
        assert_eq!(err, ProgramError::DanglingTarget { from: 0x10, target: 0x999 });
    }

    #[test]
    fn rejects_bad_entry_and_empty() {
        assert_eq!(Program::new(vec![], 0, vec![]).unwrap_err(), ProgramError::Empty);
        let err = Program::new(vec![nop_at(0x10, 2)], 0x0, vec![]).unwrap_err();
        assert_eq!(err, ProgramError::BadEntry(0));
    }

    #[test]
    fn region_queries() {
        let p = Program::new(
            vec![nop_at(0x00, 8), nop_at(0x08, 8), nop_at(0x20, 4)],
            0x00,
            vec![],
        )
        .unwrap();
        assert_eq!(p.region_count(), 2);
        let in_first: Vec<_> = p.insts_in_region(0).map(|m| m.addr).collect();
        assert_eq!(in_first, vec![0x00, 0x08]);
        let in_second: Vec<_> = p.insts_in_region(0x20).map(|m| m.addr).collect();
        assert_eq!(in_second, vec![0x20]);
    }

    #[test]
    fn error_display() {
        let e = ProgramError::Overlap { first: 1, second: 2 };
        assert!(e.to_string().contains("overlaps"));
        assert!(ProgramError::Empty.to_string().contains("no instructions"));
    }
}
