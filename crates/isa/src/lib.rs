//! Micro-op ISA, programs, decoder, and reference interpreter for the
//! Speculative Code Compaction (SCC) reproduction.
//!
//! The paper (Moody et al., MICRO 2022) operates on decoded x86 micro-ops
//! resident in a micro-op cache. This crate provides the equivalent
//! substrate: a RISC-like micro-op ISA in which *macro-instructions* carry
//! byte addresses and lengths (so that the paper's 32-byte code regions,
//! macro-fusion, and self-looping string instructions are meaningful), a
//! program builder ("assembler"), and a deterministic in-order reference
//! interpreter that serves as the correctness oracle for the out-of-order
//! pipeline and for SCC itself.
//!
//! # Example
//!
//! ```
//! use scc_isa::{ProgramBuilder, Reg, Cond, Machine};
//!
//! let mut b = ProgramBuilder::new(0x1000);
//! let (r0, r1) = (Reg::int(0), Reg::int(1));
//! b.mov_imm(r0, 0); // sum
//! b.mov_imm(r1, 10); // counter
//! let top = b.here();
//! b.add(r0, r0, r1);
//! b.sub_imm(r1, r1, 1);
//! b.cmp_br_imm(Cond::Ne, r1, 0, top);
//! b.halt();
//! let program = b.build();
//!
//! let mut m = Machine::new(&program);
//! let result = m.run(10_000).unwrap();
//! assert_eq!(m.reg(r0), 55);
//! assert!(result.halted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
pub mod disasm;
pub mod fusion;
pub mod fxhash;
mod interp;
mod macroop;
mod program;
pub mod rand_prog;
mod reg;
mod semantics;
pub mod trace;
mod uop;

pub use asm::{Label, ProgramBuilder};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use interp::{ArchSnapshot, Machine, Memory, RunError, RunResult, StepInfo};
pub use macroop::{MacroInst, MacroKind};
pub use program::{Program, ProgramError};
pub use reg::{CcFlags, Reg, NUM_INT_REGS, NUM_REGS};
pub use semantics::{
    branch_of, eval_alu, eval_complex, eval_cond, eval_fp, is_branch, is_foldable_int, AluResult,
    BranchOutcome,
};
pub use trace::{Event, Sink, SinkHandle, Transformation, UopDecision};
pub use uop::{Addr, Cond, Op, Operand, Uop};

/// Size in bytes of the native code regions SCC optimizes over.
///
/// The paper optimizes "roughly 18 fused micro-ops or a 32-byte native x86
/// code region" at a time; micro-op cache lines are indexed by these
/// regions.
pub const REGION_BYTES: u64 = 32;

/// Returns the 32-byte region base address that `addr` falls into.
///
/// ```
/// assert_eq!(scc_isa::region(0x1037), 0x1020);
/// ```
pub fn region(addr: Addr) -> Addr {
    addr & !(REGION_BYTES - 1)
}

/// Returns true if two addresses fall in the same 32-byte code region.
pub fn same_region(a: Addr, b: Addr) -> bool {
    region(a) == region(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_masks_low_bits() {
        assert_eq!(region(0), 0);
        assert_eq!(region(31), 0);
        assert_eq!(region(32), 32);
        assert_eq!(region(0xFFFF_FFFF), 0xFFFF_FFE0);
    }

    #[test]
    fn same_region_boundaries() {
        assert!(same_region(0x1000, 0x101F));
        assert!(!same_region(0x101F, 0x1020));
    }
}
