//! Macro-instructions: the "x86 instruction" level of the model.
//!
//! Programs are sequences of macro-instructions with byte addresses and
//! lengths. Each macro-instruction decodes into one or more micro-ops; the
//! micro-op cache, SCC, and the fetch engine all reason about the macro
//! level through the byte addresses carried on the micro-ops.

use crate::uop::{Addr, Uop};
use std::fmt;

/// Classification of a macro-instruction, used by the decoder, the fetch
/// engine, and SCC's abort conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MacroKind {
    /// An ordinary instruction.
    #[default]
    Simple,
    /// A macro-fused pair (e.g. `cmp` + `jcc` fused to one micro-op),
    /// occupying the byte footprint of both original instructions.
    Fused,
    /// A microcoded string-style instruction whose expansion contains a
    /// branch micro-op targeting the instruction's own address (x86
    /// `rep movs` style). SCC aborts compaction on these (paper §III).
    StringOp,
}

/// A macro-instruction: address, byte length, and micro-op expansion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacroInst {
    /// Byte address of the instruction.
    pub addr: Addr,
    /// Byte length (1–15, like x86).
    pub len: u8,
    /// Micro-op expansion, in program order.
    pub uops: Vec<Uop>,
    /// Classification.
    pub kind: MacroKind,
}

impl MacroInst {
    /// Creates a macro-instruction, stamping `macro_addr`, `macro_len`, and
    /// `slot` onto every micro-op of the expansion.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty, if `len` is zero or exceeds 15 (the x86
    /// maximum), or if the expansion exceeds 255 micro-ops.
    pub fn new(addr: Addr, len: u8, kind: MacroKind, mut uops: Vec<Uop>) -> MacroInst {
        assert!(!uops.is_empty(), "macro-instruction must decode to at least one micro-op");
        assert!((1..=15).contains(&len), "macro-instruction length {len} out of x86 range");
        assert!(uops.len() <= u8::MAX as usize, "micro-op expansion too long");
        for (i, u) in uops.iter_mut().enumerate() {
            u.macro_addr = addr;
            u.macro_len = len;
            u.slot = i as u8;
            if kind == MacroKind::StringOp && u.op.is_branch() && u.target == Some(addr) {
                u.self_loop = true;
            }
        }
        MacroInst { addr, len, uops, kind }
    }

    /// Address of the next sequential macro-instruction.
    pub fn next_addr(&self) -> Addr {
        self.addr + self.len as Addr
    }

    /// Number of micro-ops in the expansion.
    pub fn uop_count(&self) -> usize {
        self.uops.len()
    }

    /// True if any micro-op in the expansion is a self-looping branch.
    pub fn is_self_looping(&self) -> bool {
        self.uops.iter().any(|u| u.self_loop)
    }
}

impl fmt::Display for MacroInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}+{} ({:?}, {} uops)", self.addr, self.len, self.kind, self.uops.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::{Op, Uop};

    #[test]
    fn new_stamps_uops() {
        let m = MacroInst::new(0x40, 5, MacroKind::Simple, vec![Uop::new(Op::Nop), Uop::new(Op::Nop)]);
        assert_eq!(m.uops[0].macro_addr, 0x40);
        assert_eq!(m.uops[1].macro_len, 5);
        assert_eq!(m.uops[0].slot, 0);
        assert_eq!(m.uops[1].slot, 1);
        assert_eq!(m.next_addr(), 0x45);
        assert_eq!(m.uop_count(), 2);
    }

    #[test]
    fn string_op_marks_self_loop() {
        let mut br = Uop::new(Op::CmpBr);
        br.target = Some(0x80);
        br.cond = Some(crate::Cond::Ne);
        let m = MacroInst::new(0x80, 3, MacroKind::StringOp, vec![Uop::new(Op::Store), br]);
        assert!(m.is_self_looping());
        assert!(m.uops[1].self_loop);
        assert!(!m.uops[0].self_loop);
    }

    #[test]
    fn non_string_branch_not_marked() {
        let mut br = Uop::new(Op::Jmp);
        br.target = Some(0x80);
        let m = MacroInst::new(0x80, 2, MacroKind::Simple, vec![br]);
        assert!(!m.is_self_looping());
    }

    #[test]
    #[should_panic(expected = "at least one micro-op")]
    fn empty_expansion_panics() {
        let _ = MacroInst::new(0, 1, MacroKind::Simple, vec![]);
    }

    #[test]
    #[should_panic(expected = "out of x86 range")]
    fn oversized_length_panics() {
        let _ = MacroInst::new(0, 16, MacroKind::Simple, vec![Uop::new(Op::Nop)]);
    }
}
