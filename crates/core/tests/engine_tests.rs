//! Behavioural tests for the compaction engine: one per paper mechanism.

use scc_core::{
    AbortReason, CompactionEngine, CompactionOutcome, CompactionRequest, NoBranchProbe,
    NoValueProbe, OptFlags, RequestQueue, SccConfig, UopSource,
};
use scc_isa::{Addr, Cond, Op, Program, ProgramBuilder, Reg, Uop};
use scc_predictors::{BranchPredictorKind, BranchPredictorUnit, LastValue, ValuePredictor};
use scc_uopcache::{CompactedStream, Invariant};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

fn commit(outcome: CompactionOutcome) -> CompactedStream {
    match outcome {
        CompactionOutcome::Committed(s) => s,
        o => panic!("expected committed stream, got {o:?}"),
    }
}

/// A micro-op source that only exposes chosen regions (cache-resident
/// view).
struct PartialSource<'p> {
    program: &'p Program,
    resident: Vec<Addr>,
}

impl UopSource for PartialSource<'_> {
    fn macro_uops(&self, addr: Addr) -> Option<&[Uop]> {
        if self.resident.contains(&scc_isa::region(addr)) {
            self.program.macro_uops(addr)
        } else {
            None
        }
    }
}

#[test]
fn figure_3a_data_invariant_fold_and_propagate() {
    // ld t1 <- [a]; addi t2 = t1 + 2; add t4 = t2 + t5
    // With the load predicted to produce 10: the load becomes a prediction
    // source, the addi folds to t2 = 12, and the add becomes t4 = 12 + t5.
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(0), 0x9000); // pointer setup (folds too: movi)
    b.load(r(1), r(0), 0);
    b.add_imm(r(2), r(1), 2);
    b.add(r(4), r(2), r(5));
    b.halt();
    let p = b.build();

    let mut vp = LastValue::new();
    let load_pc = p.insts()[1].addr;
    for _ in 0..10 {
        vp.train(load_pc, 10);
    }

    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &vp, &NoBranchProbe));

    // movi folded (move elim), addi folded, load + add + halt kept.
    assert_eq!(s.orig_len, 5);
    assert_eq!(s.uops.len(), 3);
    assert_eq!(s.shrinkage(), 2);
    assert_eq!(s.breakdown.move_elim, 1);
    assert_eq!(s.breakdown.fold, 1);

    // The load is a prediction source with a data invariant of 10.
    let load = &s.uops[0];
    assert_eq!(load.uop.op, Op::Load);
    let inv_idx = load.pred_source.expect("load is a prediction source");
    match s.invariants[inv_idx].invariant {
        Invariant::Data { pc, value, .. } => {
            assert_eq!(pc, load_pc);
            assert_eq!(value, 10);
        }
        other => panic!("expected data invariant, got {other:?}"),
    }
    // Constant propagation rewrote the add's t2 operand to 12.
    let add = &s.uops[1];
    assert_eq!(add.uop.op, Op::Add);
    assert_eq!(add.uop.src1, scc_isa::Operand::Imm(12));
    assert_eq!(add.uop.src2, scc_isa::Operand::Reg(r(5)));
    assert_eq!(s.breakdown.propagated, 2, "load base and add source both rewritten");
    // The folded t2 (and the folded r0) appear as live-outs.
    let all_live_outs: Vec<_> = s
        .uops
        .iter()
        .flat_map(|u| u.live_outs.iter().copied())
        .chain(s.final_live_outs.iter().copied())
        .collect();
    assert!(all_live_outs.contains(&(r(2), 12)), "t2=12 must be materialized: {all_live_outs:?}");
    assert!(all_live_outs.contains(&(r(0), 0x9000)));
}

#[test]
fn audit_records_one_decision_per_consumed_uop() {
    use scc_isa::Transformation;
    // Same shape as figure_3a: movi / load (predicted) / addi / add / halt.
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(0), 0x9000);
    b.load(r(1), r(0), 0);
    b.add_imm(r(2), r(1), 2);
    b.add(r(4), r(2), r(5));
    b.halt();
    let p = b.build();
    let mut vp = LastValue::new();
    let load_pc = p.insts()[1].addr;
    for _ in 0..10 {
        vp.train(load_pc, 10);
    }
    let mut engine = CompactionEngine::new(SccConfig::full());
    engine.set_audit(true);
    assert!(engine.audit_enabled());
    let s = commit(engine.compact(0x1000, &p, &vp, &NoBranchProbe));
    let decisions = engine.take_decisions();
    assert_eq!(decisions.len() as u32, s.orig_len, "one decision per consumed micro-op");
    let actions: Vec<&str> = decisions.iter().map(|d| d.action.label()).collect();
    assert_eq!(
        actions,
        vec!["move-elim", "data-invariant-source", "fold", "propagate", "kept"]
    );
    match decisions[1].action {
        Transformation::DataInvariantSource { confidence } => assert!(confidence > 0),
        other => panic!("expected data invariant source, got {other:?}"),
    }
    assert_eq!(decisions[1].pc, load_pc);
    // Drained: a second take returns nothing.
    assert!(engine.take_decisions().is_empty());
    // With audit off, compaction records nothing.
    engine.set_audit(false);
    commit(engine.compact(0x1000, &p, &vp, &NoBranchProbe));
    assert!(engine.take_decisions().is_empty());
}

#[test]
fn audit_labels_branch_decisions() {
    // An unknown-condition branch, strongly predicted taken, is audited
    // as a control-invariant source carrying the predictor's confidence.
    let mut b = ProgramBuilder::new(0x1000);
    let t = b.label();
    b.cmp_br_imm(Cond::Eq, r(7), 0, t); // r7 unknown
    b.mov_imm(r(9), 1); // not on predicted path
    b.bind(t);
    b.mov_imm(r(2), 5);
    b.halt();
    let p = b.build();
    let mut bp = BranchPredictorUnit::new(BranchPredictorKind::TageLite);
    {
        let branch = &p.insts()[0].uops[0];
        let target = branch.target.unwrap();
        for _ in 0..64 {
            bp.update(branch, true, target, false);
        }
    }
    let mut engine = CompactionEngine::new(SccConfig::full());
    engine.set_audit(true);
    let _ = engine.compact(0x1000, &p, &NoValueProbe, &bp);
    let decisions = engine.take_decisions();
    let labels: Vec<&str> = decisions.iter().map(|d| d.action.label()).collect();
    assert!(
        labels.contains(&"control-invariant-source"),
        "trained branch should be a control-invariant source: {labels:?}"
    );
    let src = decisions
        .iter()
        .find(|d| d.action.label() == "control-invariant-source")
        .unwrap();
    assert!(src.action.confidence().unwrap() > 0);
}

#[test]
fn pure_constant_chain_folds_completely() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 6);
    b.mov_imm(r(2), 7);
    b.add(r(3), r(1), r(2));
    b.shl_imm(r(4), r(3), 2);
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.shrinkage(), 4);
    assert_eq!(s.uops.len(), 1, "only halt survives");
    assert_eq!(s.uops[0].uop.op, Op::Halt);
    let mut fl = s.final_live_outs.clone();
    fl.sort_by_key(|(reg, _)| reg.index());
    assert_eq!(fl, vec![(r(1), 6), (r(2), 7), (r(3), 13), (r(4), 52)]);
}

#[test]
fn move_elim_only_level_uses_live_out_fallback() {
    // Level 3: movi folds, but const-prop is off, so the reader keeps its
    // register operand and carries a live-out instead.
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 42);
    b.mul(r(2), r(1), r(3)); // mul is never foldable; reads r1
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::with_opts(OptFlags::move_elim_only()));
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.breakdown.move_elim, 1);
    assert_eq!(s.breakdown.propagated, 0);
    let mul = &s.uops[0];
    assert_eq!(mul.uop.op, Op::Mul);
    assert_eq!(mul.uop.src1, scc_isa::Operand::Reg(r(1)), "no propagation at level 3");
    assert_eq!(mul.live_outs, vec![(r(1), 42)], "live-out materializes the eliminated movi");
    assert!(s.final_live_outs.is_empty(), "r1 already materialized at the reader");
}

#[test]
fn no_opts_level_changes_nothing() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 42);
    b.add(r(2), r(1), r(3));
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::with_opts(OptFlags::none()));
    match engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe) {
        CompactionOutcome::Discarded { shrinkage, orig_len } => {
            assert_eq!(shrinkage, 0);
            assert_eq!(orig_len, 3);
        }
        o => panic!("expected discard, got {o:?}"),
    }
}

#[test]
fn constant_width_restriction_blocks_wide_folds() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 100_000); // does not fit in 16 bits
    b.mov_imm(r(2), 7); // fits
    b.halt();
    let p = b.build();
    let mut cfg = SccConfig::full();
    cfg.max_constant_width = Some(16);
    let mut engine = CompactionEngine::new(cfg);
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.shrinkage(), 1, "only the narrow constant is eliminable");
    assert_eq!(s.uops[0].uop.op, Op::MovImm);
    assert_eq!(s.uops[0].uop.src1, scc_isa::Operand::Imm(100_000));
}

#[test]
fn branch_folding_follows_the_computed_path() {
    // r1 = 5; if r1 == 5 goto taken; (dead movi); taken: r3 = r1 + 1
    let mut b = ProgramBuilder::new(0x1000);
    let taken = b.label();
    b.mov_imm(r(1), 5);
    b.cmp_br_imm(Cond::Eq, r(1), 5, taken);
    b.mov_imm(r(9), 111); // skipped by the fold
    b.bind(taken);
    b.add_imm(r(3), r(1), 1);
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.breakdown.branch_fold, 1);
    // movi folded, cmpbr folded, dead movi skipped entirely, addi folded.
    assert_eq!(s.uops.len(), 1, "only halt survives: {:?}", s.uops);
    assert!(s.final_live_outs.contains(&(r(3), 6)));
    assert!(!s.final_live_outs.iter().any(|(reg, _)| *reg == r(9)), "dead path not executed");
    assert!(s.invariants.is_empty(), "folding on known values needs no invariant");
}

#[test]
fn cc_tracking_folds_cmp_and_brcc() {
    let mut b = ProgramBuilder::new(0x1000);
    let t = b.label();
    b.mov_imm(r(1), 3);
    b.cmp_imm(r(1), 10);
    b.br(Cond::Lt, t);
    b.mov_imm(r(9), 1); // dead
    b.bind(t);
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    // movi + cmp fold; brcc folds through tracked CC.
    assert_eq!(s.uops.len(), 1);
    assert_eq!(s.breakdown.branch_fold, 1);
    assert!(s.final_live_out_cc.is_some(), "folded cmp leaves a CC live-out");
    let cc = s.final_live_out_cc.unwrap();
    assert!(!cc.zf && cc.sf, "3 - 10 is negative and nonzero");
}

#[test]
fn cc_tracking_disabled_stops_at_brcc() {
    let mut cfg = SccConfig::full();
    cfg.opts.cc_tracking = false;
    cfg.opts.control_invariants = false;
    let mut b = ProgramBuilder::new(0x1000);
    let t = b.label();
    b.mov_imm(r(1), 3);
    b.cmp_imm(r(1), 10);
    b.br(Cond::Lt, t);
    b.bind(t);
    b.halt();
    let p = b.build();
    let brcc_addr = p.insts()[2].addr;
    let mut engine = CompactionEngine::new(cfg);
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.exit, brcc_addr, "stream ends before the unresolvable branch");
}

#[test]
fn control_invariant_crosses_basic_blocks() {
    // An unknown-condition branch, strongly predicted taken, becomes a
    // prediction source; compaction continues at the predicted target.
    let mut b = ProgramBuilder::new(0x1000);
    let t = b.label();
    b.cmp_br_imm(Cond::Eq, r(7), 0, t); // r7 unknown
    b.mov_imm(r(9), 1); // not on predicted path
    b.bind(t);
    b.mov_imm(r(2), 5);
    b.add_imm(r(3), r(2), 1);
    b.halt();
    let p = b.build();
    let branch_pc = p.insts()[0].addr;

    let mut bp = BranchPredictorUnit::new(BranchPredictorKind::TageLite);
    // Train the branch heavily taken.
    {
        let branch = &p.insts()[0].uops[0];
        let target = branch.target.unwrap();
        for _ in 0..64 {
            bp.update(branch, true, target, false);
        }
    }
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &bp));
    assert_eq!(s.uops.len(), 2, "kept branch + halt: {:?}", s.uops);
    let br = &s.uops[0];
    assert_eq!(br.uop.op, Op::CmpBr);
    let idx = br.pred_source.expect("branch is a control prediction source");
    match s.invariants[idx].invariant {
        Invariant::Control { pc, taken, .. } => {
            assert_eq!(pc, branch_pc);
            assert!(taken);
        }
        other => panic!("expected control invariant, got {other:?}"),
    }
    // Eliminations past the predicted branch count as cross-block.
    assert_eq!(s.breakdown.cross_block, 2);
    assert!(s.final_live_outs.contains(&(r(3), 6)));
}

#[test]
fn low_confidence_branch_stops_compaction() {
    let mut b = ProgramBuilder::new(0x1000);
    let t = b.label();
    b.mov_imm(r(1), 1);
    b.cmp_br_imm(Cond::Eq, r(7), 0, t); // r7 unknown, untrained predictor
    b.bind(t);
    b.halt();
    let p = b.build();
    let branch_pc = p.insts()[1].addr;
    let bp = BranchPredictorUnit::new(BranchPredictorKind::TageLite);
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &bp));
    assert_eq!(s.exit, branch_pc);
    assert!(s.invariants.is_empty());
}

#[test]
fn third_branch_stops_the_stream() {
    let mut b = ProgramBuilder::new(0x1000);
    let l1 = b.label();
    let l2 = b.label();
    let l3 = b.label();
    b.mov_imm(r(1), 1);
    b.cmp_br_imm(Cond::Eq, r(1), 0, l1); // branch 1: not taken (folds)
    b.bind(l1);
    b.cmp_br_imm(Cond::Eq, r(1), 0, l2); // branch 2: not taken (folds)
    b.bind(l2);
    b.cmp_br_imm(Cond::Eq, r(1), 0, l3); // branch 3: stop here
    b.bind(l3);
    b.halt();
    let p = b.build();
    let third = p.insts()[3].addr;
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.exit, third, "stop condition (c): more than two branches");
    assert_eq!(s.breakdown.branch_fold, 2);
}

#[test]
fn self_looping_macro_aborts() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 4);
    b.mov_imm(r(2), 0x8000);
    b.rep_store(r(1), r(2), r(3));
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    assert_eq!(
        engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe),
        CompactionOutcome::Aborted(AbortReason::SelfLoopingMacro)
    );
    assert_eq!(engine.stats().aborted_self_loop, 1);
}

#[test]
fn store_into_own_region_aborts_as_smc() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 0x1000); // base = this very region
    b.store(r(2), r(1), 8);
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    assert_eq!(
        engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe),
        CompactionOutcome::Aborted(AbortReason::SelfModifyingCode)
    );
    assert_eq!(engine.stats().aborted_smc, 1);

    // A store elsewhere is fine.
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 0x9000);
    b.store(r(2), r(1), 8);
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    assert!(matches!(
        engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe),
        CompactionOutcome::Committed(_)
    ));
}

#[test]
fn write_buffer_caps_stream_length() {
    let mut b = ProgramBuilder::new(0x1000);
    // 30 unfoldable uops in one walk (multiple regions are fine if
    // sequential? no — region end stops. Keep them in one region: 32
    // bytes / 3-byte ops ≈ 10 per region. Use pivoting jmps? Simplest:
    // mul chains at 3 bytes each, then check the region-end stop first.)
    for i in 0..10 {
        b.mul(r((i % 8) as u8), r(8), r(9));
    }
    b.halt();
    let p = b.build();
    let mut cfg = SccConfig::full();
    cfg.write_buffer_uops = 4;
    cfg.compaction_threshold = 0;
    let mut engine = CompactionEngine::new(cfg);
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.uops.len(), 4, "write buffer bounds the stream");
    assert_eq!(s.exit, p.insts()[4].addr);
}

#[test]
fn sequential_region_end_stops() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mul(r(1), r(8), r(9));
    b.align_region(); // pad to 0x1020 with nops
    b.mul(r(2), r(8), r(9)); // next region
    b.halt();
    let p = b.build();
    let mut cfg = SccConfig::full();
    cfg.compaction_threshold = 0;
    let mut engine = CompactionEngine::new(cfg);
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.exit, 0x1020, "stop condition (a): end of the 32-byte region");
    assert_eq!(s.uops.len(), 1, "nop padding folds away, next region untouched");
}

#[test]
fn uop_cache_miss_stops() {
    // A folded branch pivots to a region that is not cache-resident.
    let mut b = ProgramBuilder::new(0x1000);
    let far = b.label();
    b.mov_imm(r(1), 5);
    b.cmp_br_imm(Cond::Eq, r(1), 5, far);
    b.align_region();
    b.align_region();
    b.bind(far);
    b.mov_imm(r(2), 1);
    b.halt();
    let p = b.build();
    let far_addr = p.inst_at(p.insts().iter().find(|m| m.addr >= 0x1020).unwrap().addr);
    let _ = far_addr;
    let target = p
        .insts()
        .iter()
        .find(|m| m.uops[0].op == Op::MovImm && m.addr >= 0x1020)
        .unwrap()
        .addr;
    let source = PartialSource { program: &p, resident: vec![0x1000] };
    let mut cfg = SccConfig::full();
    cfg.compaction_threshold = 0;
    let mut engine = CompactionEngine::new(cfg);
    let s = commit(engine.compact(0x1000, &source, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.exit, target, "stop condition (b): pivot target not resident");
    assert_eq!(s.breakdown.branch_fold, 1, "the branch itself still folded");
}

#[test]
fn fully_folded_stream_gets_an_anchor() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 1);
    b.mov_imm(r(2), 2);
    b.align_region();
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.uops.len(), 1);
    assert_eq!(s.uops[0].uop.op, Op::Nop);
    assert!(s.shrinkage() >= 2);
    assert!(s.final_live_outs.contains(&(r(1), 1)));
    assert!(s.final_live_outs.contains(&(r(2), 2)));
}

#[test]
fn call_and_ret_fold_through_link_register() {
    let mut b = ProgramBuilder::new(0x1000);
    let f = b.label();
    b.call(f, r(15));
    b.halt();
    b.bind(f);
    b.mov_imm(r(1), 7);
    b.ret(r(15));
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    // call folded, movi folded, ret folded (link known), halt kept.
    assert_eq!(s.uops.len(), 1);
    assert_eq!(s.uops[0].uop.op, Op::Halt);
    assert_eq!(s.breakdown.branch_fold, 2, "call and ret both folded");
    assert!(s.final_live_outs.iter().any(|&(reg, _)| reg == r(15)), "link is a live-out");
}

#[test]
fn data_invariant_budget_is_enforced() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(0), 0x9000);
    for i in 1..=6u8 {
        b.load(r(i), r(0), 8 * i as i64);
    }
    b.halt();
    let p = b.build();
    let mut vp = LastValue::new();
    for m in p.insts() {
        if m.uops[0].op == Op::Load {
            for _ in 0..10 {
                vp.train(m.addr, 5);
            }
        }
    }
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &vp, &NoBranchProbe));
    assert_eq!(s.data_invariants(), 4, "paper: at most four data invariants");
}

#[test]
fn request_queue_coalesces_and_bounds() {
    let mut q = RequestQueue::new(2);
    assert!(q.is_empty());
    q.push(CompactionRequest { region: 0x40, entry: 0x40 });
    q.push(CompactionRequest { region: 0x40, entry: 0x48 }); // coalesced
    assert_eq!(q.len(), 1);
    q.push(CompactionRequest { region: 0x80, entry: 0x80 });
    q.push(CompactionRequest { region: 0xC0, entry: 0xC0 }); // dropped
    assert_eq!(q.len(), 2);
    assert_eq!(q.drops(), 1);
    assert_eq!(q.pop().unwrap().region, 0x40);
    assert_eq!(q.pop().unwrap().region, 0x80);
    assert!(q.pop().is_none());
}

#[test]
fn engine_counts_cycles_one_uop_per_cycle() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 1);
    b.mov_imm(r(2), 2);
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::full());
    let _ = engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe);
    // 3 uops scanned + 1 commit cycle.
    assert_eq!(engine.last_cycles(), 4);
    assert!(engine.alu_ops() >= 2);
}

#[test]
fn future_work_complex_alu_folds_mul_div() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 6);
    b.mov_imm(r(2), 7);
    b.mul(r(3), r(1), r(2));
    b.div(r(4), r(3), r(1));
    b.halt();
    let p = b.build();
    // Paper-faithful config keeps mul/div (the ALU is restricted)...
    let mut engine = CompactionEngine::new(SccConfig::full());
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert!(s.uops.iter().any(|u| u.uop.op == Op::Mul));
    assert!(s.uops.iter().any(|u| u.uop.op == Op::Div));
    // ...the future-work extension folds them too.
    let mut engine = CompactionEngine::new(SccConfig::with_opts(OptFlags::future_work()));
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert_eq!(s.uops.len(), 1, "only halt survives: {:?}", s.uops);
    assert!(s.final_live_outs.contains(&(r(3), 42)));
    assert!(s.final_live_outs.contains(&(r(4), 7)));
}

#[test]
fn future_work_div_by_speculative_zero_matches_backend() {
    // Folded division by zero must match the backend's 0-result
    // convention exactly (no trap, no panic).
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 9);
    b.mov_imm(r(2), 0);
    b.div(r(3), r(1), r(2));
    b.halt();
    let p = b.build();
    let mut engine = CompactionEngine::new(SccConfig::with_opts(OptFlags::future_work()));
    let s = commit(engine.compact(0x1000, &p, &NoValueProbe, &NoBranchProbe));
    assert!(s.final_live_outs.contains(&(r(3), 0)));
}
