//! Property-based tests: compaction-engine invariants over random
//! programs and random predictor states.

use proptest::prelude::*;
use scc_core::{CompactionEngine, CompactionOutcome, NoBranchProbe, SccConfig};
use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_isa::Machine;
use scc_predictors::{LastValue, ValuePredictor};

fn trained_vp(program: &scc_isa::Program) -> LastValue {
    // Train the predictor exactly as commits would: replay the program in
    // the interpreter and feed load/ALU results per PC.
    let mut vp = LastValue::new();
    let mut m = Machine::new(program);
    // Step macro-by-macro and train on integer destinations.
    while !m.is_halted() {
        let pc = m.pc();
        let Some(inst) = program.inst_at(pc) else { break };
        let dsts: Vec<_> = inst
            .uops
            .iter()
            .filter_map(|u| u.dst.filter(|d| d.is_int()).map(|d| (u.macro_addr, d)))
            .collect();
        if m.step_macro(10_000).is_err() {
            break;
        }
        for (addr, d) in dsts {
            vp.train(addr, m.reg(d));
        }
        if m.uop_count() > 200_000 {
            break;
        }
    }
    vp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compaction_bookkeeping_is_consistent(seed in 0u64..3000) {
        let cfg = RandProgConfig { with_string_ops: false, ..RandProgConfig::default() };
        let program = random_program(seed, &cfg);
        let vp = trained_vp(&program);
        let mut engine = CompactionEngine::new(SccConfig::full());
        // Compact from several entry points.
        for inst in program.insts().iter().step_by(7) {
            match engine.compact(inst.addr, &program, &vp, &NoBranchProbe) {
                CompactionOutcome::Committed(s) => {
                    let scc = SccConfig::full();
                    // Shrinkage accounting: originals = survivors +
                    // eliminated, except that a fully-folded stream gains
                    // one synthetic anchor nop to carry its live-outs.
                    let accounted = s.uops.len() + s.breakdown.eliminated() as usize;
                    prop_assert!(
                        accounted == s.orig_len as usize
                            || (accounted == s.orig_len as usize + 1
                                && s.uops.len() == 1
                                && s.uops[0].uop.op == scc_isa::Op::Nop),
                        "uop accounting broke (seed {}): orig {} vs {}",
                        seed, s.orig_len, accounted
                    );
                    // Budget limits.
                    prop_assert!(s.uops.len() <= scc.write_buffer_uops + 1);
                    prop_assert!(s.data_invariants() <= scc.max_data_invariants);
                    prop_assert!(s.control_invariants() <= scc.max_control_invariants);
                    // Every prediction source index is valid.
                    for su in &s.uops {
                        if let Some(i) = su.pred_source {
                            prop_assert!(i < s.invariants.len());
                        }
                    }
                    // The stream's home region matches its entry.
                    prop_assert_eq!(s.region, scc_isa::region(s.entry));
                }
                CompactionOutcome::Discarded { shrinkage, orig_len } => {
                    prop_assert!(shrinkage <= orig_len);
                }
                CompactionOutcome::Aborted(_) => {}
            }
        }
    }

    #[test]
    fn live_outs_respect_the_width_restriction(seed in 0u64..500, width in prop::sample::select(vec![8u32, 16, 32])) {
        let cfg = RandProgConfig { with_string_ops: false, ..RandProgConfig::default() };
        let program = random_program(seed, &cfg);
        let vp = trained_vp(&program);
        let mut scc = SccConfig::full();
        scc.max_constant_width = Some(width);
        let mut engine = CompactionEngine::new(scc);
        for inst in program.insts().iter().step_by(11) {
            if let CompactionOutcome::Committed(s) =
                engine.compact(inst.addr, &program, &vp, &NoBranchProbe)
            {
                let min = -(1i64 << (width - 1));
                let max = (1i64 << (width - 1)) - 1;
                for (_, v) in s
                    .uops
                    .iter()
                    .flat_map(|u| u.live_outs.iter())
                    .chain(s.final_live_outs.iter())
                {
                    prop_assert!(
                        (min..=max).contains(v),
                        "live-out {} exceeds {}-bit budget (seed {})", v, width, seed
                    );
                }
            }
        }
    }

    #[test]
    fn compaction_is_deterministic(seed in 0u64..500) {
        let cfg = RandProgConfig::default();
        let program = random_program(seed, &cfg);
        let vp = trained_vp(&program);
        let mut e1 = CompactionEngine::new(SccConfig::full());
        let mut e2 = CompactionEngine::new(SccConfig::full());
        let o1 = e1.compact(program.entry(), &program, &vp, &NoBranchProbe);
        let o2 = e2.compact(program.entry(), &program, &vp, &NoBranchProbe);
        prop_assert_eq!(o1, o2);
    }

    #[test]
    fn disabled_levels_never_eliminate(seed in 0u64..300) {
        use scc_core::OptFlags;
        let cfg = RandProgConfig { with_string_ops: false, ..RandProgConfig::default() };
        let program = random_program(seed, &cfg);
        let vp = trained_vp(&program);
        let mut engine = CompactionEngine::new(SccConfig::with_opts(OptFlags::none()));
        for inst in program.insts().iter().step_by(9) {
            match engine.compact(inst.addr, &program, &vp, &NoBranchProbe) {
                CompactionOutcome::Committed(s) => {
                    prop_assert_eq!(s.shrinkage(), 0, "no-opt level must not shrink");
                }
                _ => {}
            }
        }
    }
}
