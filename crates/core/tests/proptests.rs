//! Property-style tests: compaction-engine invariants over random
//! programs and random predictor states, driven by deterministic seed
//! sweeps (no registry dependencies) so they run identically offline.

use scc_core::{CompactionEngine, CompactionOutcome, NoBranchProbe, SccConfig};
use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_isa::Machine;
use scc_predictors::{LastValue, ValuePredictor};

fn trained_vp(program: &scc_isa::Program) -> LastValue {
    // Train the predictor exactly as commits would: replay the program in
    // the interpreter and feed load/ALU results per PC.
    let mut vp = LastValue::new();
    let mut m = Machine::new(program);
    // Step macro-by-macro and train on integer destinations.
    while !m.is_halted() {
        let pc = m.pc();
        let Some(inst) = program.inst_at(pc) else { break };
        let dsts: Vec<_> = inst
            .uops
            .iter()
            .filter_map(|u| u.dst.filter(|d| d.is_int()).map(|d| (u.macro_addr, d)))
            .collect();
        if m.step_macro(10_000).is_err() {
            break;
        }
        for (addr, d) in dsts {
            vp.train(addr, m.reg(d));
        }
        if m.uop_count() > 200_000 {
            break;
        }
    }
    vp
}

#[test]
fn compaction_bookkeeping_is_consistent() {
    for seed in (0..3000).step_by(63) {
        let cfg = RandProgConfig { with_string_ops: false, ..RandProgConfig::default() };
        let program = random_program(seed, &cfg);
        let vp = trained_vp(&program);
        let mut engine = CompactionEngine::new(SccConfig::full());
        // Compact from several entry points.
        for inst in program.insts().iter().step_by(7) {
            match engine.compact(inst.addr, &program, &vp, &NoBranchProbe) {
                CompactionOutcome::Committed(s) => {
                    let scc = SccConfig::full();
                    // Shrinkage accounting: originals = survivors +
                    // eliminated, except that a fully-folded stream gains
                    // one synthetic anchor nop to carry its live-outs.
                    let accounted = s.uops.len() + s.breakdown.eliminated() as usize;
                    assert!(
                        accounted == s.orig_len as usize
                            || (accounted == s.orig_len as usize + 1
                                && s.uops.len() == 1
                                && s.uops[0].uop.op == scc_isa::Op::Nop),
                        "uop accounting broke (seed {}): orig {} vs {}",
                        seed,
                        s.orig_len,
                        accounted
                    );
                    // Budget limits.
                    assert!(s.uops.len() <= scc.write_buffer_uops + 1);
                    assert!(s.data_invariants() <= scc.max_data_invariants);
                    assert!(s.control_invariants() <= scc.max_control_invariants);
                    // Every prediction source index is valid.
                    for su in &s.uops {
                        if let Some(i) = su.pred_source {
                            assert!(i < s.invariants.len());
                        }
                    }
                    // The stream's home region matches its entry.
                    assert_eq!(s.region, scc_isa::region(s.entry));
                }
                CompactionOutcome::Discarded { shrinkage, orig_len } => {
                    assert!(shrinkage <= orig_len);
                }
                CompactionOutcome::Aborted(_) => {}
            }
        }
    }
}

#[test]
fn live_outs_respect_the_width_restriction() {
    for (i, seed) in (0..500).step_by(31).enumerate() {
        let width = [8u32, 16, 32][i % 3];
        let cfg = RandProgConfig { with_string_ops: false, ..RandProgConfig::default() };
        let program = random_program(seed, &cfg);
        let vp = trained_vp(&program);
        let mut scc = SccConfig::full();
        scc.max_constant_width = Some(width);
        let mut engine = CompactionEngine::new(scc);
        for inst in program.insts().iter().step_by(11) {
            if let CompactionOutcome::Committed(s) =
                engine.compact(inst.addr, &program, &vp, &NoBranchProbe)
            {
                let min = -(1i64 << (width - 1));
                let max = (1i64 << (width - 1)) - 1;
                for (_, v) in s
                    .uops
                    .iter()
                    .flat_map(|u| u.live_outs.iter())
                    .chain(s.final_live_outs.iter())
                {
                    assert!(
                        (min..=max).contains(v),
                        "live-out {} exceeds {}-bit budget (seed {})",
                        v,
                        width,
                        seed
                    );
                }
            }
        }
    }
}

#[test]
fn compaction_is_deterministic() {
    for seed in (0..500).step_by(29) {
        let cfg = RandProgConfig::default();
        let program = random_program(seed, &cfg);
        let vp = trained_vp(&program);
        let mut e1 = CompactionEngine::new(SccConfig::full());
        let mut e2 = CompactionEngine::new(SccConfig::full());
        let o1 = e1.compact(program.entry(), &program, &vp, &NoBranchProbe);
        let o2 = e2.compact(program.entry(), &program, &vp, &NoBranchProbe);
        assert_eq!(o1, o2);
    }
}

#[test]
fn disabled_levels_never_eliminate() {
    use scc_core::OptFlags;
    for seed in (0..300).step_by(23) {
        let cfg = RandProgConfig { with_string_ops: false, ..RandProgConfig::default() };
        let program = random_program(seed, &cfg);
        let vp = trained_vp(&program);
        let mut engine = CompactionEngine::new(SccConfig::with_opts(OptFlags::none()));
        for inst in program.insts().iter().step_by(9) {
            if let CompactionOutcome::Committed(s) =
                engine.compact(inst.addr, &program, &vp, &NoBranchProbe)
            {
                assert_eq!(s.shrinkage(), 0, "no-opt level must not shrink");
            }
        }
    }
}
