//! Speculative Code Compaction (SCC): the primary contribution of
//! Moody et al., *"Speculative Code Compaction: Eliminating Dead Code via
//! Speculative Microcode Transformations"* (MICRO 2022).
//!
//! SCC is a hardware-only, front-end dynamic optimizer. When a micro-op
//! cache line gets hot, a small compaction unit — one simple integer ALU
//! plus a register context table — walks the cached micro-op sequence in
//! program order, one micro-op per cycle, and applies a single pass of
//! *speculative* peephole optimizations driven by predicted data and
//! control invariants:
//!
//! * **speculative data-invariant identification** (value-predictor probe;
//!   the micro-op becomes a *prediction source* and must stay),
//! * **speculative constant folding** (all sources known → evaluate on the
//!   front-end ALU, delete the micro-op),
//! * **speculative constant propagation** (some sources known → rewrite
//!   register operands to immediates),
//! * **speculative branch folding** (direction and target deducible →
//!   delete the branch and pivot),
//! * **speculative control-invariant identification** (branch-predictor
//!   probe; the branch stays as a prediction source, compaction pivots to
//!   the predicted target), and
//! * **live-out inlining** (values of eliminated micro-ops are
//!   materialized at prediction sources and stream end via rename-time
//!   physical-register inlining, so a squash always recovers a consistent
//!   register state).
//!
//! The result is a [`CompactedStream`](scc_uopcache::CompactedStream)
//! committed to the optimized micro-op cache partition, from which the
//! fetch engine streams when the [`ProfitabilityUnit`] deems it safe and
//! profitable.
//!
//! # Example
//!
//! ```
//! use scc_core::{CompactionEngine, CompactionOutcome, SccConfig};
//! use scc_isa::{ProgramBuilder, Reg};
//! use scc_predictors::LastValue;
//!
//! // movi r1, 10 ; addi r2, r1, 2 ; add r3, r2, r5 — fold the first two,
//! // propagate 12 into the third (the paper's Figure 3(a) shape).
//! let mut b = ProgramBuilder::new(0x1000);
//! let (r1, r2, r3, r5) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(5));
//! b.mov_imm(r1, 10);
//! b.add_imm(r2, r1, 2);
//! b.add(r3, r2, r5);
//! b.halt();
//! let program = b.build();
//!
//! let mut engine = CompactionEngine::new(SccConfig::full());
//! let vp = LastValue::new(); // untrained: no data invariants, pure folding
//! let outcome = engine.compact(0x1000, &program, &vp, &scc_core::NoBranchProbe);
//! let stream = match outcome {
//!     CompactionOutcome::Committed(s) => s,
//!     o => panic!("expected commit, got {o:?}"),
//! };
//! assert_eq!(stream.shrinkage(), 2); // movi and addi both folded away
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alu;
pub mod audit;
mod config;
mod engine;
mod probes;
mod profit;
mod regfile;

pub use alu::SccAlu;
pub use audit::{AssumptionCounts, AuditLog};
pub use config::{OptFlags, SccConfig};
pub use engine::{AbortReason, CompactionEngine, CompactionOutcome, CompactionRequest, RequestQueue};
pub use probes::{BranchProbe, NoBranchProbe, NoValueProbe, UopSource, ValueProbe};
pub use profit::{MispredictCause, ProfitabilityUnit, RecoveryDecision, StreamChoice};
pub use regfile::{RegContextTable, SccValue};
