//! The SCC front-end ALU.
//!
//! "a simple integer ALU to evaluate and speculatively eliminate dead
//! code … we take a conservative latency/power-sensitive approach by
//! restricting the range of operations it can perform to only simple
//! integer arithmetic, logic, and shift operations" (paper §III). The ALU
//! therefore refuses `mul`/`div`/`rem`, all memory operations, and all
//! floating point — even when their inputs are known.

use scc_isa::{eval_alu, is_foldable_int, AluResult, CcFlags, Cond, Op};

/// The front-end ALU, with an operation counter for the energy model.
#[derive(Clone, Debug, Default)]
pub struct SccAlu {
    ops: u64,
}

impl SccAlu {
    /// Creates an idle ALU.
    pub fn new() -> SccAlu {
        SccAlu::default()
    }

    /// True if this ALU can evaluate `op` at all.
    pub fn supports(op: Op) -> bool {
        is_foldable_int(op)
    }

    /// Evaluates a supported operation on concrete inputs, counting the
    /// operation. Returns `None` for unsupported operations.
    pub fn eval(
        &mut self,
        op: Op,
        a: i64,
        b: i64,
        cc: CcFlags,
        cond: Option<Cond>,
    ) -> Option<AluResult> {
        if !Self::supports(op) {
            return None;
        }
        self.ops += 1;
        eval_alu(op, a, b, cc, cond)
    }

    /// Operations evaluated so far (energy accounting).
    pub fn op_count(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_simple_integer_ops() {
        let mut alu = SccAlu::new();
        let r = alu.eval(Op::Add, 10, 2, CcFlags::default(), None).unwrap();
        assert_eq!(r.value, Some(12));
        let r = alu.eval(Op::Shl, 1, 4, CcFlags::default(), None).unwrap();
        assert_eq!(r.value, Some(16));
        assert_eq!(alu.op_count(), 2);
    }

    #[test]
    fn refuses_complex_and_memory_ops() {
        let mut alu = SccAlu::new();
        for op in [Op::Mul, Op::Div, Op::Rem, Op::Load, Op::Store, Op::FpAdd, Op::FpMul, Op::Simd] {
            assert!(alu.eval(op, 1, 1, CcFlags::default(), None).is_none(), "{op}");
            assert!(!SccAlu::supports(op), "{op}");
        }
        assert_eq!(alu.op_count(), 0, "refused ops must not count");
    }

    #[test]
    fn matches_backend_semantics_exactly() {
        // The linchpin: SCC folding computes bit-identical results to the
        // execute stage for every supported op and tricky inputs.
        let mut alu = SccAlu::new();
        let inputs = [
            (i64::MAX, 1),
            (i64::MIN, -1),
            (0, 0),
            // The full `& 63` mask boundary: 62..65 plus the wrap cases
            // a shift-amount generator drawing from `below(8)` never
            // reaches.
            (-5, 62),
            (-5, 63),
            (-5, 64),
            (7, 65),
            (i64::MIN, 127),
            (1, -1),
        ];
        for op in [Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Shl, Op::Shr, Op::Sar] {
            for (a, b) in inputs {
                let scc = alu.eval(op, a, b, CcFlags::default(), None).unwrap();
                let backend = eval_alu(op, a, b, CcFlags::default(), None).unwrap();
                assert_eq!(scc, backend, "{op} {a} {b}");
            }
        }
    }

    #[test]
    fn cmp_produces_flags_only() {
        let mut alu = SccAlu::new();
        let r = alu.eval(Op::Cmp, 3, 3, CcFlags::default(), None).unwrap();
        assert_eq!(r.value, None);
        assert!(r.cc.unwrap().zf);
    }
}
