//! The SCC decision audit log.
//!
//! Flückiger et al. ("Correctness of Speculative Optimizations with
//! Dynamic Deoptimization") model every speculative optimization as an
//! assumption/deoptimization pair. [`AuditLog`] materializes that view of
//! an SCC run: it records, per scanned micro-op, which transformation the
//! engine chose and the predictor confidence that justified it, and, per
//! squash, which recorded assumption failed. It is a
//! [`Sink`](scc_isa::trace::Sink), so it attaches anywhere the trace
//! layer does.
//!
//! The log serializes to JSON Lines (one type-tagged object per line, in
//! arrival order), and keeps running totals that must reconcile with the
//! pipeline's own counters: `validated()` equals
//! `PipelineStats::invariants_validated`, `failed_data()` equals
//! `invariants_failed`, and `failed_control()` equals
//! `scc_control_squashes`.

use scc_isa::trace::{Event, Sink, Transformation};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Per-stream assumption outcome counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssumptionCounts {
    /// Invariants that held at commit.
    pub validated: u64,
    /// Data invariants that failed (value mismatch at execute).
    pub failed_data: u64,
    /// Control invariants that failed (branch resolved off-stream).
    pub failed_control: u64,
}

/// Collects SCC decisions and assumption outcomes from the event stream.
#[derive(Clone, Debug, Default)]
pub struct AuditLog {
    lines: Vec<String>,
    decision_counts: [u64; Transformation::LABELS.len()],
    decisions: u64,
    per_stream: BTreeMap<u64, AssumptionCounts>,
    validated: u64,
    failed_data: u64,
    failed_control: u64,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_id(id: Option<u64>) -> String {
    match id {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Total decision records.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decision counts per transformation, in
    /// [`Transformation::LABELS`] order.
    pub fn decision_histogram(&self) -> Vec<(&'static str, u64)> {
        Transformation::LABELS.iter().copied().zip(self.decision_counts).collect()
    }

    /// Per-stream assumption outcomes, keyed by stream id.
    pub fn per_stream(&self) -> &BTreeMap<u64, AssumptionCounts> {
        &self.per_stream
    }

    /// Assumptions that held at commit (equals the pipeline's
    /// `invariants_validated`).
    pub fn validated(&self) -> u64 {
        self.validated
    }

    /// Data assumptions that failed (equals `invariants_failed`).
    pub fn failed_data(&self) -> u64 {
        self.failed_data
    }

    /// Control assumptions that failed (equals `scc_control_squashes`).
    pub fn failed_control(&self) -> u64 {
        self.failed_control
    }

    /// The log as JSON Lines, one event per line in arrival order.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Writes the JSON Lines log to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

impl Sink for AuditLog {
    fn record(&mut self, event: &Event) {
        match event {
            Event::CompactionPass {
                start_cycle,
                end_cycle,
                region,
                entry,
                outcome,
                shrinkage,
                stream_id,
            } => {
                self.lines.push(format!(
                    "{{\"type\":\"pass\",\"cycle\":{start_cycle},\"end_cycle\":{end_cycle},\
                     \"region\":{region},\"entry\":{entry},\"outcome\":\"{outcome}\",\
                     \"shrinkage\":{shrinkage},\"stream_id\":{}}}",
                    opt_id(*stream_id)
                ));
            }
            Event::Decision { region, stream_id, decision } => {
                self.decisions += 1;
                let idx = Transformation::LABELS
                    .iter()
                    .position(|l| *l == decision.action.label())
                    .expect("label in canonical set");
                self.decision_counts[idx] += 1;
                let conf = match decision.action.confidence() {
                    Some(c) => c.to_string(),
                    None => "null".to_string(),
                };
                self.lines.push(format!(
                    "{{\"type\":\"decision\",\"region\":{region},\"stream_id\":{},\
                     \"pc\":{},\"slot\":{},\"op\":\"{}\",\"action\":\"{}\",\
                     \"confidence\":{conf}}}",
                    opt_id(*stream_id),
                    decision.pc,
                    decision.slot,
                    esc(&decision.op),
                    decision.action.label(),
                ));
            }
            Event::AssumptionValidated { cycle, stream_id, invariant, kind } => {
                self.validated += 1;
                self.per_stream.entry(*stream_id).or_default().validated += 1;
                self.lines.push(format!(
                    "{{\"type\":\"validated\",\"cycle\":{cycle},\"stream_id\":{stream_id},\
                     \"invariant\":{invariant},\"kind\":\"{kind}\"}}"
                ));
            }
            Event::AssumptionFailed { cycle, stream_id, invariant, kind, pc } => {
                let counts = self.per_stream.entry(*stream_id).or_default();
                if *kind == "control" {
                    self.failed_control += 1;
                    counts.failed_control += 1;
                } else {
                    self.failed_data += 1;
                    counts.failed_data += 1;
                }
                self.lines.push(format!(
                    "{{\"type\":\"failed\",\"cycle\":{cycle},\"stream_id\":{stream_id},\
                     \"invariant\":{invariant},\"kind\":\"{kind}\",\"pc\":{pc}}}"
                ));
            }
            // Fetch mix, cache lifecycle, squash windows, and runner
            // scheduling belong to the trace exporter, not the audit log.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::trace::UopDecision;

    fn decision(action: Transformation) -> Event {
        Event::Decision {
            region: 0x40,
            stream_id: Some(3),
            decision: UopDecision { pc: 0x44, slot: 0, op: "add".into(), action },
        }
    }

    #[test]
    fn histogram_counts_by_label() {
        let mut log = AuditLog::new();
        log.record(&decision(Transformation::Fold));
        log.record(&decision(Transformation::Fold));
        log.record(&decision(Transformation::DataInvariantSource { confidence: 9 }));
        assert_eq!(log.decisions(), 3);
        let hist: BTreeMap<_, _> = log.decision_histogram().into_iter().collect();
        assert_eq!(hist["fold"], 2);
        assert_eq!(hist["data-invariant-source"], 1);
        assert_eq!(hist["kept"], 0);
    }

    #[test]
    fn assumption_totals_and_per_stream() {
        let mut log = AuditLog::new();
        log.record(&Event::AssumptionValidated {
            cycle: 10,
            stream_id: 1,
            invariant: 0,
            kind: "data",
        });
        log.record(&Event::AssumptionFailed {
            cycle: 20,
            stream_id: 1,
            invariant: 0,
            kind: "data",
            pc: 0x44,
        });
        log.record(&Event::AssumptionFailed {
            cycle: 30,
            stream_id: 2,
            invariant: 1,
            kind: "control",
            pc: 0x48,
        });
        assert_eq!(log.validated(), 1);
        assert_eq!(log.failed_data(), 1);
        assert_eq!(log.failed_control(), 1);
        assert_eq!(log.per_stream()[&1].validated, 1);
        assert_eq!(log.per_stream()[&1].failed_data, 1);
        assert_eq!(log.per_stream()[&2].failed_control, 1);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut log = AuditLog::new();
        log.record(&decision(Transformation::Propagate));
        log.record(&Event::CompactionPass {
            start_cycle: 5,
            end_cycle: 12,
            region: 0x40,
            entry: 0x40,
            outcome: "committed",
            shrinkage: 4,
            stream_id: Some(3),
        });
        let text = log.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(text.contains("\"action\":\"propagate\""));
        assert!(text.contains("\"outcome\":\"committed\""));
        assert!(text.contains("\"confidence\":null"));
    }

    #[test]
    fn non_audit_events_are_ignored() {
        let mut log = AuditLog::new();
        log.record(&Event::RegionFilled { cycle: 1, region: 0x40, uops: 6 });
        log.record(&Event::SquashWindow {
            cycle: 2,
            resume_cycle: 12,
            cause: "branch",
            new_pc: 0x80,
            flushed: 3,
            stream_id: None,
        });
        assert!(log.to_jsonl().is_empty());
        assert_eq!(log.decisions(), 0);
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\u000ay");
    }
}
