//! Probe traits through which the SCC unit consults the rest of the
//! front-end: the micro-op source (unoptimized partition), the value
//! predictor, and the branch predictor.
//!
//! The paper doubles the predictors' read-port width so SCC can probe in
//! parallel with fetch; here the decoupling is expressed as traits, so the
//! compaction engine is testable against a bare [`Program`] and plain
//! predictor instances, while the pipeline wires in the real structures.

use scc_isa::{Addr, Program, Uop};
use scc_predictors::{PredictedBranch, ValuePrediction, ValuePredictor};

/// Where the SCC unit reads decoded micro-ops from.
pub trait UopSource {
    /// The micro-op expansion of the macro-instruction at `addr`, if it is
    /// available to the SCC unit (i.e. resident in the micro-op cache).
    fn macro_uops(&self, addr: Addr) -> Option<&[Uop]>;
}

/// Ideal source: the whole program is "resident". Used by tests and the
/// compaction-explorer example; the pipeline supplies a cache-accurate
/// implementation.
impl UopSource for Program {
    fn macro_uops(&self, addr: Addr) -> Option<&[Uop]> {
        self.inst_at(addr).map(|m| m.uops.as_slice())
    }
}

/// Value-predictor probe for speculative data-invariant identification.
pub trait ValueProbe {
    /// Predicted outcome of the micro-op at `pc`, if any.
    fn probe_value(&self, pc: Addr) -> Option<ValuePrediction>;

    /// Predicted outcome of the `n`-th next dynamic instance of `pc`
    /// (phase-aware predictors adjust for in-flight instances).
    fn probe_value_nth(&self, pc: Addr, n: u64) -> Option<ValuePrediction> {
        let _ = n;
        self.probe_value(pc)
    }
}

impl<T: ValuePredictor + ?Sized> ValueProbe for T {
    fn probe_value(&self, pc: Addr) -> Option<ValuePrediction> {
        self.predict(pc)
    }

    fn probe_value_nth(&self, pc: Addr, n: u64) -> Option<ValuePrediction> {
        self.predict_nth(pc, n)
    }
}

/// A probe that never predicts (disables data invariants).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoValueProbe;

impl ValueProbe for NoValueProbe {
    fn probe_value(&self, _pc: Addr) -> Option<ValuePrediction> {
        None
    }
}

/// Branch-predictor probe for speculative control-invariant
/// identification.
pub trait BranchProbe {
    /// Predicted direction/target/confidence for the branch micro-op.
    fn probe_branch(&self, uop: &Uop) -> PredictedBranch;
}

impl BranchProbe for scc_predictors::BranchPredictorUnit {
    fn probe_branch(&self, uop: &Uop) -> PredictedBranch {
        self.probe(uop)
    }
}

/// A probe with no opinion (disables control invariants).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoBranchProbe;

impl BranchProbe for NoBranchProbe {
    fn probe_branch(&self, _uop: &Uop) -> PredictedBranch {
        PredictedBranch { taken: false, target: None, confidence: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::{Op, ProgramBuilder, Reg};
    use scc_predictors::LastValue;

    #[test]
    fn program_is_an_ideal_uop_source() {
        let mut b = ProgramBuilder::new(0x100);
        b.mov_imm(Reg::int(0), 1);
        b.halt();
        let p = b.build();
        let uops = p.macro_uops(0x100).unwrap();
        assert_eq!(uops.len(), 1);
        assert_eq!(uops[0].op, Op::MovImm);
        assert!(p.macro_uops(0x101).is_none());
    }

    #[test]
    fn value_predictors_are_probes() {
        let mut vp = LastValue::new();
        vp.train(0x40, 7);
        vp.train(0x40, 7);
        let pr = ValueProbe::probe_value(&vp, 0x40).unwrap();
        assert_eq!(pr.value, 7);
        assert!(NoValueProbe.probe_value(0x40).is_none());
    }

    #[test]
    fn no_branch_probe_is_unconfident() {
        let u = Uop::new(Op::CmpBr);
        let p = NoBranchProbe.probe_branch(&u);
        assert_eq!(p.confidence, 0);
        assert_eq!(p.target, None);
    }
}
