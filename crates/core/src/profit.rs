//! The profitability analysis unit and misspeculation recovery policy
//! (paper §V, "The Fetch State Machine").

use crate::config::SccConfig;
use crate::probes::ValueProbe;
use scc_uopcache::{CompactedStream, Invariant};

/// Which stream (if any) the fetch engine should use at a lookup with
/// multiple candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamChoice {
    /// Stream the candidate with this `stream_id`.
    Optimized {
        /// The chosen stream's id.
        stream_id: u64,
    },
    /// No candidate passed the profitability checks: use the unoptimized
    /// partition (or the decode pipeline).
    Unoptimized,
}

/// Why an instruction squashed, as seen by the recovery policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MispredictCause {
    /// A speculative data invariant failed validation (value
    /// misprediction of a prediction source).
    DataInvariant,
    /// A speculative control invariant failed (branch from a compacted
    /// stream resolved off the encoded path).
    ControlInvariant,
    /// An ordinary branch misprediction unrelated to SCC.
    PlainBranch,
    /// Memory-order or other squash unrelated to SCC speculation (the
    /// paper's example: "speculative memory disambiguation").
    Other,
}

/// What the fetch engine should do after a squash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryDecision {
    /// Redirect fetch to the unoptimized version of the offending region
    /// (and stop streaming the stale optimized line).
    pub force_unoptimized: bool,
}

/// The dynamically adjusted control-invariant confidence threshold
/// ("a dynamically identified threshold of mispredictions that is tuned on
/// the basis of the rate at which mispredictions increase or decrease",
/// paper §V; enabled by `--enableDynamicThreshold`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct DynamicThreshold {
    value: u8,
    min: u8,
    max: u8,
}

impl DynamicThreshold {
    fn on_squash(&mut self) {
        self.value = (self.value + 1).min(self.max);
    }

    fn on_good_stream(&mut self) {
        if self.value > self.min {
            self.value -= 1;
        }
    }
}

/// Counters for the profitability unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfitStats {
    /// Lookups where an optimized stream was chosen.
    pub chose_optimized: u64,
    /// Lookups with candidates where all were rejected.
    pub rejected_all: u64,
    /// Rejections because a data invariant no longer matches the value
    /// predictor.
    pub stale_data: u64,
    /// Rejections on the confidence threshold.
    pub low_confidence: u64,
    /// Rejections on hotness.
    pub cold: u64,
}

/// The fetch engine's profitability analysis unit.
///
/// Decides, per lookup, whether streaming a speculatively optimized line
/// beats the unoptimized one, "examining all three heuristics in unison":
/// compaction potential, invariant confidence, and hotness.
#[derive(Clone, Debug)]
pub struct ProfitabilityUnit {
    config: SccConfig,
    threshold: DynamicThreshold,
    hotness_floor: u32,
    stats: ProfitStats,
}

impl ProfitabilityUnit {
    /// Creates a unit with the paper's tuning: the dynamic confidence
    /// threshold starts at the SCC probe threshold (5) and moves with the
    /// squash rate; streams must be at least warm (hotness ≥ 1).
    pub fn new(config: SccConfig) -> ProfitabilityUnit {
        ProfitabilityUnit {
            threshold: DynamicThreshold { value: config.confidence_threshold, min: 1, max: 12 },
            hotness_floor: 1,
            config,
            stats: ProfitStats::default(),
        }
    }

    /// Current dynamic confidence threshold.
    pub fn threshold(&self) -> u8 {
        self.threshold.value
    }

    /// Counters.
    pub fn stats(&self) -> ProfitStats {
        self.stats
    }

    /// Chooses among candidate streams for one fetch lookup.
    ///
    /// `hotness_of` supplies each candidate's current hotness counter;
    /// `vp` is the live value predictor the data invariants are re-checked
    /// against.
    pub fn choose(
        &mut self,
        candidates: &[&CompactedStream],
        hotness_of: impl Fn(u64) -> u32,
        vp: &(impl ValueProbe + ?Sized),
    ) -> StreamChoice {
        self.choose_with_inflight(candidates, hotness_of, vp, |_| 0)
    }

    /// Like [`choose`](Self::choose), with the number of in-flight
    /// (fetched but uncommitted) instances of each PC, so data invariants
    /// are compared against the dynamic instance they will validate
    /// against (phase-aware predictors need this for oscillating values).
    pub fn choose_with_inflight(
        &mut self,
        candidates: &[&CompactedStream],
        hotness_of: impl Fn(u64) -> u32,
        vp: &(impl ValueProbe + ?Sized),
        inflight: impl Fn(scc_isa::Addr) -> u64,
    ) -> StreamChoice {
        self.choose_candidates(
            candidates.iter().map(|s| (*s, hotness_of(s.stream_id))),
            vp,
            inflight,
        )
    }

    /// Like [`choose_with_inflight`](Self::choose_with_inflight), but
    /// consuming `(stream, hotness)` pairs directly — the fetch engine
    /// feeds this from the optimized partition's candidate iterator
    /// without building a candidate list or hotness map per lookup.
    pub fn choose_candidates<'a>(
        &mut self,
        candidates: impl IntoIterator<Item = (&'a CompactedStream, u32)>,
        vp: &(impl ValueProbe + ?Sized),
        inflight: impl Fn(scc_isa::Addr) -> u64,
    ) -> StreamChoice {
        let mut best: Option<(&CompactedStream, (u32, u32))> = None;
        let mut seen = false;
        for (s, hotness) in candidates {
            seen = true;
            if !self.stream_ok(s, hotness, vp, &inflight) {
                continue;
            }
            // "the instruction stream that has the highest data invariant
            // confidence and provides the greatest compaction is chosen"
            let data_conf: u32 = s
                .invariants
                .iter()
                .filter(|t| t.invariant.is_data())
                .map(|t| t.confidence.get() as u32)
                .sum();
            let rank = (data_conf, s.shrinkage());
            if best.is_none_or(|(_, r)| rank > r) {
                best = Some((s, rank));
            }
        }
        match best {
            Some((s, _)) => {
                self.stats.chose_optimized += 1;
                StreamChoice::Optimized { stream_id: s.stream_id }
            }
            None => {
                if seen {
                    self.stats.rejected_all += 1;
                }
                StreamChoice::Unoptimized
            }
        }
    }

    fn stream_ok(
        &mut self,
        s: &CompactedStream,
        hotness: u32,
        vp: &(impl ValueProbe + ?Sized),
        inflight: &impl Fn(scc_isa::Addr) -> u64,
    ) -> bool {
        // 1. Control invariants above the dynamic misprediction threshold.
        let ctrl_ok = s
            .invariants
            .iter()
            .filter(|t| !t.invariant.is_data())
            .all(|t| t.confidence.get() >= self.threshold.value);
        if !ctrl_ok {
            self.stats.low_confidence += 1;
            return false;
        }
        // 2. Data invariants must "match up with the current state of the
        // value predictor" — and their own confidence counters must not
        // have been driven to zero by validation failures (the reward/
        // penalize feedback that phases out misbehaving streams).
        for t in &s.invariants {
            if let Invariant::Data { pc, value, .. } = t.invariant {
                if t.confidence.get() == 0 {
                    self.stats.low_confidence += 1;
                    return false;
                }
                match vp.probe_value_nth(pc, inflight(pc) + 1) {
                    Some(p) if p.value == value => {}
                    _ => {
                        self.stats.stale_data += 1;
                        return false;
                    }
                }
            }
        }
        // 3. High compaction potential.
        if s.shrinkage() < self.config.compaction_threshold {
            return false;
        }
        // 4. Hotness.
        if hotness < self.hotness_floor {
            self.stats.cold += 1;
            return false;
        }
        true
    }

    /// Feedback after a squash caused by a stream this unit chose: raises
    /// the dynamic threshold.
    pub fn on_squash(&mut self) {
        self.threshold.on_squash();
    }

    /// Feedback after a stream retires cleanly: relaxes the dynamic
    /// threshold.
    pub fn on_good_stream(&mut self) {
        self.threshold.on_good_stream();
    }

    /// The paper's two-condition recovery policy: redirect fetch to the
    /// unoptimized partition iff the offending instruction (a) issued from
    /// the optimized partition as a valid prediction source, and (b) the
    /// misspeculation is due to an SCC-related speculative feature.
    pub fn recovery(
        &self,
        from_optimized_partition: bool,
        was_prediction_source: bool,
        cause: MispredictCause,
    ) -> RecoveryDecision {
        let scc_related =
            matches!(cause, MispredictCause::DataInvariant | MispredictCause::ControlInvariant);
        RecoveryDecision {
            force_unoptimized: from_optimized_partition && was_prediction_source && scc_related,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::NoValueProbe;
    use scc_isa::{Addr, Op, Uop};
    use scc_predictors::{LastValue, ValuePredictor};
    use scc_uopcache::{StreamUop, TaggedInvariant};

    fn stream(id: u64, shrink: u32, invariants: Vec<TaggedInvariant>) -> CompactedStream {
        CompactedStream {
            region: 0x40,
            entry: 0x40,
            uops: vec![StreamUop::plain(Uop::new(Op::Nop)); 2],
            final_live_outs: vec![],
            final_live_out_cc: None,
            invariants,
            exit: 0x60,
            orig_len: 2 + shrink,
            breakdown: Default::default(),
            stream_id: id,
        }
    }

    fn data_inv(pc: Addr, value: i64, conf: u8) -> TaggedInvariant {
        TaggedInvariant::new(Invariant::Data { pc, slot: 0, value }, conf)
    }

    fn ctrl_inv(conf: u8) -> TaggedInvariant {
        TaggedInvariant::new(Invariant::Control { pc: 0x44, taken: true, target: 0x80 }, conf)
    }

    #[test]
    fn chooses_profitable_stream() {
        let mut pu = ProfitabilityUnit::new(SccConfig::full());
        let s = stream(7, 4, vec![ctrl_inv(10)]);
        let choice = pu.choose(&[&s], |_| 5, &NoValueProbe);
        assert_eq!(choice, StreamChoice::Optimized { stream_id: 7 });
        assert_eq!(pu.stats().chose_optimized, 1);
    }

    #[test]
    fn rejects_low_control_confidence() {
        let mut pu = ProfitabilityUnit::new(SccConfig::full());
        let s = stream(7, 4, vec![ctrl_inv(2)]); // below threshold 5
        assert_eq!(pu.choose(&[&s], |_| 5, &NoValueProbe), StreamChoice::Unoptimized);
        assert_eq!(pu.stats().low_confidence, 1);
        assert_eq!(pu.stats().rejected_all, 1);
    }

    #[test]
    fn rejects_stale_data_invariants() {
        let mut pu = ProfitabilityUnit::new(SccConfig::full());
        let s = stream(7, 4, vec![data_inv(0x44, 100, 10)]);
        let mut vp = LastValue::new();
        // Predictor now says 200, stream was built on 100: stale.
        for _ in 0..5 {
            vp.train(0x44, 200);
        }
        assert_eq!(pu.choose(&[&s], |_| 5, &vp), StreamChoice::Unoptimized);
        assert_eq!(pu.stats().stale_data, 1);
        // Matching predictor state: accepted.
        let s2 = stream(8, 4, vec![data_inv(0x44, 200, 10)]);
        assert_eq!(pu.choose(&[&s2], |_| 5, &vp), StreamChoice::Optimized { stream_id: 8 });
    }

    #[test]
    fn rejects_cold_streams() {
        let mut pu = ProfitabilityUnit::new(SccConfig::full());
        let s = stream(7, 4, vec![]);
        assert_eq!(pu.choose(&[&s], |_| 0, &NoValueProbe), StreamChoice::Unoptimized);
        assert_eq!(pu.stats().cold, 1);
    }

    #[test]
    fn picks_highest_data_confidence_then_compaction() {
        let mut pu = ProfitabilityUnit::new(SccConfig::full());
        let a = stream(1, 6, vec![data_inv(0x44, 5, 8)]);
        let b = stream(2, 3, vec![data_inv(0x44, 5, 14)]);
        let mut vp = LastValue::new();
        for _ in 0..5 {
            vp.train(0x44, 5);
        }
        // b has higher data confidence despite less compaction.
        assert_eq!(pu.choose(&[&a, &b], |_| 5, &vp), StreamChoice::Optimized { stream_id: 2 });
        // Equal confidence: compaction breaks the tie.
        let c = stream(3, 6, vec![data_inv(0x44, 5, 14)]);
        assert_eq!(
            pu.choose(&[&b, &c], |_| 5, &vp),
            StreamChoice::Optimized { stream_id: 3 }
        );
    }

    #[test]
    fn dynamic_threshold_tracks_squashes() {
        let mut pu = ProfitabilityUnit::new(SccConfig::full());
        let t0 = pu.threshold();
        pu.on_squash();
        pu.on_squash();
        assert_eq!(pu.threshold(), t0 + 2);
        for _ in 0..50 {
            pu.on_good_stream();
        }
        assert_eq!(pu.threshold(), 1, "floors at min");
        for _ in 0..50 {
            pu.on_squash();
        }
        assert_eq!(pu.threshold(), 12, "caps at max");
    }

    #[test]
    fn recovery_requires_both_conditions() {
        let pu = ProfitabilityUnit::new(SccConfig::full());
        assert!(
            pu.recovery(true, true, MispredictCause::DataInvariant).force_unoptimized
        );
        assert!(
            pu.recovery(true, true, MispredictCause::ControlInvariant).force_unoptimized
        );
        assert!(!pu.recovery(false, true, MispredictCause::DataInvariant).force_unoptimized);
        assert!(!pu.recovery(true, false, MispredictCause::DataInvariant).force_unoptimized);
        assert!(!pu.recovery(true, true, MispredictCause::PlainBranch).force_unoptimized);
        assert!(!pu.recovery(true, true, MispredictCause::Other).force_unoptimized);
    }

    #[test]
    fn empty_candidates_are_not_a_rejection() {
        let mut pu = ProfitabilityUnit::new(SccConfig::full());
        assert_eq!(pu.choose(&[], |_| 5, &NoValueProbe), StreamChoice::Unoptimized);
        assert_eq!(pu.stats().rejected_all, 0);
    }
}
