//! The SCC register context table.
//!
//! "The SCC unit itself includes: (1) a register file to track
//! speculatively identified live integer and condition-code registers"
//! (paper §III). Each entry carries the speculative value plus whether a
//! *kept* micro-op in the compacted stream materializes it at execution
//! time — non-materialized values must be inlined as live-outs at
//! prediction sources and stream end.

use scc_isa::{CcFlags, Reg, NUM_INT_REGS};

/// A speculatively known register value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SccValue {
    /// The known value.
    pub value: i64,
    /// True when a kept micro-op in the stream writes this value at
    /// execution time (prediction sources, constant-propagated survivors).
    /// False when its producer was eliminated — then the value must be
    /// materialized via live-out inlining.
    pub materialized: bool,
}

/// The register context table: 16 integer entries plus condition codes.
///
/// Floating-point registers are deliberately absent — the SCC front-end
/// ALU "forgoes optimization of floating-point arithmetic" (paper §III).
#[derive(Clone, Debug, Default)]
pub struct RegContextTable {
    regs: [Option<SccValue>; NUM_INT_REGS],
    cc: Option<SccValue2>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SccValue2 {
    flags: CcFlags,
    materialized: bool,
}

impl RegContextTable {
    /// Creates an empty table.
    pub fn new() -> RegContextTable {
        RegContextTable::default()
    }

    /// The known value of `r`, if tracked. FP registers are never
    /// tracked.
    pub fn get(&self, r: Reg) -> Option<SccValue> {
        if r.is_int() {
            self.regs[r.index()]
        } else {
            None
        }
    }

    /// Records a speculative value for `r`. FP registers are ignored.
    pub fn set(&mut self, r: Reg, value: i64, materialized: bool) {
        if r.is_int() {
            self.regs[r.index()] = Some(SccValue { value, materialized });
        }
    }

    /// Marks `r` unknown (a kept micro-op with unpredictable output wrote
    /// it).
    pub fn invalidate(&mut self, r: Reg) {
        if r.is_int() {
            self.regs[r.index()] = None;
        }
    }

    /// Marks `r`'s tracked value as materialized (a live-out was emitted
    /// for it, or a kept micro-op now produces it).
    pub fn materialize(&mut self, r: Reg) {
        if r.is_int() {
            if let Some(v) = &mut self.regs[r.index()] {
                v.materialized = true;
            }
        }
    }

    /// Known condition codes, if tracked: `(flags, materialized)`.
    pub fn cc(&self) -> Option<(CcFlags, bool)> {
        self.cc.map(|c| (c.flags, c.materialized))
    }

    /// Records known condition codes.
    pub fn set_cc(&mut self, flags: CcFlags, materialized: bool) {
        self.cc = Some(SccValue2 { flags, materialized });
    }

    /// Marks the condition codes unknown.
    pub fn invalidate_cc(&mut self) {
        self.cc = None;
    }

    /// Marks the tracked condition codes as materialized.
    pub fn materialize_cc(&mut self) {
        if let Some(c) = &mut self.cc {
            c.materialized = true;
        }
    }

    /// All currently known, *non-materialized* register values — the
    /// live-out set to inline at a prediction source or stream end.
    pub fn pending_live_outs(&self) -> Vec<(Reg, i64)> {
        Reg::all_int()
            .filter_map(|r| {
                self.regs[r.index()]
                    .filter(|v| !v.materialized)
                    .map(|v| (r, v.value))
            })
            .collect()
    }

    /// The pending condition-code live-out, if the flags' last writer was
    /// eliminated.
    pub fn pending_cc_live_out(&self) -> Option<CcFlags> {
        self.cc.filter(|c| !c.materialized).map(|c| c.flags)
    }

    /// Marks every pending live-out as materialized (call after emitting
    /// them).
    pub fn materialize_all_pending(&mut self) {
        for v in self.regs.iter_mut().flatten() {
            v.materialized = true;
        }
        self.materialize_cc();
    }

    /// Number of tracked registers (tests/reports).
    pub fn tracked(&self) -> usize {
        self.regs.iter().filter(|v| v.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_invalidate() {
        let mut t = RegContextTable::new();
        let r3 = Reg::int(3);
        assert_eq!(t.get(r3), None);
        t.set(r3, 42, false);
        assert_eq!(t.get(r3), Some(SccValue { value: 42, materialized: false }));
        t.invalidate(r3);
        assert_eq!(t.get(r3), None);
    }

    #[test]
    fn fp_registers_are_never_tracked() {
        let mut t = RegContextTable::new();
        let f0 = Reg::fp(0);
        t.set(f0, 1, false);
        assert_eq!(t.get(f0), None);
        assert_eq!(t.tracked(), 0);
    }

    #[test]
    fn pending_live_outs_exclude_materialized() {
        let mut t = RegContextTable::new();
        t.set(Reg::int(1), 10, false);
        t.set(Reg::int(2), 20, true);
        t.set(Reg::int(3), 30, false);
        let mut pending = t.pending_live_outs();
        pending.sort_by_key(|(r, _)| r.index());
        assert_eq!(pending, vec![(Reg::int(1), 10), (Reg::int(3), 30)]);
        t.materialize(Reg::int(1));
        assert_eq!(t.pending_live_outs(), vec![(Reg::int(3), 30)]);
        t.materialize_all_pending();
        assert!(t.pending_live_outs().is_empty());
    }

    #[test]
    fn cc_tracking() {
        let mut t = RegContextTable::new();
        assert_eq!(t.cc(), None);
        assert_eq!(t.pending_cc_live_out(), None);
        let flags = CcFlags::from_cmp(1, 1);
        t.set_cc(flags, false);
        assert_eq!(t.cc(), Some((flags, false)));
        assert_eq!(t.pending_cc_live_out(), Some(flags));
        t.materialize_cc();
        assert_eq!(t.pending_cc_live_out(), None);
        t.invalidate_cc();
        assert_eq!(t.cc(), None);
    }

    #[test]
    fn overwrite_replaces_materialization_state() {
        let mut t = RegContextTable::new();
        let r = Reg::int(5);
        t.set(r, 1, true);
        t.set(r, 2, false);
        assert_eq!(t.get(r), Some(SccValue { value: 2, materialized: false }));
        assert_eq!(t.pending_live_outs(), vec![(r, 2)]);
    }
}
