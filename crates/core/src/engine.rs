//! The speculative code compaction engine.
//!
//! Processes micro-ops "from the unoptimized partition one at a time, and
//! in program order" (paper §IV), applying the six speculative
//! transformations in a single pass, and produces a
//! [`CompactedStream`] for the optimized partition.
//!
//! # Correctness invariant
//!
//! Every elimination obeys: *the eliminated micro-op's value is (a)
//! propagated into every subsequent in-stream reader (operand rewriting or
//! an attached live-out), and (b) materialized at every recovery point
//! younger than it (live-outs at prediction sources and stream end)*.
//! Under that invariant, executing the compacted stream with all
//! predictions holding leaves the architectural state bit-identical to the
//! unoptimized sequence, and a squash at any prediction source recovers a
//! consistent state — the property the pipeline's differential tests
//! check against the reference interpreter.

use crate::alu::SccAlu;
use crate::config::SccConfig;
use crate::probes::{BranchProbe, UopSource, ValueProbe};
use crate::regfile::RegContextTable;
use scc_isa::trace::{Transformation, UopDecision};
use scc_isa::{eval_cond, region, Addr, Op, Operand, Uop};
use scc_uopcache::{CompactedStream, ElimBreakdown, Invariant, StreamUop, TaggedInvariant};
use std::collections::VecDeque;

/// Why a compaction was abandoned with no stream produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// A self-looping (string-style) macro-instruction was encountered
    /// (paper §III: "the compaction process is considered aborted").
    SelfLoopingMacro,
    /// A store whose speculatively known address falls in the region
    /// currently being optimized — the paper's self-modifying-code
    /// detection.
    SelfModifyingCode,
}

/// The result of one compaction pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompactionOutcome {
    /// The stream met the compaction threshold and should be committed to
    /// the optimized partition.
    Committed(CompactedStream),
    /// The write buffer was discarded: not enough shrinkage.
    Discarded {
        /// Micro-ops the pass did eliminate.
        shrinkage: u32,
        /// Micro-ops scanned.
        orig_len: u32,
    },
    /// Compaction aborted with no side effects.
    Aborted(AbortReason),
}

/// A queued compaction request (region crossed the hotness threshold).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionRequest {
    /// Home region of the hot line.
    pub region: Addr,
    /// Address compaction starts from.
    pub entry: Addr,
}

/// The bounded compaction request queue ("a request queue that is
/// appropriately sized based on the fetch width … even a request queue
/// with as low as 6 entries is capable of identifying several hot code
/// regions", paper §III).
#[derive(Clone, Debug)]
pub struct RequestQueue {
    queue: VecDeque<CompactionRequest>,
    capacity: usize,
    drops: u64,
}

impl RequestQueue {
    /// Creates a queue with the given capacity.
    pub fn new(capacity: usize) -> RequestQueue {
        RequestQueue { queue: VecDeque::new(), capacity: capacity.max(1), drops: 0 }
    }

    /// Enqueues a request; duplicates of a queued region are coalesced,
    /// and requests beyond capacity are dropped (counted).
    pub fn push(&mut self, req: CompactionRequest) {
        if self.queue.iter().any(|r| r.region == req.region) {
            return;
        }
        if self.queue.len() >= self.capacity {
            self.drops += 1;
            return;
        }
        self.queue.push_back(req);
    }

    /// Dequeues the oldest request.
    pub fn pop(&mut self) -> Option<CompactionRequest> {
        self.queue.pop_front()
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests dropped because the queue was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// Aggregate engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Streams committed.
    pub committed: u64,
    /// Write buffers discarded below the compaction threshold.
    pub discarded: u64,
    /// Aborts on self-looping macro-ops.
    pub aborted_self_loop: u64,
    /// Aborts on detected self-modifying code.
    pub aborted_smc: u64,
    /// Micro-ops scanned across all passes.
    pub uops_scanned: u64,
}

/// The SCC unit: front-end ALU + register context table + single-pass
/// transformation engine.
#[derive(Clone, Debug)]
pub struct CompactionEngine {
    config: SccConfig,
    alu: SccAlu,
    next_stream_id: u64,
    stats: EngineStats,
    last_cycles: u64,
    audit: bool,
    audit_log: Vec<UopDecision>,
}

// Per-pass mutable context.
struct Pass {
    rct: RegContextTable,
    out: Vec<StreamUop>,
    invariants: Vec<TaggedInvariant>,
    breakdown: ElimBreakdown,
    data_inv: usize,
    ctrl_inv: usize,
    branches: usize,
    orig_len: u32,
    crossed_block: bool,
    home_region: Addr,
    // Per-uop decision records, collected only when audit is on.
    audit: Option<Vec<UopDecision>>,
}

enum Step {
    /// Micro-op folded away; continue in sequence.
    Eliminated,
    /// Emit and continue in sequence.
    Keep(StreamUop),
    /// Emit the (kept) branch and continue at the pivot target.
    KeepAndPivot(StreamUop, Addr),
    /// Branch folded away; continue at the pivot target.
    ElimAndPivot(Addr),
    /// Stop without consuming this micro-op (exit = its address).
    StopBefore,
    /// Emit and stop (halt).
    StopAfterKeep(StreamUop),
    /// Abandon the pass entirely.
    Abort(AbortReason),
}

impl CompactionEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: SccConfig) -> CompactionEngine {
        CompactionEngine {
            config,
            alu: SccAlu::new(),
            next_stream_id: 1,
            stats: EngineStats::default(),
            last_cycles: 0,
            audit: false,
            audit_log: Vec::new(),
        }
    }

    /// Turns per-micro-op decision recording on or off. When on, every
    /// [`compact`](Self::compact) call records one [`UopDecision`] per
    /// consumed micro-op, retrievable with
    /// [`take_decisions`](Self::take_decisions).
    pub fn set_audit(&mut self, enabled: bool) {
        self.audit = enabled;
        if !enabled {
            self.audit_log.clear();
        }
    }

    /// True when decision recording is on.
    pub fn audit_enabled(&self) -> bool {
        self.audit
    }

    /// Drains the decision records of the most recent
    /// [`compact`](Self::compact) call (empty unless audit is on).
    pub fn take_decisions(&mut self) -> Vec<UopDecision> {
        std::mem::take(&mut self.audit_log)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SccConfig {
        &self.config
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Cycles consumed by the most recent [`compact`](Self::compact) call
    /// (one micro-op per cycle, plus one commit cycle; paper §III).
    pub fn last_cycles(&self) -> u64 {
        self.last_cycles
    }

    /// Front-end ALU operation count (energy accounting).
    pub fn alu_ops(&self) -> u64 {
        self.alu.op_count()
    }

    /// Runs one single-pass compaction starting at `entry`.
    ///
    /// `source` supplies decoded micro-ops (a cache-accurate view in the
    /// pipeline; a whole [`scc_isa::Program`] in tests), `vp`/`bp` are the
    /// predictor probes.
    pub fn compact(
        &mut self,
        entry: Addr,
        source: &(impl UopSource + ?Sized),
        vp: &(impl ValueProbe + ?Sized),
        bp: &(impl BranchProbe + ?Sized),
    ) -> CompactionOutcome {
        let mut pass = Pass {
            rct: RegContextTable::new(),
            out: Vec::new(),
            invariants: Vec::new(),
            breakdown: ElimBreakdown::default(),
            data_inv: 0,
            ctrl_inv: 0,
            branches: 0,
            orig_len: 0,
            crossed_block: false,
            home_region: region(entry),
            audit: self.audit.then(Vec::new),
        };
        let mut cursor = entry;
        let mut cycles: u64 = 0;
        // Eliminations since the last surviving micro-op, stamped onto the
        // next survivor as `elided_before` for program-distance accounting.
        let mut pending_elided: u32 = 0;
        let exit: Addr;
        'walk: loop {
            // Stop condition (b): micro-op cache miss at the cursor.
            let Some(uops) = source.macro_uops(cursor) else {
                exit = cursor;
                break;
            };
            let uops: Vec<Uop> = uops.to_vec();
            let macro_next = uops[0].next_addr();
            let current_region = region(cursor);
            for uop in &uops {
                cycles += 1;
                self.stats.uops_scanned += 1;
                match self.step(uop, vp, bp, &mut pass) {
                    Step::Eliminated => {
                        pass.orig_len += 1;
                        pending_elided += 1;
                    }
                    Step::Keep(mut s) => {
                        pass.orig_len += 1;
                        s.elided_before = std::mem::take(&mut pending_elided);
                        pass.out.push(s);
                    }
                    Step::KeepAndPivot(mut s, target) => {
                        pass.orig_len += 1;
                        s.elided_before = std::mem::take(&mut pending_elided);
                        pass.out.push(s);
                        cursor = target;
                        continue 'walk;
                    }
                    Step::ElimAndPivot(target) => {
                        pass.orig_len += 1;
                        pending_elided += 1;
                        cursor = target;
                        continue 'walk;
                    }
                    Step::StopBefore => {
                        exit = uop.macro_addr;
                        break 'walk;
                    }
                    Step::StopAfterKeep(mut s) => {
                        pass.orig_len += 1;
                        s.elided_before = std::mem::take(&mut pending_elided);
                        pass.out.push(s);
                        exit = macro_next;
                        break 'walk;
                    }
                    Step::Abort(reason) => {
                        self.last_cycles = cycles;
                        match reason {
                            AbortReason::SelfLoopingMacro => self.stats.aborted_self_loop += 1,
                            AbortReason::SelfModifyingCode => self.stats.aborted_smc += 1,
                        }
                        self.audit_log = pass.audit.take().unwrap_or_default();
                        return CompactionOutcome::Aborted(reason);
                    }
                }
            }
            // Stop condition (a): sequential flow reaching the end of the
            // 32-byte code region.
            if region(macro_next) != current_region {
                exit = macro_next;
                break;
            }
            cursor = macro_next;
        }
        self.last_cycles = cycles + 1; // +1 to commit the write buffer
        self.audit_log = pass.audit.take().unwrap_or_default();
        self.finish(pass, entry, exit)
    }

    // Records the decision for one consumed micro-op (no-op unless audit
    // is on).
    fn note(&self, pass: &mut Pass, uop: &Uop, action: Transformation) {
        if let Some(log) = pass.audit.as_mut() {
            log.push(UopDecision {
                pc: uop.macro_addr,
                slot: uop.slot,
                op: uop.op.to_string(),
                action,
            });
        }
    }

    fn finish(&mut self, mut pass: Pass, entry: Addr, exit: Addr) -> CompactionOutcome {
        let shrinkage = pass.orig_len.saturating_sub(pass.out.len() as u32);
        if shrinkage < self.config.compaction_threshold || pass.orig_len == 0 {
            self.stats.discarded += 1;
            return CompactionOutcome::Discarded { shrinkage, orig_len: pass.orig_len };
        }
        // Fully folded streams still need one anchor micro-op to carry the
        // live-outs through rename.
        if pass.out.is_empty() {
            let mut anchor = Uop::new(Op::Nop);
            anchor.macro_addr = entry;
            anchor.macro_len = 1;
            pass.out.push(StreamUop::plain(anchor));
        }
        // Re-derive micro-fusion over the *surviving* micro-ops: decode-time
        // pairs whose partner was eliminated must not claim a free slot,
        // and new adjacencies created by elimination may fuse.
        let mut plain: Vec<Uop> = pass
            .out
            .iter()
            .map(|su| {
                let mut u = su.uop.clone();
                u.fused_with_next = false;
                u
            })
            .collect();
        scc_isa::fusion::fuse_pairs(&mut plain);
        for (su, u) in pass.out.iter_mut().zip(&plain) {
            su.uop.fused_with_next = u.fused_with_next;
        }
        let final_live_outs = pass.rct.pending_live_outs();
        let final_live_out_cc = pass.rct.pending_cc_live_out();
        let stream = CompactedStream {
            region: pass.home_region,
            entry,
            uops: pass.out,
            final_live_outs,
            final_live_out_cc,
            invariants: pass.invariants,
            exit,
            orig_len: pass.orig_len,
            breakdown: pass.breakdown,
            stream_id: self.next_stream_id,
        };
        self.next_stream_id += 1;
        self.stats.committed += 1;
        CompactionOutcome::Committed(stream)
    }

    /// The value of an operand, as far as the register context table
    /// knows.
    fn operand_value(&self, rct: &RegContextTable, op: Operand) -> Option<i64> {
        match op {
            Operand::None => Some(0),
            Operand::Imm(v) => Some(v),
            Operand::Reg(r) => rct.get(r).map(|v| v.value),
        }
    }

    fn count_elim(&self, pass: &mut Pass, base: fn(&mut ElimBreakdown) -> &mut u32) {
        if pass.crossed_block {
            pass.breakdown.cross_block += 1;
        } else {
            *base(&mut pass.breakdown) += 1;
        }
    }

    fn step(
        &mut self,
        uop: &Uop,
        vp: &(impl ValueProbe + ?Sized),
        bp: &(impl BranchProbe + ?Sized),
        pass: &mut Pass,
    ) -> Step {
        if uop.self_loop {
            return Step::Abort(AbortReason::SelfLoopingMacro);
        }
        // Write-buffer capacity: once the buffer holds 18 micro-ops the
        // stream is as long as a stream can get — stop before this
        // micro-op regardless of what would happen to it.
        if pass.out.len() >= self.config.write_buffer_uops {
            return Step::StopBefore;
        }
        match uop.op {
            Op::Halt => {
                self.note(pass, uop, Transformation::Kept);
                Step::StopAfterKeep(StreamUop::plain(uop.clone()))
            }
            Op::Nop => {
                if self.config.opts.const_fold {
                    self.count_elim(pass, |b| &mut b.fold);
                    self.note(pass, uop, Transformation::Fold);
                    Step::Eliminated
                } else {
                    self.keep(uop, vp, pass, false)
                }
            }
            op if op.is_branch() => self.step_branch(uop, bp, pass),
            op if scc_isa::is_foldable_int(op) => self.step_foldable(uop, vp, pass),
            Op::Mul | Op::Div | Op::Rem if self.config.opts.complex_alu => {
                self.step_complex(uop, vp, pass)
            }
            _ => self.keep(uop, vp, pass, true),
        }
    }

    /// Folding path for simple integer ALU micro-ops.
    fn step_foldable(&mut self, uop: &Uop, vp: &(impl ValueProbe + ?Sized), pass: &mut Pass) -> Step {
        let a = self.operand_value(&pass.rct, uop.src1);
        let b = self.operand_value(&pass.rct, uop.src2);
        let cc = pass.rct.cc();
        let cc_ok = !uop.op.reads_cc() || (self.config.opts.cc_tracking && cc.is_some());
        let is_move = matches!(uop.op, Op::Mov | Op::MovImm);
        let flag_enabled = if is_move {
            self.config.opts.move_elim
        } else {
            self.config.opts.const_fold
        };
        if let (Some(a), Some(b), true, true) = (a, b, cc_ok, flag_enabled) {
            let cc_in = cc.map(|(f, _)| f).unwrap_or_default();
            if let Some(result) = self.alu.eval(uop.op, a, b, cc_in, uop.cond) {
                let width_ok = result.value.is_none_or(|v| self.config.constant_fits(v));
                // A cc-writing micro-op may only be eliminated when the
                // resulting flags go into the RCT: a later kept reader
                // recovers them from there (as a cc live-out). Merely
                // invalidating the cc is not an option — "unknown" is a
                // statement about the *optimizer's* knowledge, but with
                // the producer eliminated the *runtime* flags a reader
                // would see are stale, i.e. actively wrong.
                let cc_write_ok = !uop.writes_cc
                    || (self.config.opts.cc_tracking && result.cc.is_some());
                if width_ok && cc_write_ok {
                    // Speculative constant folding / move elimination: the
                    // micro-op is dead; its effects live on in the RCT.
                    if let (Some(dst), Some(v)) = (uop.dst, result.value) {
                        pass.rct.set(dst, v, false);
                    }
                    if uop.writes_cc {
                        pass.rct.set_cc(result.cc.expect("gated on cc_write_ok"), false);
                    }
                    if is_move {
                        self.count_elim(pass, |bd| &mut bd.move_elim);
                        self.note(pass, uop, Transformation::MoveElim);
                    } else {
                        self.count_elim(pass, |bd| &mut bd.fold);
                        self.note(pass, uop, Transformation::Fold);
                    }
                    return Step::Eliminated;
                }
            }
        }
        self.keep(uop, vp, pass, false)
    }

    /// Future-work path: fold complex integer operations (`mul`/`div`/
    /// `rem`) on known inputs when the extended front-end ALU is enabled.
    fn step_complex(&mut self, uop: &Uop, vp: &(impl ValueProbe + ?Sized), pass: &mut Pass) -> Step {
        let a = self.operand_value(&pass.rct, uop.src1);
        let b = self.operand_value(&pass.rct, uop.src2);
        if let (Some(a), Some(b)) = (a, b) {
            if let Some(v) = scc_isa::eval_complex(uop.op, a, b) {
                if self.config.constant_fits(v) {
                    if let Some(dst) = uop.dst {
                        pass.rct.set(dst, v, false);
                    }
                    self.count_elim(pass, |bd| &mut bd.fold);
                    self.note(pass, uop, Transformation::Fold);
                    return Step::Eliminated;
                }
            }
        }
        self.keep(uop, vp, pass, true)
    }

    /// Branch path: folding, control-invariant identification, or stop.
    fn step_branch(&mut self, uop: &Uop, bp: &(impl BranchProbe + ?Sized), pass: &mut Pass) -> Step {
        pass.branches += 1;
        // Stop condition (c): more than `max_branches` branches in the
        // stream.
        if pass.branches > self.config.max_branches {
            return Step::StopBefore;
        }
        let fallthrough = uop.next_addr();
        match uop.op {
            Op::Jmp => {
                let target = uop.target.expect("jmp has target");
                if self.config.opts.branch_fold {
                    self.count_elim(pass, |bd| &mut bd.branch_fold);
                    self.note(pass, uop, Transformation::BranchFold);
                    Step::ElimAndPivot(target)
                } else {
                    let mut s = StreamUop::plain(uop.clone());
                    s.branch_next = Some(target);
                    self.note(pass, uop, Transformation::ControlPivot);
                    Step::KeepAndPivot(s, target)
                }
            }
            Op::Call => {
                let target = uop.target.expect("call has target");
                let link = uop.dst.expect("call has link dst");
                let ret_addr = fallthrough as i64;
                if self.config.opts.branch_fold && self.config.constant_fits(ret_addr) {
                    pass.rct.set(link, ret_addr, false);
                    self.count_elim(pass, |bd| &mut bd.branch_fold);
                    self.note(pass, uop, Transformation::BranchFold);
                    Step::ElimAndPivot(target)
                } else {
                    pass.rct.set(link, ret_addr, true);
                    let mut s = StreamUop::plain(uop.clone());
                    s.branch_next = Some(target);
                    self.note(pass, uop, Transformation::ControlPivot);
                    Step::KeepAndPivot(s, target)
                }
            }
            Op::Ret | Op::JmpInd => {
                if let Some(v) = self.operand_value(&pass.rct, uop.src1) {
                    // Speculative branch folding of an indirect transfer
                    // whose target value is speculatively known.
                    if self.config.opts.branch_fold {
                        self.count_elim(pass, |bd| &mut bd.branch_fold);
                        self.note(pass, uop, Transformation::BranchFold);
                        return Step::ElimAndPivot(v as Addr);
                    }
                    let mut s = self.rewrite_operands(uop, pass);
                    // The pivot target is *speculatively* known (the RCT
                    // value may descend from a data invariant), so this
                    // branch can mispredict at runtime and originate a
                    // mid-stream squash: it must carry pending live-outs.
                    self.attach_pending_live_outs(&mut s, pass);
                    s.branch_next = Some(v as Addr);
                    self.note(pass, uop, Transformation::ControlPivot);
                    return Step::KeepAndPivot(s, v as Addr);
                }
                self.control_invariant(uop, bp, pass)
            }
            Op::BrCc => {
                if self.config.opts.cc_tracking {
                    if let Some((flags, _)) = pass.rct.cc() {
                        let taken = eval_cond(uop.cond.expect("brcc cond"), flags);
                        let dest =
                            if taken { uop.target.expect("brcc target") } else { fallthrough };
                        if self.config.opts.branch_fold {
                            // Speculative branch folding (paper Fig. 3(b)).
                            self.count_elim(pass, |bd| &mut bd.branch_fold);
                            self.note(pass, uop, Transformation::BranchFold);
                            return Step::ElimAndPivot(dest);
                        }
                        let mut s = self.rewrite_operands(uop, pass);
                        // Speculatively evaluated condition — a runtime
                        // mispredict squashes mid-stream (see JmpInd).
                        self.attach_pending_live_outs(&mut s, pass);
                        s.branch_next = Some(dest);
                        self.note(pass, uop, Transformation::ControlPivot);
                        return Step::KeepAndPivot(s, dest);
                    }
                }
                self.control_invariant(uop, bp, pass)
            }
            Op::CmpBr => {
                let a = self.operand_value(&pass.rct, uop.src1);
                let b = self.operand_value(&pass.rct, uop.src2);
                if let (Some(a), Some(b)) = (a, b) {
                    let taken = eval_cond(
                        uop.cond.expect("cmpbr cond"),
                        scc_isa::CcFlags::from_cmp(a, b),
                    );
                    let dest = if taken { uop.target.expect("cmpbr target") } else { fallthrough };
                    if self.config.opts.branch_fold {
                        self.count_elim(pass, |bd| &mut bd.branch_fold);
                        self.note(pass, uop, Transformation::BranchFold);
                        return Step::ElimAndPivot(dest);
                    }
                    let mut s = self.rewrite_operands(uop, pass);
                    // Speculatively evaluated condition — a runtime
                    // mispredict squashes mid-stream (see JmpInd).
                    self.attach_pending_live_outs(&mut s, pass);
                    s.branch_next = Some(dest);
                    self.note(pass, uop, Transformation::ControlPivot);
                    return Step::KeepAndPivot(s, dest);
                }
                self.control_invariant(uop, bp, pass)
            }
            _ => unreachable!("step_branch on non-branch"),
        }
    }

    /// Speculative control-invariant identification: keep the branch as a
    /// prediction source and pivot to the predicted target.
    fn control_invariant(
        &mut self,
        uop: &Uop,
        bp: &(impl BranchProbe + ?Sized),
        pass: &mut Pass,
    ) -> Step {
        if !self.config.opts.control_invariants
            || pass.ctrl_inv >= self.config.max_control_invariants
        {
            return Step::StopBefore;
        }
        let pred = bp.probe_branch(uop);
        let (Some(target), true) =
            (pred.target, pred.confidence >= self.config.confidence_threshold)
        else {
            return Step::StopBefore;
        };
        let mut s = self.rewrite_operands(uop, pass);
        // A prediction source carries all pending live-outs (paper §IV:
        // they must be visible at rename even if this source mispredicts).
        self.attach_pending_live_outs(&mut s, pass);
        s.pred_source = Some(pass.invariants.len());
        s.branch_next = Some(target);
        pass.invariants.push(TaggedInvariant::new(
            Invariant::Control { pc: uop.macro_addr, taken: pred.taken, target },
            pred.confidence,
        ));
        pass.ctrl_inv += 1;
        pass.crossed_block = true;
        self.note(
            pass,
            uop,
            Transformation::ControlInvariantSource { confidence: pred.confidence },
        );
        Step::KeepAndPivot(s, target)
    }

    /// Common path for micro-ops that stay in the stream.
    ///
    /// `try_data_invariant` gates value-predictor probing (folding
    /// candidates that merely had unknown inputs also come through here
    /// and are allowed to probe).
    fn keep(
        &mut self,
        uop: &Uop,
        vp: &(impl ValueProbe + ?Sized),
        pass: &mut Pass,
        _is_complex: bool,
    ) -> Step {
        // Write-buffer capacity: stop before overflowing (the stream ends
        // and fetch resumes at this micro-op from another source).
        if pass.out.len() >= self.config.write_buffer_uops {
            return Step::StopBefore;
        }
        let mut s = self.rewrite_operands(uop, pass);
        // Self-modifying-code detection: a store whose speculatively known
        // address lands in the region being optimized aborts the pass.
        if uop.op == Op::Store {
            if let Some(base) = self.operand_value(&pass.rct, s.uop.src1) {
                let addr = (base.wrapping_add(s.uop.offset)) as Addr;
                if region(addr) == pass.home_region {
                    return Step::Abort(AbortReason::SelfModifyingCode);
                }
            }
        }
        // Speculative data-invariant identification: probe the value
        // predictor for this micro-op's outcome (paper Fig. 3(a)).
        let wants_value = uop
            .dst
            .map(|d| d.is_int() && !uop.op.is_fp() && uop.op != Op::Store)
            .unwrap_or(false);
        if wants_value
            && self.config.opts.data_invariants
            && pass.data_inv < self.config.max_data_invariants
        {
            if let Some(pred) = vp.probe_value(uop.macro_addr) {
                // Only *recurring* predictions qualify as invariants; a
                // confidently striding value (a loop counter) is the
                // opposite of an invariant and would go stale before the
                // stream could ever be streamed.
                if pred.stable && pred.confidence >= self.config.confidence_threshold {
                    self.attach_pending_live_outs(&mut s, pass);
                    s.pred_source = Some(pass.invariants.len());
                    pass.invariants.push(TaggedInvariant::new(
                        Invariant::Data {
                            pc: uop.macro_addr,
                            slot: uop.slot,
                            value: pred.value,
                        },
                        pred.confidence,
                    ));
                    pass.data_inv += 1;
                    // The source itself writes the (predicted) value at
                    // execute: materialized.
                    pass.rct.set(uop.dst.expect("checked"), pred.value, true);
                    if uop.writes_cc {
                        pass.rct.invalidate_cc();
                    }
                    self.note(
                        pass,
                        uop,
                        Transformation::DataInvariantSource { confidence: pred.confidence },
                    );
                    return Step::Keep(s);
                }
            }
        }
        // A kept integer load is a potential mid-stream squash origin
        // even without a prediction source: classic VP forwarding (a
        // baseline feature, orthogonal to SCC) validates forwarded loads
        // at execute and squashes younger micro-ops on a mismatch,
        // resuming *past* everything folded before the load. Like a
        // prediction source, it must therefore carry every pending
        // live-out so the folded producers' effects survive the flush.
        if uop.op == Op::Load && uop.dst.is_some_and(|d| d.is_int()) {
            self.attach_pending_live_outs(&mut s, pass);
        }
        // Unpredicted kept micro-op: its outputs become unknown.
        if let Some(dst) = uop.dst {
            pass.rct.invalidate(dst);
        }
        if uop.writes_cc {
            pass.rct.invalidate_cc();
        }
        if pass.audit.is_some() {
            let rewritten = s.uop.src1 != uop.src1 || s.uop.src2 != uop.src2;
            let action =
                if rewritten { Transformation::Propagate } else { Transformation::Kept };
            self.note(pass, uop, action);
        }
        Step::Keep(s)
    }

    /// Speculative constant propagation plus the live-out fallback:
    /// rewrites known register operands to immediates, or — when
    /// propagation is disabled or the constant is too wide — attaches a
    /// live-out so the reader still sees the right value at rename.
    fn rewrite_operands(&mut self, uop: &Uop, pass: &mut Pass) -> StreamUop {
        let mut s = StreamUop::plain(uop.clone());
        let mut propagated = false;
        for operand in [&mut s.uop.src1, &mut s.uop.src2] {
            let Operand::Reg(r) = *operand else { continue };
            let Some(v) = pass.rct.get(r) else { continue };
            if self.config.opts.const_prop && self.config.constant_fits(v.value) {
                *operand = Operand::Imm(v.value);
                propagated = true;
            } else if !v.materialized {
                // The reader still names the register: materialize the
                // eliminated producer's value via rename-time inlining.
                s.live_outs.push((r, v.value));
                pass.rct.materialize(r);
            }
        }
        if propagated {
            pass.breakdown.propagated += 1;
        }
        if uop.op.reads_cc() {
            if let Some((flags, false)) = pass.rct.cc() {
                s.live_out_cc = Some(flags);
                pass.rct.materialize_cc();
            }
        }
        s
    }

    /// Attaches every pending live-out to a prediction source.
    fn attach_pending_live_outs(&mut self, s: &mut StreamUop, pass: &mut Pass) {
        for (r, v) in pass.rct.pending_live_outs() {
            if !s.live_outs.iter().any(|(lr, _)| *lr == r) {
                s.live_outs.push((r, v));
            }
        }
        if s.live_out_cc.is_none() {
            s.live_out_cc = pass.rct.pending_cc_live_out();
        }
        pass.rct.materialize_all_pending();
    }
}
