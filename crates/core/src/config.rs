//! SCC configuration: which speculative optimizations run, and the
//! thresholds governing speculation aggressiveness.

/// Which speculative transformations are enabled.
///
/// The appendix's six experiment levels are cumulative subsets of these
/// flags; [`OptFlags::full`] corresponds to "full Speculative Code
/// Compaction" and [`OptFlags::none`] to the (partitioned) baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct OptFlags {
    /// Eliminate register-immediate and register-register moves whose
    /// value is known ("simple move elimination", level 3).
    pub move_elim: bool,
    /// Fold simple integer ALU micro-ops whose inputs are all known
    /// (level 4).
    pub const_fold: bool,
    /// Rewrite known register operands into immediate form (level 4).
    pub const_prop: bool,
    /// Identify speculative data invariants by probing the value
    /// predictor (`predictingArithmetic=1`; level 4).
    pub data_invariants: bool,
    /// Fold branches whose direction and target are deducible from the
    /// register context table (level 5).
    pub branch_fold: bool,
    /// Keep confidently predicted branches as prediction sources and
    /// compact across basic blocks (`usingControlTracking=1`; level 6).
    pub control_invariants: bool,
    /// Track condition codes in the register context table
    /// (`usingCCTracking=1`; level 6).
    pub cc_tracking: bool,
    /// Future-work extension (paper §III: complex integer operations
    /// "would be an interesting area for future work"): let the SCC ALU
    /// also fold `mul`/`div`/`rem` with known inputs. Off in every
    /// paper-faithful configuration; the `ablations` bench measures it.
    pub complex_alu: bool,
}

impl OptFlags {
    /// No transformations (partitioned baseline).
    pub fn none() -> OptFlags {
        OptFlags::default()
    }

    /// Level 3: simple move elimination only.
    pub fn move_elim_only() -> OptFlags {
        OptFlags { move_elim: true, ..OptFlags::default() }
    }

    /// Level 4: moves + constant propagation, constant folding, and
    /// value-predicted data invariants.
    pub fn fold_prop() -> OptFlags {
        OptFlags {
            move_elim: true,
            const_fold: true,
            const_prop: true,
            data_invariants: true,
            ..OptFlags::default()
        }
    }

    /// Level 5: level 4 plus branch folding.
    pub fn branch_fold() -> OptFlags {
        OptFlags { branch_fold: true, ..OptFlags::fold_prop() }
    }

    /// Level 6: full SCC — everything, including control invariants and
    /// condition-code tracking. (The future-work `complex_alu` extension
    /// stays off: the paper's front-end ALU is latency/power-restricted
    /// to simple operations.)
    pub fn full() -> OptFlags {
        OptFlags { control_invariants: true, cc_tracking: true, ..OptFlags::branch_fold() }
    }

    /// The future-work configuration: full SCC plus complex-integer
    /// folding in the front-end ALU.
    pub fn future_work() -> OptFlags {
        OptFlags { complex_alu: true, ..OptFlags::full() }
    }

    /// True if any transformation is enabled (i.e. the SCC unit exists).
    pub fn any(&self) -> bool {
        self.move_elim
            || self.const_fold
            || self.const_prop
            || self.data_invariants
            || self.branch_fold
            || self.control_invariants
    }
}

/// Full SCC unit configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SccConfig {
    /// Enabled transformations.
    pub opts: OptFlags,
    /// Minimum predictor confidence (0–15) to adopt an invariant. The
    /// paper runs SCC at 5 — far more aggressive than the 15 used for
    /// plain value forwarding (`predictionConfidenceThreshold`).
    pub confidence_threshold: u8,
    /// Maximum speculative data invariants per stream (paper: "no more
    /// than four data invariants").
    pub max_data_invariants: usize,
    /// Maximum speculative control invariants per stream (paper: "two
    /// control invariants").
    pub max_control_invariants: usize,
    /// Stop after this many branches are encountered in a region (paper
    /// stop condition (c): "more than two branches").
    pub max_branches: usize,
    /// Write-buffer capacity in micro-ops (paper: 18, sized for Ice
    /// Lake).
    pub write_buffer_uops: usize,
    /// Minimum shrinkage (eliminated micro-ops) for the stream to be
    /// committed; below it the write buffer is discarded.
    pub compaction_threshold: u32,
    /// Maximum width in bits of constants that can be propagated/inlined
    /// (Figure 11 sweeps 8/16/32/unrestricted; `None` = unrestricted).
    pub max_constant_width: Option<u32>,
    /// Compaction request queue depth (paper: "as low as 6 entries"
    /// suffices).
    pub request_queue_len: usize,
}

impl SccConfig {
    /// The paper's full-SCC configuration.
    pub fn full() -> SccConfig {
        SccConfig {
            opts: OptFlags::full(),
            confidence_threshold: 5,
            max_data_invariants: 4,
            max_control_invariants: 2,
            max_branches: 2,
            write_buffer_uops: 18,
            compaction_threshold: 1,
            max_constant_width: None,
            request_queue_len: 6,
        }
    }

    /// Full SCC with a different optimization subset.
    pub fn with_opts(opts: OptFlags) -> SccConfig {
        SccConfig { opts, ..SccConfig::full() }
    }

    /// True if `value` is inlinable/propagatable under the constant-width
    /// restriction (signed range check, paper §VII-C).
    pub fn constant_fits(&self, value: i64) -> bool {
        match self.max_constant_width {
            None => true,
            Some(bits) if bits >= 64 => true,
            Some(bits) => {
                let min = -(1i64 << (bits - 1));
                let max = (1i64 << (bits - 1)) - 1;
                (min..=max).contains(&value)
            }
        }
    }
}

impl Default for SccConfig {
    fn default() -> SccConfig {
        SccConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        assert!(!OptFlags::none().any());
        let l3 = OptFlags::move_elim_only();
        assert!(l3.move_elim && !l3.const_fold);
        let l4 = OptFlags::fold_prop();
        assert!(l4.move_elim && l4.const_fold && l4.const_prop && l4.data_invariants);
        assert!(!l4.branch_fold);
        let l5 = OptFlags::branch_fold();
        assert!(l5.branch_fold && !l5.control_invariants);
        let l6 = OptFlags::full();
        assert!(l6.control_invariants && l6.cc_tracking && l6.any());
    }

    #[test]
    fn paper_defaults() {
        let c = SccConfig::full();
        assert_eq!(c.confidence_threshold, 5);
        assert_eq!(c.max_data_invariants, 4);
        assert_eq!(c.max_control_invariants, 2);
        assert_eq!(c.max_branches, 2);
        assert_eq!(c.write_buffer_uops, 18);
        assert_eq!(c.request_queue_len, 6);
    }

    #[test]
    fn constant_width_checks() {
        let mut c = SccConfig::full();
        assert!(c.constant_fits(i64::MAX));
        c.max_constant_width = Some(8);
        assert!(c.constant_fits(127));
        assert!(c.constant_fits(-128));
        assert!(!c.constant_fits(128));
        assert!(!c.constant_fits(-129));
        c.max_constant_width = Some(16);
        assert!(c.constant_fits(32767));
        assert!(!c.constant_fits(40000));
        c.max_constant_width = Some(64);
        assert!(c.constant_fits(i64::MIN));
    }
}
