//! Per-benchmark characteristic checks: each stand-in must actually
//! exhibit the dynamic property DESIGN.md §4 claims justifies the
//! substitution.

use scc_isa::{Machine, Op};
use scc_workloads::{all_workloads, workload, Scale};

fn run(name: &str) -> (Machine<'static>, u64) {
    // Leak the program so the machine can borrow it for the test's life.
    let w = Box::leak(Box::new(
        workload(name, Scale::test()).unwrap_or_else(|| panic!("unknown {name}")),
    ));
    let mut m = Machine::new(&w.program);
    let r = m.run(100_000_000).expect("runs");
    assert!(r.halted, "{name} halts");
    (m, r.uops)
}

#[test]
fn memory_bound_benchmarks_are_load_heavy_with_big_footprints() {
    for name in ["mcf", "canneal", "xz"] {
        let (m, uops) = run(name);
        let mem = m.op_count_of(Op::Load) + m.op_count_of(Op::Store);
        assert!(
            mem * 6 > uops,
            "{name}: memory ops should be >16% of the stream ({mem}/{uops})"
        );
    }
}

#[test]
fn string_op_benchmark_exercises_microcoded_loops() {
    let (m, _) = run("xz");
    assert!(m.op_count_of(Op::Store) > 0, "xz's rep-store kernel runs");
}

#[test]
fn mov_heavy_benchmarks_are_mov_heavy() {
    for name in ["exchange", "vips"] {
        let (m, uops) = run(name);
        let movs = m.op_count_of(Op::Mov) + m.op_count_of(Op::MovImm);
        assert!(
            movs * 6 > uops,
            "{name}: moves should be >16% of the stream ({movs}/{uops})"
        );
    }
}

#[test]
fn high_ilp_benchmarks_avoid_serial_multiplies() {
    for name in ["deepsjeng", "streamcluster"] {
        let (m, uops) = run(name);
        let muldiv = m.op_count_of(Op::Mul) + m.op_count_of(Op::Div);
        assert!(
            muldiv * 10 < uops,
            "{name}: mul/div should be rare ({muldiv}/{uops})"
        );
    }
}

#[test]
fn low_ilp_benchmarks_are_multiply_chained() {
    for name in ["leela", "swaptions"] {
        let (m, uops) = run(name);
        let mul = m.op_count_of(Op::Mul);
        assert!(
            mul * 20 > uops,
            "{name}: serial multiplies should be >5% ({mul}/{uops})"
        );
    }
}

#[test]
fn branchy_benchmarks_branch_often() {
    for name in ["gcc", "perlbench", "deepsjeng"] {
        let (m, uops) = run(name);
        let branches = m.op_count_of(Op::CmpBr) + m.op_count_of(Op::BrCc);
        assert!(
            branches * 12 > uops,
            "{name}: conditional branches should be >8% ({branches}/{uops})"
        );
    }
}

#[test]
fn dynamic_lengths_are_comparable_across_the_suite() {
    // SimPoints are equal-length; our stand-ins should at least be the
    // same order of magnitude so suite means aren't dominated by one
    // benchmark's length.
    let lens: Vec<(String, u64)> = all_workloads(Scale::test())
        .iter()
        .map(|w| {
            let mut m = Machine::new(&w.program);
            let r = m.run(100_000_000).expect("runs");
            (w.name.to_string(), r.uops)
        })
        .collect();
    let min = lens.iter().map(|(_, n)| *n).min().unwrap();
    let max = lens.iter().map(|(_, n)| *n).max().unwrap();
    assert!(
        max < min * 40,
        "dynamic length spread too wide: {lens:?}"
    );
}
