//! Synthetic SPEC CPU2017 / PARSEC 3.0 stand-in workloads.
//!
//! The paper evaluates on 11 SPEC CPU2017 and 8 PARSEC 3.0 benchmarks
//! (100M-instruction SimPoints, LLVM `-O3`). Neither the copyrighted
//! benchmark sources nor an x86 toolchain is available here, so each
//! benchmark is substituted by a generated micro-op program whose
//! *SCC-relevant dynamic characteristics* match what the paper reports
//! for it: integer vs FP mix, value predictability of hot loads, branch
//! predictability, memory-boundedness, ILP, and code footprint (see
//! DESIGN.md §4). The kernels in [`kernels`] are the building blocks;
//! [`all_workloads`] returns the full suite.
//!
//! Alongside the 19 synthetic stand-ins, the suite carries six **guest
//! workloads** ([`Suite::Guest`]): small real programs written in the
//! `scc-lang` guest language (`crates/lang/guest/*.sccl`), compiled at
//! `O2` by the `scc-lang` frontend. They exercise genuinely compiled
//! control flow and array traffic rather than characteristic-tuned
//! kernels, and flow through figures, ablations, and serving with no
//! special-casing.
//!
//! # Example
//!
//! ```
//! use scc_workloads::{all_workloads, Scale};
//!
//! let suite = all_workloads(Scale::test());
//! assert_eq!(suite.len(), 25);
//! let xalan = suite.iter().find(|w| w.name == "xalancbmk").unwrap();
//! assert!(xalan.program.static_uop_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;

use scc_isa::{Program, ProgramBuilder};
use std::borrow::Cow;

/// Which benchmark suite a workload stands in for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2017 integer.
    SpecInt,
    /// SPEC CPU2017 floating point.
    SpecFp,
    /// PARSEC 3.0.
    Parsec,
    /// Guest programs compiled by `scc-lang` — real program shapes
    /// (loops, branches, array traffic) rather than characteristic-tuned
    /// synthetic kernels.
    Guest,
}

impl Suite {
    /// True for either SPEC suite.
    pub fn is_spec(self) -> bool {
        matches!(self, Suite::SpecInt | Suite::SpecFp)
    }
}

/// Dynamic-length scaling for the suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Base hot-loop iteration count; kernels run small multiples of it.
    pub iters: i64,
}

impl Scale {
    /// Tiny runs for unit tests (~10–50k dynamic micro-ops).
    pub fn test() -> Scale {
        Scale { iters: 300 }
    }

    /// Bench-harness runs (~0.5–2M dynamic micro-ops), big enough for
    /// hotness thresholds, compaction, and steady-state streaming.
    pub fn paper() -> Scale {
        Scale { iters: 20_000 }
    }

    /// Custom scale.
    pub fn custom(iters: i64) -> Scale {
        Scale { iters: iters.max(1) }
    }
}

/// A named benchmark stand-in.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (matches the paper's figures). Registry workloads
    /// use borrowed static names; dynamically ingested programs (e.g.
    /// `trace:<digest>` jobs from `scc-serve`) use owned ones.
    pub name: Cow<'static, str>,
    /// Source suite.
    pub suite: Suite,
    /// The generated program.
    pub program: Program,
    /// What this stand-in models and why.
    pub description: &'static str,
    /// The scale the program was generated at. Together with `name` this
    /// identifies the program exactly (generation is deterministic), so
    /// result caches can key on `(name, scale)` instead of hashing the
    /// whole program.
    pub scale: Scale,
}

const DATA: u64 = 0x10_0000;

fn finish(mut b: ProgramBuilder) -> Program {
    b.halt();
    b.build()
}

macro_rules! workload_fn {
    ($(#[$doc:meta])* $name:ident, $label:literal, $suite:expr, $desc:literal, |$b:ident, $s:ident| $body:block) => {
        $(#[$doc])*
        pub fn $name($s: Scale) -> Workload {
            let mut $b = ProgramBuilder::new(0x1000);
            $body
            Workload {
                name: Cow::Borrowed($label),
                suite: $suite,
                program: finish($b),
                description: $desc,
                scale: $s,
            }
        }
    };
}

workload_fn!(
    /// perlbench: interpreter loops over hot, rarely changing tables —
    /// high data and control predictability, one of SCC's best SPEC wins.
    perlbench, "perlbench", Suite::SpecInt,
    "interpreter dispatch: invariant tables + predictable branches",
    |b, s| {
        kernels::invariant_int(&mut b, DATA, 3 * s.iters);
        kernels::branchy(&mut b, DATA + 0x1000, 2 * s.iters, true, 11);
        kernels::mov_heavy(&mut b, s.iters);
    }
);

workload_fn!(
    /// gcc: large mixed code; some invariant structure but noisy values —
    /// EVES's conservative confidence beats H3VP here (paper Fig. 9).
    gcc, "gcc", Suite::SpecInt,
    "mixed compiler passes: some invariants, noisy values, big footprint",
    |b, s| {
        kernels::invariant_int(&mut b, DATA, s.iters);
        kernels::noisy_values(&mut b, DATA + 0x1000, 2 * s.iters, 23);
        kernels::code_footprint(&mut b, 24, s.iters / 8);
        kernels::dependency_chain(&mut b, 2 * s.iters);
        kernels::branchy(&mut b, DATA + 0x2000, s.iters, false, 29);
    }
);

workload_fn!(
    /// mcf: pointer-chasing over a large working set — high compaction
    /// potential on the loop bookkeeping but memory-bound, so no speedup.
    mcf, "mcf", Suite::SpecInt,
    "network simplex: pointer chase past L2, latency-bound",
    |b, s| {
        kernels::pointer_chase(&mut b, DATA, 96 * 1024, 4 * s.iters, 37);
        kernels::invariant_int(&mut b, DATA + 0x400_0000, s.iters);
    }
);

workload_fn!(
    /// xalancbmk: XML transformation over hot, read-mostly structures with
    /// oscillating access results — big SCC win; H3VP beats EVES.
    xalancbmk, "xalancbmk", Suite::SpecInt,
    "XSLT: invariant + period-2 oscillating loads, very predictable",
    |b, s| {
        kernels::invariant_int(&mut b, DATA, 3 * s.iters);
        kernels::oscillating_values(&mut b, DATA + 0x1000, 3 * s.iters);
        kernels::branchy(&mut b, DATA + 0x2000, s.iters, true, 41);
    }
);

workload_fn!(
    /// deepsjeng: chess search — high ILP, so SCC's compaction is limited
    /// by the finite scheduler, not fetch.
    deepsjeng, "deepsjeng", Suite::SpecInt,
    "game tree search: wide independent integer work, scheduler-bound",
    |b, s| {
        kernels::parallel_int(&mut b, 4 * s.iters);
        kernels::invariant_int(&mut b, DATA, s.iters);
        kernels::branchy(&mut b, DATA + 0x1000, s.iters, false, 43);
    }
);

workload_fn!(
    /// leela: Go engine — long serial dependency chains, ROB-full stalls,
    /// no speedup despite eliminable micro-ops.
    leela, "leela", Suite::SpecInt,
    "MCTS playouts: serial multiply chains, low ILP",
    |b, s| {
        kernels::dependency_chain(&mut b, 4 * s.iters);
        kernels::invariant_int(&mut b, DATA, s.iters);
    }
);

workload_fn!(
    /// exchange2: generated Fortran full of register shuffling — big
    /// speedup from speculative move elimination alone.
    exchange, "exchange", Suite::SpecInt,
    "puzzle solver: move-heavy with highly predictable branches",
    |b, s| {
        kernels::mov_heavy(&mut b, 3 * s.iters);
        kernels::branchy(&mut b, DATA, 3 * s.iters, true, 47);
        kernels::parallel_int(&mut b, s.iters);
        kernels::dependency_chain(&mut b, s.iters);
    }
);

workload_fn!(
    /// xz: compression — memory-bound with modest predictability; energy
    /// savings without speedup.
    xz, "xz", Suite::SpecInt,
    "LZMA match finder: pointer chase + noisy values",
    |b, s| {
        kernels::pointer_chase(&mut b, DATA, 64 * 1024, 3 * s.iters, 53);
        kernels::noisy_values(&mut b, DATA + 0x400_0000, s.iters, 59);
        kernels::string_ops(&mut b, DATA + 0x500_0000, s.iters / 4);
    }
);

workload_fn!(
    /// lbm: lattice Boltzmann — almost pure FP streaming; SCC cannot
    /// touch it (paper: one of the three near-zero benchmarks).
    lbm, "lbm", Suite::SpecFp,
    "LBM stencil: ~90% FP/SIMD work",
    |b, s| {
        kernels::fp_stencil(&mut b, DATA, 6 * s.iters);
    }
);

workload_fn!(
    /// wrf: weather model — FP-dominated with a sliver of integer
    /// indexing.
    wrf, "wrf", Suite::SpecFp,
    "NWP physics: FP stencils + light integer indexing",
    |b, s| {
        kernels::fp_stencil(&mut b, DATA, 5 * s.iters);
        kernels::invariant_int(&mut b, DATA + 0x1000, s.iters / 2);
    }
);

workload_fn!(
    /// cactuBSSN: numerical relativity — FP-heavy, modest integer loop
    /// scaffolding.
    cactubssn, "cactuBSSN", Suite::SpecFp,
    "BSSN solver: FP kernels with integer loop nests",
    |b, s| {
        kernels::fp_stencil(&mut b, DATA, 4 * s.iters);
        kernels::parallel_int(&mut b, s.iters);
    }
);

// --- PARSEC ---

workload_fn!(
    /// blackscholes: option pricing — FP math guarded by simple integer
    /// control; small but nonzero SCC benefit.
    blackscholes, "blackscholes", Suite::Parsec,
    "option pricing: FP math with integer parameter checks",
    |b, s| {
        kernels::fp_stencil(&mut b, DATA, 3 * s.iters);
        kernels::invariant_int(&mut b, DATA + 0x1000, s.iters);
    }
);

workload_fn!(
    /// bodytrack: computer vision — mixed integer/FP with moderate
    /// predictability.
    bodytrack, "bodytrack", Suite::Parsec,
    "particle filter: mixed int/FP, moderately predictable",
    |b, s| {
        kernels::invariant_int(&mut b, DATA, s.iters);
        kernels::fp_stencil(&mut b, DATA + 0x1000, s.iters);
        kernels::branchy(&mut b, DATA + 0x2000, s.iters, true, 61);
        kernels::strided_values(&mut b, DATA + 0x3000, s.iters);
    }
);

workload_fn!(
    /// canneal: cache-hostile annealing — random pointer chasing.
    canneal, "canneal", Suite::Parsec,
    "simulated annealing: random pointer chase, memory-bound",
    |b, s| {
        kernels::pointer_chase(&mut b, DATA, 128 * 1024, 3 * s.iters, 67);
        kernels::noisy_values(&mut b, DATA + 0x400_0000, s.iters, 71);
    }
);

workload_fn!(
    /// freqmine: frequent itemset mining over hot FP-tree nodes that are
    /// read millions of times — the paper's biggest PARSEC winner.
    freqmine, "freqmine", Suite::Parsec,
    "FP-growth: extremely invariant hot structures, foldable chains",
    |b, s| {
        kernels::invariant_int(&mut b, DATA, 4 * s.iters);
        kernels::invariant_int(&mut b, DATA + 0x1000, 3 * s.iters);
        kernels::branchy(&mut b, DATA + 0x2000, s.iters, true, 73);
    }
);

workload_fn!(
    /// streamcluster: online clustering — wide independent distance
    /// computations; high ILP bounds the benefit.
    streamcluster, "streamcluster", Suite::Parsec,
    "k-median: wide independent int work + strided loads",
    |b, s| {
        kernels::parallel_int(&mut b, 3 * s.iters);
        kernels::strided_values(&mut b, DATA, 2 * s.iters);
    }
);

workload_fn!(
    /// swaptions: HJM Monte Carlo — serial FP/integer recurrences; low
    /// ILP, no speedup.
    swaptions, "swaptions", Suite::Parsec,
    "Monte Carlo swaption pricing: serial recurrences, low ILP",
    |b, s| {
        kernels::dependency_chain(&mut b, 3 * s.iters);
        kernels::fp_stencil(&mut b, DATA, s.iters);
    }
);

workload_fn!(
    /// vips: image pipeline — move-heavy generated operators; benefits
    /// from speculative move elimination (paper §VII-A).
    vips, "vips", Suite::Parsec,
    "image operators: move-heavy with predictable control",
    |b, s| {
        kernels::mov_heavy(&mut b, 2 * s.iters);
        kernels::strided_values(&mut b, DATA, 2 * s.iters);
        kernels::branchy(&mut b, DATA + 0x1000, s.iters, true, 79);
        kernels::fp_stencil(&mut b, DATA + 0x2000, s.iters);
    }
);

workload_fn!(
    /// x264: video encoding — SIMD-dominated with a code footprint that
    /// pressures the micro-op cache (the paper's hit-rate-doubling case).
    x264, "x264", Suite::Parsec,
    "video encode: SIMD-heavy, large code footprint (uop-cache pressure)",
    |b, s| {
        kernels::fp_stencil(&mut b, DATA, 3 * s.iters);
        // 64 two-way regions of integer glue between SIMD phases: a large
        // but cacheable code footprint.
        kernels::code_footprint(&mut b, 64, (s.iters / 8).max(8));
        kernels::fp_stencil(&mut b, DATA + 0x1000, 2 * s.iters);
    }
);

// --- Guest (scc-lang) ---

/// Builds the guest workload for one `scc_lang::corpus` entry: the
/// committed source compiled at `O2`, with the outer-loop `ITERS`
/// derived from the workload scale so guest programs land in the same
/// dynamic-length band as the synthetic suite.
fn guest(registry_name: &'static str, corpus_name: &str, scale: Scale) -> Workload {
    let g = scc_lang::corpus::find(corpus_name)
        .unwrap_or_else(|| panic!("no corpus program `{corpus_name}`"));
    let compiled = g
        .compile(scc_lang::Opt::O2, g.iters_at(scale.iters))
        .unwrap_or_else(|e| panic!("guest `{corpus_name}` failed to compile: {e}"));
    Workload {
        name: Cow::Borrowed(registry_name),
        suite: Suite::Guest,
        program: compiled.program,
        description: g.description,
        scale,
    }
}

/// Guest insertion sort (`crates/lang/guest/sort.sccl`).
pub fn g_sort(s: Scale) -> Workload {
    guest("g_sort", "sort", s)
}

/// Guest sieve of Eratosthenes (`crates/lang/guest/sieve.sccl`).
pub fn g_sieve(s: Scale) -> Workload {
    guest("g_sieve", "sieve", s)
}

/// Guest 4×4 integer matrix multiply (`crates/lang/guest/matmul.sccl`).
pub fn g_matmul(s: Scale) -> Workload {
    guest("g_matmul", "matmul", s)
}

/// Guest substring search (`crates/lang/guest/search.sccl`).
pub fn g_search(s: Scale) -> Workload {
    guest("g_search", "search", s)
}

/// Guest bytecode-interpreter loop (`crates/lang/guest/interp.sccl`).
pub fn g_interp(s: Scale) -> Workload {
    guest("g_interp", "interp", s)
}

/// Guest Adler-style checksum (`crates/lang/guest/cksum.sccl`).
pub fn g_cksum(s: Scale) -> Workload {
    guest("g_cksum", "cksum", s)
}

/// Name → constructor registry, in the paper's figure order. Program
/// generation is deferred to the constructor, so name lookups and
/// existence checks cost nothing — callers that validate request names
/// on a hot path (e.g. the serving admission check) must not pay for
/// a full suite of program builds per probe.
type WorkloadEntry = (&'static str, fn(Scale) -> Workload);

const REGISTRY: &[WorkloadEntry] = &[
    ("perlbench", perlbench),
    ("gcc", gcc),
    ("mcf", mcf),
    ("xalancbmk", xalancbmk),
    ("deepsjeng", deepsjeng),
    ("leela", leela),
    ("exchange", exchange),
    ("xz", xz),
    ("lbm", lbm),
    ("wrf", wrf),
    ("cactuBSSN", cactubssn),
    ("blackscholes", blackscholes),
    ("bodytrack", bodytrack),
    ("canneal", canneal),
    ("freqmine", freqmine),
    ("streamcluster", streamcluster),
    ("swaptions", swaptions),
    ("vips", vips),
    ("x264", x264),
    ("g_sort", g_sort),
    ("g_sieve", g_sieve),
    ("g_matmul", g_matmul),
    ("g_search", g_search),
    ("g_interp", g_interp),
    ("g_cksum", g_cksum),
];

/// The full 25-benchmark suite (11 SPEC + 8 PARSEC + 6 compiled guest
/// programs), in the paper's figure order.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    REGISTRY.iter().map(|(_, build)| build(scale)).collect()
}

/// Looks up one workload by name, generating only that workload's
/// program.
pub fn workload(name: &str, scale: Scale) -> Option<Workload> {
    REGISTRY.iter().find(|(n, _)| *n == name).map(|(_, build)| build(scale))
}

/// True if `name` is a known workload — without generating any program.
pub fn workload_exists(name: &str) -> bool {
    REGISTRY.iter().any(|(n, _)| *n == name)
}

/// Every known workload name, in the paper's figure order.
pub fn workload_names() -> impl Iterator<Item = &'static str> {
    REGISTRY.iter().map(|(n, _)| *n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::Machine;

    #[test]
    fn suite_has_twenty_five_benchmarks() {
        let suite = all_workloads(Scale::test());
        assert_eq!(suite.len(), 25);
        assert_eq!(suite.iter().filter(|w| w.suite.is_spec()).count(), 11);
        assert_eq!(suite.iter().filter(|w| w.suite == Suite::Parsec).count(), 8);
        assert_eq!(suite.iter().filter(|w| w.suite == Suite::Guest).count(), 6);
        let mut names: Vec<_> = suite.iter().map(|w| w.name.clone()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25, "names must be unique");
    }

    #[test]
    fn registry_names_match_the_workloads_they_build() {
        for (name, build) in REGISTRY {
            assert_eq!(build(Scale::test()).name, *name);
            assert!(workload_exists(name));
        }
        assert!(!workload_exists("perlbench2"));
        assert_eq!(workload_names().count(), 25);
    }

    #[test]
    fn guest_workloads_are_compiled_programs_that_do_real_work() {
        for name in ["g_sort", "g_sieve", "g_matmul", "g_search", "g_interp", "g_cksum"] {
            let w = workload(name, Scale::test()).unwrap();
            assert_eq!(w.suite, Suite::Guest);
            let mut m = Machine::new(&w.program);
            let r = m.run(50_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(r.halted, "{name} did not halt");
            // Compiled output touches guest memory, not just registers.
            assert!(
                m.op_count_of(scc_isa::Op::Store) > 0,
                "{name} never stores"
            );
        }
    }

    #[test]
    fn every_workload_halts_in_the_interpreter() {
        for w in all_workloads(Scale::test()) {
            let mut m = Machine::new(&w.program);
            let r = m.run(50_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(r.halted, "{} did not halt", w.name);
            assert!(r.uops > 1000, "{} is trivially short: {} uops", w.name, r.uops);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for name in ["gcc", "mcf", "canneal"] {
            let a = workload(name, Scale::test()).unwrap();
            let b = workload(name, Scale::test()).unwrap();
            let mut ma = Machine::new(&a.program);
            let mut mb = Machine::new(&b.program);
            ma.run(50_000_000).unwrap();
            mb.run(50_000_000).unwrap();
            assert_eq!(ma.snapshot(), mb.snapshot(), "{name} nondeterministic");
        }
    }

    #[test]
    fn fp_benchmarks_are_fp_dominated() {
        // Measured dynamically: static counts are skewed by alignment
        // padding and one-time prologues.
        for name in ["lbm", "wrf"] {
            let w = workload(name, Scale::test()).unwrap();
            let mut m = Machine::new(&w.program);
            let r = m.run(50_000_000).unwrap();
            let fp = m.fp_uop_count();
            assert!(
                fp * 3 > r.uops,
                "{name} should be FP-heavy dynamically: {fp}/{}",
                r.uops
            );
        }
        // And a counter-check: an integer benchmark is not.
        let w = workload("exchange", Scale::test()).unwrap();
        let mut m = Machine::new(&w.program);
        let r = m.run(50_000_000).unwrap();
        assert!(m.fp_uop_count() * 10 < r.uops);
    }

    #[test]
    fn memory_bound_benchmarks_have_large_working_sets() {
        for name in ["mcf", "canneal", "xz"] {
            let w = workload(name, Scale::test()).unwrap();
            let bytes = w.program.init_data().len() * 8;
            assert!(
                bytes > 512 * 1024,
                "{name} working set should exceed L2: {bytes} bytes"
            );
        }
    }

    #[test]
    fn scales_change_dynamic_length() {
        let small = workload("freqmine", Scale::test()).unwrap();
        let big = workload("freqmine", Scale::custom(1000)).unwrap();
        let mut ms = Machine::new(&small.program);
        let mut mb = Machine::new(&big.program);
        let rs = ms.run(100_000_000).unwrap();
        let rb = mb.run(100_000_000).unwrap();
        assert!(rb.uops > 2 * rs.uops);
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(workload("doom", Scale::test()).is_none());
    }
}
