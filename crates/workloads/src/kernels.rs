//! Kernel generators: parameterized loops with controlled dynamic
//! characteristics (value predictability, branch behaviour, memory
//! footprint, ILP, FP intensity).
//!
//! Each SPEC/PARSEC stand-in composes a few of these kernels so that the
//! properties SCC is sensitive to match what the paper reports for the
//! real benchmark (see DESIGN.md §4 for the substitution argument).

use scc_isa::rand_prog::SplitMix64;
use scc_isa::{Cond, ProgramBuilder, Reg};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

fn f(n: u8) -> Reg {
    Reg::fp(n)
}

/// Loop counter register shared by all kernels.
const CNT: u8 = 14;
/// Data base pointer register.
const BASE: u8 = 13;

/// A hot loop reading invariant values from a read-only table and doing
/// foldable integer arithmetic on them — SCC's best case (xalancbmk,
/// perlbench, freqmine style).
pub fn invariant_int(b: &mut ProgramBuilder, base: u64, iters: i64) {
    // Mixed-width invariants: the first table value needs 11 bits and the
    // second 17, so folds are progressively lost under Figure 11's
    // 8/16-bit constant restrictions.
    b.words(base, &[1200, -40_000, 100, 3]);
    b.mov_imm(r(BASE), base as i64);
    b.mov_imm(r(CNT), iters);
    b.align_region();
    let top = b.here();
    b.load(r(1), r(BASE), 0); // invariant: 1200 (11 bits)
    b.add_imm(r(2), r(1), 3); // folds under the invariant
    b.shl_imm(r(3), r(2), 1);
    b.load(r(4), r(BASE), 8); // invariant: -40000 (wide)
    b.xor(r(5), r(3), r(4));
    b.add(r(6), r(6), r(5)); // live accumulator
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// A loop whose hot load oscillates between two values with period 2 —
/// the pattern H3VP captures and plain stride prediction cannot
/// (xalancbmk's H3VP advantage).
pub fn oscillating_values(b: &mut ProgramBuilder, base: u64, iters: i64) {
    b.words(base, &[5, 9]);
    b.mov_imm(r(BASE), base as i64);
    b.mov_imm(r(CNT), iters);
    b.mov_imm(r(7), 0); // toggle
    b.align_region();
    let top = b.here();
    b.shl_imm(r(8), r(7), 3);
    b.add(r(9), r(BASE), r(8));
    b.load(r(1), r(9), 0); // 5, 9, 5, 9, ...
    b.add(r(6), r(6), r(1));
    b.xor_imm(r(7), r(7), 1);
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// A pointer chase over `cells` 8-byte nodes laid out as a random cycle —
/// latency-bound, defeating both the caches (when sized past L2) and the
/// value predictor (mcf, canneal, xz style).
pub fn pointer_chase(b: &mut ProgramBuilder, base: u64, cells: u64, iters: i64, seed: u64) {
    // Build a random cyclic permutation: node i points to perm[i].
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<u64> = (0..cells).collect();
    for i in (1..cells as usize).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    for w in 0..cells as usize {
        let from = order[w];
        let to = order[(w + 1) % cells as usize];
        b.word(base + 8 * from, (base + 8 * to) as i64);
    }
    b.mov_imm(r(1), (base + 8 * order[0]) as i64);
    b.mov_imm(r(CNT), iters);
    b.align_region();
    let top = b.here();
    b.load(r(1), r(1), 0); // serial dependent load
    b.add_imm(r(6), r(6), 1); // a little foldable work per node
    b.and_imm(r(5), r(6), 0xFF);
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// A floating-point stencil: FP loads and a multiply-add chain, nothing
/// SCC can touch (lbm, wrf, cactuBSSN style).
pub fn fp_stencil(b: &mut ProgramBuilder, base: u64, iters: i64) {
    for i in 0..8u64 {
        b.word(base + 8 * i, (1.0 + i as f64 * 0.25).to_bits() as i64);
    }
    b.mov_imm(r(BASE), base as i64);
    b.mov_imm(r(CNT), iters);
    b.align_region();
    let top = b.here();
    b.load(f(0), r(BASE), 0);
    b.load(f(1), r(BASE), 8);
    b.fmul(f(2), f(0), f(1));
    b.fadd(f(3), f(2), f(1));
    b.simd(f(4), f(3), f(0));
    b.fadd(f(5), f(5), f(4));
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// A serial integer dependency chain through multiplies — low ILP, ROB
/// pressure (leela, swaptions style). The chain is an LCG-style
/// recurrence, so its values are chaotic: no value predictor can turn it
/// into invariants.
pub fn dependency_chain(b: &mut ProgramBuilder, iters: i64) {
    b.mov_imm(r(1), 0x243F_6A88);
    b.mov_imm(r(2), 6_364_136_223_846_793_005);
    b.mov_imm(r(CNT), iters);
    b.align_region();
    let top = b.here();
    b.mul(r(1), r(1), r(2)); // serial: each depends on the last
    b.add_imm(r(1), r(1), 1_442_695_041);
    b.shr_imm(r(3), r(1), 17);
    b.xor(r(1), r(1), r(3));
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// Independent accumulators — high ILP, scheduler-bound (deepsjeng,
/// streamcluster style).
pub fn parallel_int(b: &mut ProgramBuilder, iters: i64) {
    for i in 1..=6u8 {
        b.mov_imm(r(i), i as i64);
    }
    b.mov_imm(r(CNT), iters);
    b.align_region();
    let top = b.here();
    b.add_imm(r(1), r(1), 1);
    b.add_imm(r(2), r(2), 2);
    b.xor_imm(r(3), r(3), 5);
    b.add_imm(r(4), r(4), 3);
    b.sub_imm(r(5), r(5), 1);
    b.or_imm(r(6), r(6), 2);
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// Register-shuffling and immediate moves — the move-elimination
/// goldmine (exchange2, vips style).
pub fn mov_heavy(b: &mut ProgramBuilder, iters: i64) {
    b.mov_imm(r(CNT), iters);
    b.mov_imm(r(9), 0x5DEECE66);
    b.align_region();
    let top = b.here();
    b.mov_imm(r(1), 7);
    b.mov_imm(r(2), 12);
    b.mov(r(3), r(1));
    b.mov(r(4), r(2));
    b.add(r(6), r(6), r(3)); // live accumulate
    b.mul(r(8), r(6), r(9)); // live, unpredictable
    b.xor(r(7), r(7), r(8)); // live
    b.mov(r(5), r(4));
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// A data-dependent branch whose direction comes from a table:
/// `predictable` fills the table with a constant pattern, otherwise with
/// noise (gcc's mixed behaviour; also the control-invariant stressor).
pub fn branchy(b: &mut ProgramBuilder, base: u64, iters: i64, predictable: bool, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let cells = 64u64;
    for i in 0..cells {
        let v = if predictable { 1 } else { rng.below(2) as i64 };
        b.word(base + 8 * i, v);
    }
    b.mov_imm(r(BASE), base as i64);
    b.mov_imm(r(CNT), iters);
    b.mov_imm(r(7), 0); // index
    b.align_region();
    let top = b.here();
    let skip = b.label();
    b.shl_imm(r(8), r(7), 3);
    b.add(r(9), r(BASE), r(8));
    b.load(r(1), r(9), 0);
    b.cmp_br_imm(Cond::Eq, r(1), 0, skip);
    b.add_imm(r(6), r(6), 5);
    b.xor_imm(r(6), r(6), 3);
    b.bind(skip);
    b.add_imm(r(7), r(7), 1);
    b.and_imm(r(7), r(7), (cells - 1) as i64);
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// Loads whose values follow a clean arithmetic stride — EVES territory.
pub fn strided_values(b: &mut ProgramBuilder, base: u64, iters: i64) {
    let cells = 64u64;
    for i in 0..cells {
        b.word(base + 8 * i, 100 + 8 * i as i64);
    }
    b.mov_imm(r(BASE), base as i64);
    b.mov_imm(r(CNT), iters);
    b.mov_imm(r(7), 0);
    b.align_region();
    let top = b.here();
    b.shl_imm(r(8), r(7), 3);
    b.add(r(9), r(BASE), r(8));
    b.load(r(1), r(9), 0);
    b.add(r(6), r(6), r(1));
    b.add_imm(r(7), r(7), 1);
    b.and_imm(r(7), r(7), (cells - 1) as i64);
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// Loads of effectively random values — hostile to every value predictor;
/// aggressive speculation here causes squashes (the gcc EVES-vs-H3VP
/// discriminator).
pub fn noisy_values(b: &mut ProgramBuilder, base: u64, iters: i64, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let cells = 128u64;
    for i in 0..cells {
        b.word(base + 8 * i, rng.imm().wrapping_mul(13).wrapping_add(i as i64 * 7919));
    }
    b.mov_imm(r(BASE), base as i64);
    b.mov_imm(r(CNT), iters);
    b.mov_imm(r(7), 0);
    b.align_region();
    let top = b.here();
    b.shl_imm(r(8), r(7), 3);
    b.add(r(9), r(BASE), r(8));
    b.load(r(1), r(9), 0);
    b.xor(r(6), r(6), r(1));
    b.add_imm(r(7), r(7), 13);
    b.and_imm(r(7), r(7), (cells - 1) as i64);
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// A code footprint of `regions` warm regions executed round-robin —
/// micro-op cache pressure (the x264 conflict/capacity scenario). Each
/// region carries ~11 micro-ops (cacheable: 2 ways) of which roughly half
/// are foldable constants, so SCC's compacted versions occupy fewer ways
/// and partitioning effectively grows front-end capacity (the paper's
/// hit-rate observation on x264).
pub fn code_footprint(b: &mut ProgramBuilder, regions: usize, iters: i64) {
    b.mov_imm(r(CNT), iters);
    b.align_region();
    let top = b.here();
    for i in 0..regions {
        // Exactly 32 bytes of real instructions per region — executed
        // padding would distort the baseline (compilers only execute
        // alignment padding once, on loop entry).
        b.mov_imm(r(1), i as i64); // 5B, foldable
        b.add_imm(r(2), r(1), 37); // 4B, foldable
        b.xor(r(3), r(2), r(6)); // 3B, live (depends on r6)
        b.shl_imm(r(5), r(3), 2); // 4B, live
        b.and_imm(r(5), r(5), 255); // 4B, live
        b.or(r(6), r(6), r(5)); // 3B, live
        b.add_imm(r(4), r(4), 1); // 4B, live
        b.or_imm(r(4), r(4), 1); // 4B, live
        b.nop(); // 1B: 32 total
        debug_assert_eq!(b.cursor() % 32, 0, "footprint region must be exactly 32 bytes");
    }
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}

/// Microcoded string work (rep-store style) — compaction-proof by
/// construction.
pub fn string_ops(b: &mut ProgramBuilder, base: u64, iters: i64) {
    b.mov_imm(r(CNT), iters);
    b.align_region();
    let top = b.here();
    b.mov_imm(r(1), 8); // elements per rep
    b.mov_imm(r(2), base as i64);
    b.mov_imm(r(3), 0xAB);
    b.rep_store(r(1), r(2), r(3));
    b.sub_imm(r(CNT), r(CNT), 1);
    b.cmp_br_imm(Cond::Ne, r(CNT), 0, top);
}
