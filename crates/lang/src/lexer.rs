//! Tokenizer for the guest language.
//!
//! The token set is deliberately small: identifiers, decimal/hex integer
//! literals, the keyword set (`let`, `array`, `while`, `if`, `else`), and
//! the operator/punctuation inventory of the expression grammar. `//` and
//! `#` start comments that run to end of line.

use crate::CompileError;
use std::fmt;

/// A lexical token with the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based source line, for error messages.
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword-candidate name.
    Ident(String),
    /// An integer literal (decimal or `0x` hex).
    Num(i64),
    /// `let`.
    Let,
    /// `array`.
    Array,
    /// `while`.
    While,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `~`.
    Tilde,
    /// `!`.
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "number `{n}`"),
            Tok::Let => f.write_str("`let`"),
            Tok::Array => f.write_str("`array`"),
            Tok::While => f.write_str("`while`"),
            Tok::If => f.write_str("`if`"),
            Tok::Else => f.write_str("`else`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::NotEq => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Percent => f.write_str("`%`"),
            Tok::Amp => f.write_str("`&`"),
            Tok::Pipe => f.write_str("`|`"),
            Tok::Caret => f.write_str("`^`"),
            Tok::Shl => f.write_str("`<<`"),
            Tok::Shr => f.write_str("`>>`"),
            Tok::Tilde => f.write_str("`~`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// Tokenizes `src`, returning the token stream terminated by [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let hex = c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x';
                if hex {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let value = if hex {
                    u64::from_str_radix(&text[2..], 16).map(|v| v as i64)
                } else {
                    text.parse::<i64>()
                };
                match value {
                    Ok(n) => out.push(Token { kind: Tok::Num(n), line }),
                    Err(_) => {
                        return Err(CompileError::Syntax {
                            line,
                            msg: format!("integer literal `{text}` out of range"),
                        })
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let kind = match &src[start..i] {
                    "let" => Tok::Let,
                    "array" => Tok::Array,
                    "while" => Tok::While,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    name => Tok::Ident(name.to_string()),
                };
                out.push(Token { kind, line });
            }
            _ => {
                let two = if i + 1 < bytes.len() { &src[i..i + 2] } else { "" };
                let (kind, width) = match two {
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    _ => {
                        let kind = match c {
                            b'(' => Tok::LParen,
                            b')' => Tok::RParen,
                            b'[' => Tok::LBracket,
                            b']' => Tok::RBracket,
                            b'{' => Tok::LBrace,
                            b'}' => Tok::RBrace,
                            b';' => Tok::Semi,
                            b',' => Tok::Comma,
                            b'=' => Tok::Assign,
                            b'<' => Tok::Lt,
                            b'>' => Tok::Gt,
                            b'+' => Tok::Plus,
                            b'-' => Tok::Minus,
                            b'*' => Tok::Star,
                            b'/' => Tok::Slash,
                            b'%' => Tok::Percent,
                            b'&' => Tok::Amp,
                            b'|' => Tok::Pipe,
                            b'^' => Tok::Caret,
                            b'~' => Tok::Tilde,
                            b'!' => Tok::Bang,
                            other => {
                                return Err(CompileError::Syntax {
                                    line,
                                    msg: format!(
                                        "unexpected character `{}`",
                                        char::from(other)
                                    ),
                                })
                            }
                        };
                        (kind, 1)
                    }
                };
                out.push(Token { kind, line });
                i += width;
            }
        }
    }
    out.push(Token { kind: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_statement() {
        assert_eq!(
            kinds("let x = 0x10 + 2;"),
            vec![
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num(16),
                Tok::Plus,
                Tok::Num(2),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        assert_eq!(
            kinds("a <= b << c == d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::Ident("c".into()),
                Tok::EqEq,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines_are_tracked() {
        let toks = lex("let a = 1; // comment\n# whole line\na = 2;").unwrap();
        let on_line_3 = toks.iter().filter(|t| t.line == 3).count();
        assert_eq!(on_line_3, 5, "`a = 2 ;` and eof");
    }

    #[test]
    fn bad_character_is_a_typed_error() {
        match lex("let a = @;") {
            Err(CompileError::Syntax { line: 1, .. }) => {}
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_literal_is_a_typed_error() {
        assert!(lex("let a = 99999999999999999999;").is_err());
        // Hex covers the full u64 range, reinterpreted as i64.
        assert_eq!(
            kinds("let a = 0xffffffffffffffff;")[3],
            Tok::Num(-1)
        );
    }
}
