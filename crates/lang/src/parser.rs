//! Recursive-descent parser for the guest language.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! program  := stmt*
//! stmt     := "let" IDENT "=" expr ";"
//!           | "array" IDENT "[" NUM "]" ( "=" "{" NUM ("," NUM)* ","? "}" )? ";"
//!           | IDENT "=" expr ";"
//!           | IDENT "[" expr "]" "=" expr ";"
//!           | "while" "(" expr ")" block
//!           | "if" "(" expr ")" block ("else" block)?
//! block    := "{" stmt* "}"
//! expr     := cmp
//! cmp      := bitor (("=="|"!="|"<"|"<="|">"|">=") bitor)*
//! bitor    := bitxor ("|" bitxor)*
//! bitxor   := bitand ("^" bitand)*
//! bitand   := shift ("&" shift)*
//! shift    := add (("<<"|">>") add)*
//! add      := mul (("+"|"-") mul)*
//! mul      := unary (("*"|"/"|"%") unary)*
//! unary    := ("-"|"~"|"!") unary | primary
//! primary  := NUM | IDENT | IDENT "[" expr "]" | "(" expr ")"
//! ```

use crate::ast::{BinOp, CmpOp, Expr, Stmt, UnOp};
use crate::lexer::{lex, Tok, Token};
use crate::CompileError;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), CompileError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {want}")))
        }
    }

    fn unexpected(&self, ctx: &str) -> CompileError {
        CompileError::Syntax {
            line: self.line(),
            msg: format!("{ctx}, found {}", self.peek()),
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek() {
            Tok::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            _ => Err(self.unexpected("expected an identifier")),
        }
    }

    fn number(&mut self) -> Result<i64, CompileError> {
        let neg = *self.peek() == Tok::Minus;
        if neg {
            self.bump();
        }
        match self.peek() {
            Tok::Num(n) => {
                let n = *n;
                self.bump();
                Ok(if neg { n.wrapping_neg() } else { n })
            }
            _ => Err(self.unexpected("expected a number")),
        }
    }

    fn program(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while *self.peek() != Tok::Eof {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.unexpected("expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let(name, e, line))
            }
            Tok::Array => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::LBracket)?;
                let len = self.number()?;
                self.expect(Tok::RBracket)?;
                if !(1..=4096).contains(&len) {
                    return Err(CompileError::Semantic {
                        line,
                        msg: format!("array `{name}` size {len} outside 1..=4096"),
                    });
                }
                let mut init = Vec::new();
                if *self.peek() == Tok::Assign {
                    self.bump();
                    self.expect(Tok::LBrace)?;
                    loop {
                        if *self.peek() == Tok::RBrace {
                            break;
                        }
                        init.push(self.number()?);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                    if init.len() > len as usize {
                        return Err(CompileError::Semantic {
                            line,
                            msg: format!(
                                "array `{name}` has {} initializers for {len} elements",
                                init.len()
                            ),
                        });
                    }
                }
                self.expect(Tok::Semi)?;
                Ok(Stmt::ArrayDecl(name, len as usize, init, line))
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.block()?;
                let els = if *self.peek() == Tok::Else {
                    self.bump();
                    if *self.peek() == Tok::If {
                        // `else if` chains without requiring braces.
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::Ident(name) => {
                self.bump();
                match self.peek() {
                    Tok::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        self.expect(Tok::Assign)?;
                        let val = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::ArrayAssign(name, idx, val, line))
                    }
                    Tok::Assign => {
                        self.bump();
                        let e = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign(name, e, line))
                    }
                    _ => Err(self.unexpected("expected `=` or `[` after identifier")),
                }
            }
            _ => Err(self.unexpected("expected a statement")),
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bitor()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => CmpOp::Eq,
                Tok::NotEq => CmpOp::Ne,
                Tok::Lt => CmpOp::Lt,
                Tok::Le => CmpOp::Le,
                Tok::Gt => CmpOp::Gt,
                Tok::Ge => CmpOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.bitor()?;
            lhs = Expr::Cmp(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn bin_level(
        &mut self,
        ops: &[(Tok, BinOp)],
        next: fn(&mut Parser) -> Result<Expr, CompileError>,
    ) -> Result<Expr, CompileError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr::Bin(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn bitor(&mut self) -> Result<Expr, CompileError> {
        self.bin_level(&[(Tok::Pipe, BinOp::Or)], Parser::bitxor)
    }

    fn bitxor(&mut self) -> Result<Expr, CompileError> {
        self.bin_level(&[(Tok::Caret, BinOp::Xor)], Parser::bitand)
    }

    fn bitand(&mut self) -> Result<Expr, CompileError> {
        self.bin_level(&[(Tok::Amp, BinOp::And)], Parser::shift)
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        self.bin_level(&[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Sar)], Parser::add)
    }

    fn add(&mut self) -> Result<Expr, CompileError> {
        self.bin_level(&[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)], Parser::mul)
    }

    fn mul(&mut self) -> Result<Expr, CompileError> {
        self.bin_level(
            &[(Tok::Star, BinOp::Mul), (Tok::Slash, BinOp::Div), (Tok::Percent, BinOp::Rem)],
            Parser::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Tilde => Some(UnOp::Not),
            Tok::Bang => Some(UnOp::LogNot),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let inner = self.unary()?;
                // Fold literal operands immediately so `-5` is a constant.
                if let Expr::Num(n) = inner {
                    return Ok(Expr::Num(match op {
                        UnOp::Neg => n.wrapping_neg(),
                        UnOp::Not => !n,
                        UnOp::LogNot => i64::from(n == 0),
                    }));
                }
                Ok(Expr::Un(op, Box::new(inner)))
            }
            None => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LBracket {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx), line))
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            _ => Err(self.unexpected("expected an expression")),
        }
    }
}

/// Parses guest source into a statement list.
pub fn parse(src: &str) -> Result<Vec<Stmt>, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_loops() {
        let prog = parse(
            "let i = 0;\narray a[4] = { 1, 2 };\nwhile (i < 4) { a[i] = i * i; i = i + 1; }",
        )
        .unwrap();
        assert_eq!(prog.len(), 3);
        assert!(matches!(&prog[0], Stmt::Let(n, Expr::Num(0), 1) if n == "i"));
        assert!(matches!(&prog[1], Stmt::ArrayDecl(n, 4, init, 2) if n == "a" && init == &[1, 2]));
        match &prog[2] {
            Stmt::While(Expr::Cmp(CmpOp::Lt, _, _), body) => assert_eq!(body.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_binds_mul_over_add_over_shift() {
        // 1 + 2 * 3 << 1 parses as (1 + (2*3)) << 1.
        match parse("let x = 1 + 2 * 3 << 1;").unwrap().remove(0) {
            Stmt::Let(_, Expr::Bin(BinOp::Shl, lhs, _), _) => {
                assert!(matches!(*lhs, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains_parse() {
        let prog = parse(
            "let x = 1; if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }",
        )
        .unwrap();
        match &prog[1] {
            Stmt::If(_, _, els) => assert!(matches!(&els[0], Stmt::If(_, _, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold_in_the_parser() {
        assert!(matches!(
            parse("let x = -42;").unwrap().remove(0),
            Stmt::Let(_, Expr::Num(-42), _)
        ));
        assert!(matches!(
            parse("let x = !0;").unwrap().remove(0),
            Stmt::Let(_, Expr::Num(1), _)
        ));
    }

    #[test]
    fn errors_carry_lines() {
        match parse("let x = 1;\nlet y = ;") {
            Err(CompileError::Syntax { line: 2, .. }) => {}
            other => panic!("expected line-2 syntax error, got {other:?}"),
        }
        assert!(parse("array a[0];").is_err(), "zero-size array rejected");
        assert!(parse("array a[2] = {1,2,3};").is_err(), "excess initializers rejected");
    }
}
