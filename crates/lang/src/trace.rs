//! The versioned `SCCTRACE1` interchange format for compiled programs.
//!
//! A `.scctrace` file carries one complete macro-op program — code,
//! entry point, and initial memory image — so external programs
//! (compiled by `scc-lang` or produced by any other frontend) can be
//! shipped to a running `scc-serve` instance and flow through the
//! runner/cache/store/router stack like any built-in workload.
//!
//! ```text
//! trace    := magic format schema rev_len rev body_len body_crc body
//! magic    := "SCCTRACE"            ; 8 bytes
//! format   := u32 le                ; byte-layout version (1)
//! schema   := u32 le                ; op/operand coding version (1)
//! rev_len  := u16 le                ; engine revision stamp length
//! rev      := rev_len utf-8 bytes   ; informational, never rejected on
//! body_len := u32 le
//! body_crc := u32 le                ; CRC-32C of body
//! body     := entry n_data (addr value)* n_inst inst*
//! inst     := addr len kind n_uops uop*
//! uop      := op cond dst src1 src2 offset target flags
//! operand  := 0 | 1 reg | 2 imm     ; tag byte then payload
//! ```
//!
//! The header mirrors `scc-store`'s segment header discipline:
//! `format` guards the byte layout, `schema` guards the meaning of the
//! encoded ops, and the engine revision is carried for diagnostics but —
//! unlike the store, which must refuse foreign *results* — is
//! deliberately **not** grounds for rejection, because a trace is
//! re-executed, not trusted. Every decode error is a typed
//! [`TraceError`]; malformed input can never panic the decoder.
//!
//! [`program_digest`] hashes the canonical *body* only, so the identity
//! of a trace job is independent of which engine build stamped the file.

use scc_isa::{Cond, MacroInst, MacroKind, Op, Operand, Program, ProgramError, Reg, Uop};
use std::fmt;

/// Leading magic of every `.scctrace` file.
pub const TRACE_MAGIC: [u8; 8] = *b"SCCTRACE";

/// Byte-layout version we read and write.
pub const FORMAT_VERSION: u32 = 1;

/// Op/operand coding version we read and write.
pub const SCHEMA_VERSION: u32 = 1;

/// Upper bound on an encoded body; larger claims are corruption.
pub const MAX_BODY_BYTES: u32 = 16 * 1024 * 1024;

/// Why a `.scctrace` input was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The input does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The byte-layout version is not one we decode.
    UnsupportedFormat(u32),
    /// The op-coding schema version is not one we decode.
    SchemaMismatch(u32),
    /// The input ended before the declared structure did.
    Truncated,
    /// The body checksum did not match.
    CrcMismatch,
    /// A structurally framed field held an invalid value.
    Malformed(String),
    /// The decoded instructions do not assemble into a valid program.
    BadProgram(ProgramError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => f.write_str("not an SCCTRACE file (bad magic)"),
            TraceError::UnsupportedFormat(v) => {
                write!(f, "unsupported trace format version {v} (expected {FORMAT_VERSION})")
            }
            TraceError::SchemaMismatch(v) => {
                write!(f, "unsupported trace schema version {v} (expected {SCHEMA_VERSION})")
            }
            TraceError::Truncated => f.write_str("trace truncated"),
            TraceError::CrcMismatch => f.write_str("trace body checksum mismatch"),
            TraceError::Malformed(msg) => write!(f, "malformed trace: {msg}"),
            TraceError::BadProgram(e) => write!(f, "trace decodes to an invalid program: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A decoded trace: the program plus its informational header stamps.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The reassembled program.
    pub program: Program,
    /// Engine revision stamped by the producer (informational).
    pub engine_rev: String,
    /// Digest of the canonical body (see [`program_digest`]).
    pub digest: u64,
}

/// Serializes a program to `SCCTRACE1` bytes.
pub fn encode(program: &Program, engine_rev: &str) -> Vec<u8> {
    let body = encode_body(program);
    let rev = engine_rev.as_bytes();
    let rev_len = rev.len().min(u16::MAX as usize);
    let mut out = Vec::with_capacity(8 + 4 + 4 + 2 + rev_len + 4 + 4 + body.len());
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(rev_len as u16).to_le_bytes());
    out.extend_from_slice(&rev[..rev_len]);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Parses and verifies `SCCTRACE1` bytes.
///
/// # Errors
///
/// Returns a [`TraceError`] naming the first defect found; decoding
/// never panics on arbitrary input.
pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
    let mut c = Cursor { data: bytes, at: 0 };
    if bytes.len() < 8 {
        return Err(if bytes.is_empty() || TRACE_MAGIC.starts_with(bytes) {
            TraceError::Truncated
        } else {
            TraceError::BadMagic
        });
    }
    if c.take(8)? != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let format = c.u32()?;
    if format != FORMAT_VERSION {
        return Err(TraceError::UnsupportedFormat(format));
    }
    let schema = c.u32()?;
    if schema != SCHEMA_VERSION {
        return Err(TraceError::SchemaMismatch(schema));
    }
    let rev_len = c.u16()? as usize;
    let engine_rev = String::from_utf8(c.take(rev_len)?.to_vec())
        .map_err(|_| TraceError::Malformed("engine revision is not utf-8".into()))?;
    let body_len = c.u32()?;
    if body_len > MAX_BODY_BYTES {
        return Err(TraceError::Malformed(format!("body length {body_len} exceeds cap")));
    }
    let expected_crc = c.u32()?;
    let body = c.take(body_len as usize)?;
    if c.at != bytes.len() {
        return Err(TraceError::Malformed(format!(
            "{} trailing bytes after body",
            bytes.len() - c.at
        )));
    }
    if crc32c(body) != expected_crc {
        return Err(TraceError::CrcMismatch);
    }
    let digest = fnv1a64(body);
    let program = decode_body(body)?;
    Ok(Trace { program, engine_rev, digest })
}

/// Digest identifying a program independent of header stamps: FNV-1a-64
/// over the canonical encoded body.
pub fn program_digest(program: &Program) -> u64 {
    fnv1a64(&encode_body(program))
}

/// Formats a digest as the fixed-width 16-hex-digit string used in
/// `trace:<digest>` workload names and job keys.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

// ---------------------------------------------------------------- body

fn encode_body(program: &Program) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&program.entry().to_le_bytes());
    b.extend_from_slice(&(program.init_data().len() as u32).to_le_bytes());
    for &(addr, value) in program.init_data() {
        b.extend_from_slice(&addr.to_le_bytes());
        b.extend_from_slice(&value.to_le_bytes());
    }
    b.extend_from_slice(&(program.insts().len() as u32).to_le_bytes());
    for m in program.insts() {
        b.extend_from_slice(&m.addr.to_le_bytes());
        b.push(m.len);
        b.push(kind_code(m.kind));
        b.push(m.uops.len() as u8);
        for u in &m.uops {
            encode_uop(&mut b, u);
        }
    }
    b
}

fn decode_body(body: &[u8]) -> Result<Program, TraceError> {
    let mut c = Cursor { data: body, at: 0 };
    let entry = c.u64()?;
    let n_data = c.u32()? as usize;
    let mut init_data = Vec::new();
    for _ in 0..n_data {
        let addr = c.u64()?;
        let value = c.u64()? as i64;
        init_data.push((addr, value));
    }
    let n_inst = c.u32()? as usize;
    let mut insts = Vec::new();
    for _ in 0..n_inst {
        let addr = c.u64()?;
        let len = c.u8()?;
        if !(1..=15).contains(&len) {
            return Err(TraceError::Malformed(format!("instruction length {len}")));
        }
        let kind = kind_from(c.u8()?)?;
        let n_uops = c.u8()? as usize;
        if n_uops == 0 {
            return Err(TraceError::Malformed("empty micro-op expansion".into()));
        }
        let mut uops = Vec::with_capacity(n_uops);
        for _ in 0..n_uops {
            uops.push(decode_uop(&mut c)?);
        }
        insts.push(MacroInst::new(addr, len, kind, uops));
    }
    if c.at != body.len() {
        return Err(TraceError::Malformed("trailing bytes in body".into()));
    }
    Program::new(insts, entry, init_data).map_err(TraceError::BadProgram)
}

fn encode_uop(b: &mut Vec<u8>, u: &Uop) {
    b.push(op_code(u.op));
    b.push(u.cond.map_or(0xFF, cond_code));
    b.push(u.dst.map_or(0xFF, |r| r.index() as u8));
    encode_operand(b, u.src1);
    encode_operand(b, u.src2);
    b.extend_from_slice(&u.offset.to_le_bytes());
    match u.target {
        Some(t) => {
            b.push(1);
            b.extend_from_slice(&t.to_le_bytes());
        }
        None => b.push(0),
    }
    b.push(u.fused_with_next as u8);
}

fn decode_uop(c: &mut Cursor<'_>) -> Result<Uop, TraceError> {
    // Uop::new derives writes_cc from the op, and MacroInst::new stamps
    // macro_addr/len/slot and self-loop marking, so only the explicit
    // fields travel on the wire.
    let mut u = Uop::new(op_from(c.u8()?)?);
    u.cond = match c.u8()? {
        0xFF => None,
        v => Some(cond_from(v)?),
    };
    u.dst = match c.u8()? {
        0xFF => None,
        v => Some(reg_from(v)?),
    };
    u.src1 = decode_operand(c)?;
    u.src2 = decode_operand(c)?;
    u.offset = c.u64()? as i64;
    u.target = match c.u8()? {
        0 => None,
        1 => Some(c.u64()?),
        v => return Err(TraceError::Malformed(format!("target tag {v}"))),
    };
    u.fused_with_next = match c.u8()? {
        0 => false,
        1 => true,
        v => return Err(TraceError::Malformed(format!("fuse flag {v}"))),
    };
    Ok(u)
}

fn encode_operand(b: &mut Vec<u8>, o: Operand) {
    match o {
        Operand::None => b.push(0),
        Operand::Reg(r) => {
            b.push(1);
            b.push(r.index() as u8);
        }
        Operand::Imm(v) => {
            b.push(2);
            b.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn decode_operand(c: &mut Cursor<'_>) -> Result<Operand, TraceError> {
    match c.u8()? {
        0 => Ok(Operand::None),
        1 => Ok(Operand::Reg(reg_from(c.u8()?)?)),
        2 => Ok(Operand::Imm(c.u64()? as i64)),
        v => Err(TraceError::Malformed(format!("operand tag {v}"))),
    }
}

fn reg_from(idx: u8) -> Result<Reg, TraceError> {
    if idx < 16 {
        Ok(Reg::int(idx))
    } else if idx < 32 {
        Ok(Reg::fp(idx - 16))
    } else {
        Err(TraceError::Malformed(format!("register index {idx}")))
    }
}

fn kind_code(k: MacroKind) -> u8 {
    match k {
        MacroKind::Simple => 0,
        MacroKind::Fused => 1,
        MacroKind::StringOp => 2,
    }
}

fn kind_from(v: u8) -> Result<MacroKind, TraceError> {
    match v {
        0 => Ok(MacroKind::Simple),
        1 => Ok(MacroKind::Fused),
        2 => Ok(MacroKind::StringOp),
        _ => Err(TraceError::Malformed(format!("macro kind {v}"))),
    }
}

/// Stable wire codes for [`Op`], in the enum's declared order. Appending
/// a new op is schema-compatible; renumbering requires a schema bump.
const OP_TABLE: [Op; 34] = [
    Op::Nop,
    Op::Halt,
    Op::MovImm,
    Op::Mov,
    Op::Add,
    Op::Sub,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Shl,
    Op::Shr,
    Op::Sar,
    Op::Not,
    Op::Neg,
    Op::Mul,
    Op::Div,
    Op::Rem,
    Op::Cmp,
    Op::Test,
    Op::SetCc,
    Op::Load,
    Op::Store,
    Op::FpAdd,
    Op::FpSub,
    Op::FpMul,
    Op::FpDiv,
    Op::FpMov,
    Op::Simd,
    Op::Jmp,
    Op::JmpInd,
    Op::BrCc,
    Op::CmpBr,
    Op::Call,
    Op::Ret,
];

fn op_code(op: Op) -> u8 {
    OP_TABLE.iter().position(|&o| o == op).expect("op in table") as u8
}

fn op_from(v: u8) -> Result<Op, TraceError> {
    OP_TABLE
        .get(v as usize)
        .copied()
        .ok_or_else(|| TraceError::Malformed(format!("op code {v}")))
}

fn cond_code(c: Cond) -> u8 {
    Cond::all().iter().position(|&x| x == c).expect("cond in table") as u8
}

fn cond_from(v: u8) -> Result<Cond, TraceError> {
    Cond::all()
        .get(v as usize)
        .copied()
        .ok_or_else(|| TraceError::Malformed(format!("cond code {v}")))
}

// ------------------------------------------------------------- cursor

struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.at.checked_add(n).ok_or(TraceError::Truncated)?;
        if end > self.data.len() {
            return Err(TraceError::Truncated);
        }
        let s = &self.data[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

// ----------------------------------------------------------- digests

/// CRC-32C (Castagnoli), bit-identical to `scc_store::crc::crc32c`;
/// duplicated so the frontend depends only on `scc-isa`.
fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78;
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
    }
    !crc
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------- base64

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding, for carrying trace bytes inside the
/// JSON serve protocol.
pub fn to_base64(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let chars = [
            B64[(n >> 18) as usize & 63],
            B64[(n >> 12) as usize & 63],
            B64[(n >> 6) as usize & 63],
            B64[n as usize & 63],
        ];
        let keep = chunk.len() + 1;
        for (i, ch) in chars.iter().enumerate() {
            out.push(if i < keep { char::from(*ch) } else { '=' });
        }
    }
    out
}

/// Inverse of [`to_base64`]; `None` on any malformed input.
pub fn from_base64(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (ci, chunk) in bytes.chunks(4).enumerate() {
        let last = ci + 1 == bytes.len() / 4;
        let mut n = 0u32;
        let mut pad = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                // Padding only in the last chunk's tail positions.
                if !last || i < 2 || chunk[i..].iter().any(|&x| x != b'=') {
                    return None;
                }
                pad += 1;
                0
            } else {
                B64.iter().position(|&x| x == c)? as u32
            };
            n = (n << 6) | v;
        }
        let b = [(n >> 16) as u8, (n >> 8) as u8, n as u8];
        out.extend_from_slice(&b[..3 - pad]);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_program, Options};

    const SRC: &str = "
        let i = 0;
        let acc = 0;
        array t[4] = { 3, 1, 4, 1 };
        while (i < 4) {
            acc = acc + t[i];
            i = i + 1;
        }
    ";

    fn sample() -> Program {
        compile_program(SRC, &Options::default()).unwrap()
    }

    #[test]
    fn round_trip_preserves_execution() {
        let p = sample();
        let bytes = encode(&p, "rev-under-test");
        let t = decode(&bytes).unwrap();
        assert_eq!(t.engine_rev, "rev-under-test");
        assert_eq!(t.program.insts(), p.insts());
        assert_eq!(t.program.entry(), p.entry());
        assert_eq!(t.program.init_data(), p.init_data());

        let mut m1 = scc_isa::Machine::new(&p);
        let mut m2 = scc_isa::Machine::new(&t.program);
        m1.run(1_000_000).unwrap();
        m2.run(1_000_000).unwrap();
        assert_eq!(m1.snapshot(), m2.snapshot());
    }

    #[test]
    fn digest_is_stamp_independent() {
        let p = sample();
        let a = decode(&encode(&p, "rev-a")).unwrap();
        let b = decode(&encode(&p, "rev-b")).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.digest, program_digest(&p));
        assert_eq!(digest_hex(a.digest).len(), 16);
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = encode(&sample(), "rev");
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(
                    TraceError::Truncated | TraceError::BadMagic | TraceError::Malformed(_),
                ) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = encode(&sample(), "rev");
        // Flip one bit in every body byte; the CRC must catch each.
        let body_at = 8 + 4 + 4 + 2 + "rev".len() + 4 + 4;
        for i in body_at..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert_eq!(decode(&bad).unwrap_err(), TraceError::CrcMismatch, "byte {i}");
        }
    }

    #[test]
    fn version_mismatches_are_typed() {
        let mut bytes = encode(&sample(), "rev");
        bytes[8] = 9; // format version
        assert_eq!(decode(&bytes).unwrap_err(), TraceError::UnsupportedFormat(9));
        let mut bytes = encode(&sample(), "rev");
        bytes[12] = 9; // schema version
        assert_eq!(decode(&bytes).unwrap_err(), TraceError::SchemaMismatch(9));
        let mut bytes = encode(&sample(), "rev");
        bytes[0] = b'X';
        assert_eq!(decode(&bytes).unwrap_err(), TraceError::BadMagic);
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // A deterministic xorshift fuzz over small random buffers.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let len = (next() % 200) as usize;
            let buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = decode(&buf); // must return, never panic
        }
        // And over valid traces with a corrupted interior that still
        // passes framing (patch the CRC to match the mutated body).
        let bytes = encode(&sample(), "rev");
        let body_start = {
            let rev_len = u16::from_le_bytes([bytes[16], bytes[17]]) as usize;
            8 + 4 + 4 + 2 + rev_len + 4 + 4
        };
        for _ in 0..300 {
            let mut bad = bytes.clone();
            let i = body_start + (next() as usize % (bad.len() - body_start));
            bad[i] = next() as u8;
            let crc = crc32c(&bad[body_start..]);
            let at = body_start - 4;
            bad[at..at + 4].copy_from_slice(&crc.to_le_bytes());
            let _ = decode(&bad); // typed error or success, never panic
        }
    }

    #[test]
    fn op_and_cond_codes_are_pinned() {
        // Wire compatibility: these codes must never change meaning
        // without a schema bump.
        assert_eq!(op_code(Op::Nop), 0);
        assert_eq!(op_code(Op::MovImm), 2);
        assert_eq!(op_code(Op::Load), 20);
        assert_eq!(op_code(Op::CmpBr), 31);
        assert_eq!(op_code(Op::Ret), 33);
        for (i, &op) in OP_TABLE.iter().enumerate() {
            assert_eq!(op_from(i as u8).unwrap(), op);
        }
        assert!(op_from(34).is_err());
        assert_eq!(cond_code(Cond::Eq), 0);
        assert_eq!(cond_code(Cond::Ae), 7);
    }

    #[test]
    fn crc32c_matches_store_vectors() {
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn base64_round_trips() {
        for len in 0..40usize {
            let data: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37)).collect();
            let s = to_base64(&data);
            assert_eq!(from_base64(&s).unwrap(), data, "len {len}");
        }
        assert_eq!(to_base64(b"foob"), "Zm9vYg==");
        assert!(from_base64("Zm9vYg=").is_none(), "bad length");
        assert!(from_base64("Zm9=Yg==").is_none(), "interior padding");
        assert!(from_base64("Zm9v!g==").is_none(), "bad alphabet");
    }
}
