//! `scc-lang`: compile, run, and inspect guest programs.
//!
//! ```text
//! scc-lang build <src.sccl> [-O0|-O1|-O2] [--iters N] [-o FILE.scctrace]
//! scc-lang run   <src.sccl | FILE.scctrace> [-O..] [--iters N] [--max-uops N]
//! scc-lang emit  <src.sccl> [-O0|-O1|-O2] [--iters N]
//! ```

use scc_lang::{compile, corpus, trace, CompileError, Opt, Options};

const USAGE: &str = "\
scc-lang: guest-language compiler for the SCC macro-op ISA

USAGE:
  scc-lang build <src.sccl> [-O0|-O1|-O2] [--iters N] [-o FILE.scctrace]
  scc-lang run   <src.sccl | FILE.scctrace> [-O0|-O1|-O2] [--iters N] [--max-uops N]
  scc-lang emit  <src.sccl> [-O0|-O1|-O2] [--iters N]

COMMANDS:
  build   Compile guest source and write a versioned SCCTRACE1 file
          (default: the source path with extension .scctrace).
  run     Compile and interpret guest source, or decode and interpret a
          .scctrace file; print dynamic counts and final variables.
  emit    Compile and print the disassembly plus pass statistics.

The <src.sccl> argument also accepts `corpus:<name>` (e.g. corpus:sort)
to use a committed example program. Default opt level is -O2, default
ITERS is 1.
";

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let r = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("emit") => cmd_emit(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return if args.is_empty() { 2 } else { 0 };
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match r {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("scc-lang: {e}");
            1
        }
    }
}

struct Common {
    input: String,
    opt: Opt,
    iters: i64,
    out: Option<String>,
    max_uops: u64,
}

fn parse_common(args: &[String]) -> Result<Common, String> {
    let mut c = Common {
        input: String::new(),
        opt: Opt::O2,
        iters: 1,
        out: None,
        max_uops: 200_000_000,
    };
    let mut i = 0;
    let need = |i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{what} needs a value"))
    };
    while i < args.len() {
        let a = &args[i];
        if let Some(opt) = Opt::parse(a) {
            c.opt = opt;
        } else if a == "--iters" {
            c.iters = need(&mut i, a)?.parse().map_err(|_| "--iters: not a number")?;
        } else if a == "--max-uops" {
            c.max_uops = need(&mut i, a)?.parse().map_err(|_| "--max-uops: not a number")?;
        } else if a == "-o" {
            c.out = Some(need(&mut i, a)?);
        } else if a.starts_with('-') {
            return Err(format!("unknown flag `{a}`"));
        } else if c.input.is_empty() {
            c.input = a.clone();
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
        i += 1;
    }
    if c.input.is_empty() {
        return Err("missing input file".to_string());
    }
    Ok(c)
}

fn read_source(input: &str) -> Result<String, String> {
    if let Some(name) = input.strip_prefix("corpus:") {
        return corpus::find(name)
            .map(|g| g.source.to_string())
            .ok_or_else(|| format!("no corpus program named `{name}`"));
    }
    std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))
}

fn compile_input(c: &Common) -> Result<scc_lang::Compiled, String> {
    let src = read_source(&c.input)?;
    compile(&src, &Options { opt: c.opt, iters: c.iters }).map_err(|e| render(&c.input, e))
}

fn render(path: &str, e: CompileError) -> String {
    format!("{path}: {e}")
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let c = parse_common(args)?;
    let compiled = compile_input(&c)?;
    let bytes = trace::encode(&compiled.program, env!("CARGO_PKG_VERSION"));
    let out = c.out.clone().unwrap_or_else(|| {
        let stem = c.input.strip_prefix("corpus:").unwrap_or(&c.input);
        format!("{}.scctrace", stem.trim_end_matches(".sccl"))
    });
    std::fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    let digest = trace::digest_hex(trace::program_digest(&compiled.program));
    println!(
        "wrote {out}: {} insts, {} uops static, digest {digest} ({} -> {} IR at {})",
        compiled.program.insts().len(),
        compiled.program.static_uop_count(),
        compiled.stats.ir_before,
        compiled.stats.ir_after,
        c.opt.name(),
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let c = parse_common(args)?;
    let (program, symbols) = if c.input.ends_with(".scctrace") {
        let bytes = std::fs::read(&c.input).map_err(|e| format!("{}: {e}", c.input))?;
        let t = trace::decode(&bytes).map_err(|e| format!("{}: {e}", c.input))?;
        println!(
            "trace digest {} (stamped by engine {})",
            trace::digest_hex(t.digest),
            if t.engine_rev.is_empty() { "<unknown>" } else { &t.engine_rev }
        );
        (t.program, Vec::new())
    } else {
        let compiled = compile_input(&c)?;
        (compiled.program, compiled.symbols)
    };
    let mut m = scc_isa::Machine::new(&program);
    let r = m.run(c.max_uops).map_err(|e| e.to_string())?;
    println!(
        "{}: {} uops, {}",
        c.input,
        r.uops,
        if r.halted { "halted" } else { "uop budget exhausted" }
    );
    for s in &symbols {
        if s.len == 1 {
            println!("  {} = {}", s.name, m.mem().read(s.addr));
        } else {
            let words: Vec<String> =
                (0..s.len.min(16)).map(|i| m.mem().read(s.addr + 8 * i as u64).to_string()).collect();
            let ell = if s.len > 16 { ", ..." } else { "" };
            println!("  {}[{}] = [{}{}]", s.name, s.len, words.join(", "), ell);
        }
    }
    Ok(())
}

fn cmd_emit(args: &[String]) -> Result<(), String> {
    let c = parse_common(args)?;
    let compiled = compile_input(&c)?;
    println!(
        "# {} at {}: {} IR -> {} IR, {} macro-insts, {} static uops",
        c.input,
        c.opt.name(),
        compiled.stats.ir_before,
        compiled.stats.ir_after,
        compiled.program.insts().len(),
        compiled.program.static_uop_count(),
    );
    for s in &compiled.symbols {
        println!("# {} at {:#x} ({} words)", s.name, s.addr, s.len);
    }
    print!("{}", scc_isa::disasm::disassemble(&compiled.program));
    Ok(())
}
