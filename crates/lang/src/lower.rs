//! Lowering from guest AST to a linear IR, and assembly of that IR into a
//! [`scc_isa::Program`].
//!
//! The IR is a flat instruction list over the 16 integer registers with
//! symbolic label targets — close enough to the macro-op ISA that emission
//! is a 1:1 walk over [`ProgramBuilder`], but symbolic enough that the
//! peephole passes in [`crate::opt`] can rewrite it freely.
//!
//! Register convention:
//!
//! - `r15` (`GP`) is pinned to [`GUEST_BASE`] by the prologue and never
//!   written again; every scalar access is a single `load`/`store` with a
//!   static offset from it.
//! - `r1`–`r10` are the expression evaluation stack (depth-indexed).
//! - `r0` and `r11`–`r14` are unused, left free for future codegen.
//!
//! Flag-liveness invariant: no IR instruction reads condition codes set by
//! a *previous* IR instruction — comparisons are always emitted as fused
//! `cmp`+`setcc` or `cmpbr` units. The optimizer relies on this to delete
//! or reorder flag-writing instructions without tracking flags.

use crate::ast::{BinOp, CmpOp, Expr, Stmt, UnOp};
use crate::{CompileError, Options, Symbol};
use scc_isa::{eval_alu, eval_complex, Cond, Op, Program, ProgramBuilder, Reg};
use std::collections::HashMap;

/// Base address of guest variable memory; `GP` (`r15`) holds this value.
pub const GUEST_BASE: u64 = 0x10_0000;

/// Entry address of compiled guest programs.
pub const ENTRY: u64 = 0x1000;

/// The pinned global-pointer register index (`r15`).
pub(crate) const GP: u8 = 15;

const FIRST_EXPR_REG: u8 = 1;
const MAX_EXPR_DEPTH: usize = 10;

/// The reserved builtin identifier bound to [`Options::iters`].
pub const ITERS_NAME: &str = "ITERS";

/// An IR operand: a register or an immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Val {
    /// Integer register index.
    Reg(u8),
    /// Immediate.
    Imm(i64),
}

/// A linear-IR instruction. Register fields are integer register indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Ins {
    /// A branch target. `align` pads to the next 32-byte region (loop
    /// heads), mirroring how compilers align hot loops.
    Label {
        /// Symbolic label id.
        id: usize,
        /// Whether to region-align the bound address.
        align: bool,
    },
    /// `dst = imm`.
    MovImm {
        /// Destination register.
        dst: u8,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
    },
    /// `dst = lhs <op> rhs`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: u8,
        /// Left operand register.
        lhs: u8,
        /// Right operand.
        rhs: Val,
    },
    /// `dst = ~src` or `dst = -src`.
    Un {
        /// [`UnOp::Not`] or [`UnOp::Neg`] (never `LogNot`).
        op: UnOp,
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
    },
    /// `dst = (lhs cond rhs) ? 1 : 0`, emitted as `cmp` + `setcc`.
    SetCmp {
        /// Comparison condition.
        cond: Cond,
        /// Destination register.
        dst: u8,
        /// Left operand register.
        lhs: u8,
        /// Right operand.
        rhs: Val,
    },
    /// `dst = mem[base + off]`.
    Load {
        /// Destination register.
        dst: u8,
        /// Base address register.
        base: u8,
        /// Byte displacement.
        off: i64,
    },
    /// `mem[base + off] = src`.
    Store {
        /// Stored value.
        src: Val,
        /// Base address register.
        base: u8,
        /// Byte displacement.
        off: i64,
    },
    /// `if (lhs cond rhs) goto target` (fused compare-and-branch).
    CmpBr {
        /// Branch condition.
        cond: Cond,
        /// Left operand register.
        lhs: u8,
        /// Right operand.
        rhs: Val,
        /// Target label id.
        target: usize,
    },
    /// `goto target`.
    Jmp {
        /// Target label id.
        target: usize,
    },
    /// Stop the machine.
    Halt,
}

impl Ins {
    /// The register this instruction writes, if any.
    pub(crate) fn def(&self) -> Option<u8> {
        match self {
            Ins::MovImm { dst, .. }
            | Ins::Mov { dst, .. }
            | Ins::Bin { dst, .. }
            | Ins::Un { dst, .. }
            | Ins::SetCmp { dst, .. }
            | Ins::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }
}

/// Evaluates a binary operator on constants with exact machine semantics.
pub(crate) fn eval_bin(op: BinOp, a: i64, b: i64) -> i64 {
    let alu = |o: Op| {
        eval_alu(o, a, b, Default::default(), None)
            .and_then(|r| r.value)
            .expect("alu op evaluates")
    };
    match op {
        BinOp::Add => alu(Op::Add),
        BinOp::Sub => alu(Op::Sub),
        BinOp::And => alu(Op::And),
        BinOp::Or => alu(Op::Or),
        BinOp::Xor => alu(Op::Xor),
        BinOp::Shl => alu(Op::Shl),
        BinOp::Sar => alu(Op::Sar),
        BinOp::Mul => eval_complex(Op::Mul, a, b).expect("mul evaluates"),
        BinOp::Div => eval_complex(Op::Div, a, b).expect("div evaluates"),
        BinOp::Rem => eval_complex(Op::Rem, a, b).expect("rem evaluates"),
    }
}

/// True if the macro-op ISA has a register-immediate form for `op`
/// (`mul`/`div`/`rem` are register-register only).
pub(crate) fn has_imm_form(op: BinOp) -> bool {
    !matches!(op, BinOp::Mul | BinOp::Div | BinOp::Rem)
}

fn cond_of(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::Lt => Cond::Lt,
        CmpOp::Le => Cond::Le,
        CmpOp::Gt => Cond::Gt,
        CmpOp::Ge => Cond::Ge,
    }
}

#[derive(Clone, Copy)]
enum Sym {
    Scalar { off: i64 },
    Array { off: i64, len: usize },
}

/// The lowered program before optimization and assembly.
#[derive(Debug)]
pub(crate) struct Lowered {
    /// Linear IR.
    pub ins: Vec<Ins>,
    /// Initial-memory words from array initializers.
    pub data: Vec<(u64, i64)>,
    /// Guest-visible variable layout.
    pub symbols: Vec<Symbol>,
}

struct LowerCtx {
    ins: Vec<Ins>,
    data: Vec<(u64, i64)>,
    syms: HashMap<String, Sym>,
    order: Vec<String>,
    next_off: i64,
    labels: usize,
    iters: i64,
}

impl LowerCtx {
    fn new_label(&mut self) -> usize {
        self.labels += 1;
        self.labels - 1
    }

    fn reg(depth: usize) -> u8 {
        FIRST_EXPR_REG + depth as u8
    }

    fn declare(
        &mut self,
        name: &str,
        sym: Sym,
        line: usize,
    ) -> Result<(), CompileError> {
        if name == ITERS_NAME {
            return Err(CompileError::Semantic {
                line,
                msg: format!("`{ITERS_NAME}` is a reserved builtin"),
            });
        }
        if self.syms.contains_key(name) {
            return Err(CompileError::Semantic {
                line,
                msg: format!("`{name}` is already declared"),
            });
        }
        self.syms.insert(name.to_string(), sym);
        self.order.push(name.to_string());
        Ok(())
    }

    fn scalar_off(&self, name: &str, line: usize) -> Result<i64, CompileError> {
        match self.syms.get(name) {
            Some(Sym::Scalar { off }) => Ok(*off),
            Some(Sym::Array { .. }) => Err(CompileError::Semantic {
                line,
                msg: format!("`{name}` is an array; index it"),
            }),
            None => Err(CompileError::Semantic {
                line,
                msg: format!("`{name}` is not declared"),
            }),
        }
    }

    fn array_off(&self, name: &str, line: usize) -> Result<i64, CompileError> {
        match self.syms.get(name) {
            Some(Sym::Array { off, .. }) => Ok(*off),
            Some(Sym::Scalar { .. }) => Err(CompileError::Semantic {
                line,
                msg: format!("`{name}` is a scalar, not an array"),
            }),
            None => Err(CompileError::Semantic {
                line,
                msg: format!("`{name}` is not declared"),
            }),
        }
    }

    /// Evaluates `e` into the register for `depth`, returning that register.
    fn eval(&mut self, e: &Expr, depth: usize) -> Result<u8, CompileError> {
        if depth >= MAX_EXPR_DEPTH {
            return Err(CompileError::TooComplex {
                msg: format!("expression nesting exceeds {MAX_EXPR_DEPTH} temporaries"),
            });
        }
        let dst = Self::reg(depth);
        match e {
            Expr::Num(n) => self.ins.push(Ins::MovImm { dst, imm: *n }),
            Expr::Var(name, line) => {
                if name == ITERS_NAME {
                    self.ins.push(Ins::MovImm { dst, imm: self.iters });
                } else {
                    let off = self.scalar_off(name, *line)?;
                    self.ins.push(Ins::Load { dst, base: GP, off });
                }
            }
            Expr::Index(name, idx, line) => {
                let base_addr = (GUEST_BASE as i64) + self.array_off(name, *line)?;
                match self.eval_val(idx, depth)? {
                    Val::Imm(k) => {
                        self.ins.push(Ins::Load {
                            dst,
                            base: GP,
                            off: self.array_off(name, *line)? + k.wrapping_mul(8),
                        });
                    }
                    Val::Reg(r) => {
                        debug_assert_eq!(r, dst);
                        self.ins.push(Ins::Bin {
                            op: BinOp::Shl,
                            dst,
                            lhs: dst,
                            rhs: Val::Imm(3),
                        });
                        self.ins.push(Ins::Load { dst, base: dst, off: base_addr });
                    }
                }
            }
            Expr::Un(op, inner) => match op {
                UnOp::Neg | UnOp::Not => {
                    let src = self.eval(inner, depth)?;
                    self.ins.push(Ins::Un { op: *op, dst, src });
                }
                UnOp::LogNot => {
                    let src = self.eval(inner, depth)?;
                    self.ins.push(Ins::SetCmp {
                        cond: Cond::Eq,
                        dst,
                        lhs: src,
                        rhs: Val::Imm(0),
                    });
                }
            },
            Expr::Bin(op, lhs, rhs) => {
                let l = self.eval(lhs, depth)?;
                let mut r = self.eval_val(rhs, depth + 1)?;
                if let (false, Val::Imm(k)) = (has_imm_form(*op), r) {
                    let rr = Self::reg(depth + 1);
                    if depth + 1 >= MAX_EXPR_DEPTH {
                        return Err(CompileError::TooComplex {
                            msg: format!(
                                "expression nesting exceeds {MAX_EXPR_DEPTH} temporaries"
                            ),
                        });
                    }
                    self.ins.push(Ins::MovImm { dst: rr, imm: k });
                    r = Val::Reg(rr);
                }
                self.ins.push(Ins::Bin { op: *op, dst, lhs: l, rhs: r });
            }
            Expr::Cmp(op, lhs, rhs) => {
                let l = self.eval(lhs, depth)?;
                let r = self.eval_val(rhs, depth + 1)?;
                self.ins.push(Ins::SetCmp { cond: cond_of(*op), dst, lhs: l, rhs: r });
            }
        }
        Ok(dst)
    }

    /// Evaluates `e` as an operand: literals become immediates without
    /// consuming a register.
    fn eval_val(&mut self, e: &Expr, depth: usize) -> Result<Val, CompileError> {
        if let Expr::Num(n) = e {
            return Ok(Val::Imm(*n));
        }
        Ok(Val::Reg(self.eval(e, depth)?))
    }

    /// Emits a branch to `target` taken when `cond` evaluates false.
    fn branch_if_false(&mut self, cond: &Expr, target: usize) -> Result<(), CompileError> {
        match cond {
            Expr::Cmp(op, lhs, rhs) => {
                let l = self.eval(lhs, 0)?;
                let r = self.eval_val(rhs, 1)?;
                self.ins.push(Ins::CmpBr {
                    cond: cond_of(*op).negate(),
                    lhs: l,
                    rhs: r,
                    target,
                });
            }
            Expr::Un(UnOp::LogNot, inner) => return self.branch_if_true(inner, target),
            other => {
                let r = self.eval(other, 0)?;
                self.ins.push(Ins::CmpBr {
                    cond: Cond::Eq,
                    lhs: r,
                    rhs: Val::Imm(0),
                    target,
                });
            }
        }
        Ok(())
    }

    /// Emits a branch to `target` taken when `cond` evaluates true.
    fn branch_if_true(&mut self, cond: &Expr, target: usize) -> Result<(), CompileError> {
        match cond {
            Expr::Cmp(op, lhs, rhs) => {
                let l = self.eval(lhs, 0)?;
                let r = self.eval_val(rhs, 1)?;
                self.ins.push(Ins::CmpBr { cond: cond_of(*op), lhs: l, rhs: r, target });
            }
            Expr::Un(UnOp::LogNot, inner) => return self.branch_if_false(inner, target),
            other => {
                let r = self.eval(other, 0)?;
                self.ins.push(Ins::CmpBr {
                    cond: Cond::Ne,
                    lhs: r,
                    rhs: Val::Imm(0),
                    target,
                });
            }
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Let(name, e, line) => {
                let v = self.eval_val(e, 0)?;
                let off = self.next_off;
                self.declare(name, Sym::Scalar { off }, *line)?;
                self.next_off += 8;
                self.ins.push(Ins::Store { src: v, base: GP, off });
            }
            Stmt::ArrayDecl(name, len, init, line) => {
                let off = self.next_off;
                self.declare(name, Sym::Array { off, len: *len }, *line)?;
                self.next_off += 8 * *len as i64;
                for (i, &v) in init.iter().enumerate() {
                    if v != 0 {
                        self.data.push((GUEST_BASE + (off as u64) + 8 * i as u64, v));
                    }
                }
            }
            Stmt::Assign(name, e, line) => {
                let off = self.scalar_off(name, *line)?;
                let v = self.eval_val(e, 0)?;
                self.ins.push(Ins::Store { src: v, base: GP, off });
            }
            Stmt::ArrayAssign(name, idx, e, line) => {
                let off = self.array_off(name, *line)?;
                match self.eval_val(idx, 0)? {
                    Val::Imm(k) => {
                        let v = self.eval_val(e, 0)?;
                        self.ins.push(Ins::Store {
                            src: v,
                            base: GP,
                            off: off + k.wrapping_mul(8),
                        });
                    }
                    Val::Reg(addr) => {
                        self.ins.push(Ins::Bin {
                            op: BinOp::Shl,
                            dst: addr,
                            lhs: addr,
                            rhs: Val::Imm(3),
                        });
                        let v = self.eval_val(e, 1)?;
                        self.ins.push(Ins::Store {
                            src: v,
                            base: addr,
                            off: (GUEST_BASE as i64) + off,
                        });
                    }
                }
            }
            Stmt::While(cond, body) => {
                let top = self.new_label();
                let exit = self.new_label();
                self.ins.push(Ins::Label { id: top, align: true });
                self.branch_if_false(cond, exit)?;
                for s in body {
                    self.stmt(s)?;
                }
                self.ins.push(Ins::Jmp { target: top });
                self.ins.push(Ins::Label { id: exit, align: false });
            }
            Stmt::If(cond, then, els) => {
                let else_l = self.new_label();
                self.branch_if_false(cond, else_l)?;
                for s in then {
                    self.stmt(s)?;
                }
                if els.is_empty() {
                    self.ins.push(Ins::Label { id: else_l, align: false });
                } else {
                    let end = self.new_label();
                    self.ins.push(Ins::Jmp { target: end });
                    self.ins.push(Ins::Label { id: else_l, align: false });
                    for s in els {
                        self.stmt(s)?;
                    }
                    self.ins.push(Ins::Label { id: end, align: false });
                }
            }
        }
        Ok(())
    }
}

/// Lowers a parsed program to linear IR.
pub(crate) fn lower(stmts: &[Stmt], options: &Options) -> Result<Lowered, CompileError> {
    let mut cx = LowerCtx {
        ins: Vec::new(),
        data: Vec::new(),
        syms: HashMap::new(),
        order: Vec::new(),
        next_off: 0,
        labels: 0,
        iters: options.iters,
    };
    for s in stmts {
        cx.stmt(s)?;
    }
    cx.ins.push(Ins::Halt);
    let symbols = cx
        .order
        .iter()
        .map(|name| {
            let (off, len) = match cx.syms[name] {
                Sym::Scalar { off } => (off, 1),
                Sym::Array { off, len } => (off, len),
            };
            Symbol { name: name.clone(), addr: GUEST_BASE + off as u64, len }
        })
        .collect();
    Ok(Lowered { ins: cx.ins, data: cx.data, symbols })
}

/// Assembles optimized IR into a [`Program`].
pub(crate) fn emit(ins: &[Ins], data: &[(u64, i64)]) -> Result<Program, CompileError> {
    // Internal invariant: every branch target has a surviving Label.
    let defined: std::collections::HashSet<usize> = ins
        .iter()
        .filter_map(|i| match i {
            Ins::Label { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    for i in ins {
        let target = match i {
            Ins::CmpBr { target, .. } | Ins::Jmp { target } => *target,
            _ => continue,
        };
        if !defined.contains(&target) {
            return Err(CompileError::Internal(format!(
                "branch to deleted label {target}"
            )));
        }
    }

    let mut b = ProgramBuilder::new(ENTRY);
    b.mov_imm(Reg::int(GP), GUEST_BASE as i64);
    for &(addr, value) in data {
        b.word(addr, value);
    }
    let mut labels: HashMap<usize, scc_isa::Label> = HashMap::new();
    macro_rules! lbl {
        ($id:expr) => {{
            let id = $id;
            match labels.get(&id) {
                Some(l) => *l,
                None => {
                    let l = b.label();
                    labels.insert(id, l);
                    l
                }
            }
        }};
    }
    for i in ins {
        match i {
            Ins::Label { id, align } => {
                if *align {
                    b.align_region();
                }
                let l = lbl!(*id);
                b.bind(l);
            }
            Ins::MovImm { dst, imm } => b.mov_imm(Reg::int(*dst), *imm),
            Ins::Mov { dst, src } => b.mov(Reg::int(*dst), Reg::int(*src)),
            Ins::Bin { op, dst, lhs, rhs } => {
                let (d, l) = (Reg::int(*dst), Reg::int(*lhs));
                match (op, rhs) {
                    (BinOp::Add, Val::Reg(r)) => b.add(d, l, Reg::int(*r)),
                    (BinOp::Add, Val::Imm(k)) => b.add_imm(d, l, *k),
                    (BinOp::Sub, Val::Reg(r)) => b.sub(d, l, Reg::int(*r)),
                    (BinOp::Sub, Val::Imm(k)) => b.sub_imm(d, l, *k),
                    (BinOp::And, Val::Reg(r)) => b.and(d, l, Reg::int(*r)),
                    (BinOp::And, Val::Imm(k)) => b.and_imm(d, l, *k),
                    (BinOp::Or, Val::Reg(r)) => b.or(d, l, Reg::int(*r)),
                    (BinOp::Or, Val::Imm(k)) => b.or_imm(d, l, *k),
                    (BinOp::Xor, Val::Reg(r)) => b.xor(d, l, Reg::int(*r)),
                    (BinOp::Xor, Val::Imm(k)) => b.xor_imm(d, l, *k),
                    (BinOp::Shl, Val::Reg(r)) => b.shl(d, l, Reg::int(*r)),
                    (BinOp::Shl, Val::Imm(k)) => b.shl_imm(d, l, *k),
                    (BinOp::Sar, Val::Reg(r)) => b.sar(d, l, Reg::int(*r)),
                    (BinOp::Sar, Val::Imm(k)) => b.sar_imm(d, l, *k),
                    (BinOp::Mul, Val::Reg(r)) => b.mul(d, l, Reg::int(*r)),
                    (BinOp::Div, Val::Reg(r)) => b.div(d, l, Reg::int(*r)),
                    (BinOp::Rem, Val::Reg(r)) => b.rem(d, l, Reg::int(*r)),
                    (BinOp::Mul | BinOp::Div | BinOp::Rem, Val::Imm(_)) => {
                        return Err(CompileError::Internal(
                            "mul/div/rem with immediate operand".to_string(),
                        ))
                    }
                }
            }
            Ins::Un { op, dst, src } => match op {
                UnOp::Not => b.not(Reg::int(*dst), Reg::int(*src)),
                UnOp::Neg => b.neg(Reg::int(*dst), Reg::int(*src)),
                UnOp::LogNot => {
                    return Err(CompileError::Internal("raw LogNot in IR".to_string()))
                }
            },
            Ins::SetCmp { cond, dst, lhs, rhs } => {
                match rhs {
                    Val::Reg(r) => b.cmp(Reg::int(*lhs), Reg::int(*r)),
                    Val::Imm(k) => b.cmp_imm(Reg::int(*lhs), *k),
                }
                b.setcc(*cond, Reg::int(*dst));
            }
            Ins::Load { dst, base, off } => b.load(Reg::int(*dst), Reg::int(*base), *off),
            Ins::Store { src, base, off } => match src {
                Val::Reg(r) => b.store(Reg::int(*r), Reg::int(*base), *off),
                Val::Imm(k) => b.store_imm(*k, Reg::int(*base), *off),
            },
            Ins::CmpBr { cond, lhs, rhs, target } => {
                let t = lbl!(*target);
                match rhs {
                    Val::Reg(r) => b.cmp_br(*cond, Reg::int(*lhs), Reg::int(*r), t),
                    Val::Imm(k) => b.cmp_br_imm(*cond, Reg::int(*lhs), *k, t),
                }
            }
            Ins::Jmp { target } => {
                let t = lbl!(*target);
                b.jmp(t);
            }
            Ins::Halt => b.halt(),
        }
    }
    b.try_build().map_err(CompileError::Build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Opt;

    fn lower_src(src: &str) -> Lowered {
        let stmts = parse(src).unwrap();
        lower(&stmts, &Options { opt: Opt::O0, iters: 7 }).unwrap()
    }

    #[test]
    fn scalars_are_gp_relative() {
        let l = lower_src("let a = 5; let b = a;");
        assert!(l
            .ins
            .iter()
            .any(|i| matches!(i, Ins::Store { src: Val::Imm(5), base: GP, off: 0 })));
        assert!(l.ins.iter().any(|i| matches!(i, Ins::Load { base: GP, off: 0, .. })));
        assert_eq!(l.symbols.len(), 2);
        assert_eq!(l.symbols[1].addr, GUEST_BASE + 8);
    }

    #[test]
    fn iters_builtin_is_a_constant() {
        let l = lower_src("let n = ITERS;");
        assert!(l.ins.iter().any(|i| matches!(i, Ins::MovImm { imm: 7, .. })));
    }

    #[test]
    fn constant_array_index_uses_static_offset() {
        let l = lower_src("array a[4]; a[2] = 9; let x = a[3];");
        assert!(l
            .ins
            .iter()
            .any(|i| matches!(i, Ins::Store { src: Val::Imm(9), base: GP, off: 16 })));
        assert!(l.ins.iter().any(|i| matches!(i, Ins::Load { base: GP, off: 24, .. })));
    }

    #[test]
    fn array_initializers_become_init_data() {
        let l = lower_src("let pad = 0; array a[3] = { 10, 0, 30 };");
        // Zero entries are skipped (memory defaults to zero).
        assert_eq!(l.data, vec![(GUEST_BASE + 8, 10), (GUEST_BASE + 24, 30)]);
    }

    #[test]
    fn while_lowers_to_negated_guard() {
        let l = lower_src("let i = 0; while (i < 9) { i = i + 1; }");
        assert!(l
            .ins
            .iter()
            .any(|i| matches!(i, Ins::CmpBr { cond: Cond::Ge, rhs: Val::Imm(9), .. })));
        assert!(l.ins.iter().any(|i| matches!(i, Ins::Label { align: true, .. })));
    }

    #[test]
    fn semantic_errors_are_typed() {
        let bad = [
            "x = 1;",
            "let a = 1; let a = 2;",
            "let ITERS = 1;",
            "array a[4]; let x = a;",
            "let s = 1; s[0] = 2;",
            "let y = nope[1];",
        ];
        for src in bad {
            let stmts = parse(src).unwrap();
            match lower(&stmts, &Options::default()) {
                Err(CompileError::Semantic { .. }) => {}
                other => panic!("{src}: expected semantic error, got {other:?}"),
            }
        }
    }

    #[test]
    fn deep_expressions_are_rejected_not_miscompiled() {
        let mut e = String::from("1");
        for _ in 0..12 {
            e = format!("(2 + ({e} * 3))");
        }
        let stmts = parse(&format!("let x = {e};")).unwrap();
        match lower(&stmts, &Options::default()) {
            Err(CompileError::TooComplex { .. }) => {}
            other => panic!("expected TooComplex, got {other:?}"),
        }
    }

    #[test]
    fn emit_produces_a_valid_program() {
        let l = lower_src("let i = 0; while (i < 4) { i = i + 1; }");
        let p = emit(&l.ins, &l.data).unwrap();
        assert_eq!(p.entry(), ENTRY);
        let mut m = scc_isa::Machine::new(&p);
        let r = m.run(100_000).unwrap();
        assert!(r.halted);
        assert_eq!(m.mem().read(GUEST_BASE), 4);
    }
}
