//! The committed guest-program corpus.
//!
//! Six example programs exercising distinct real-program shapes, each
//! embedded at build time from `crates/lang/guest/*.sccl`. The corpus
//! is the bridge to the rest of the system: `scc-workloads` registers
//! every entry as a first-class workload (compiled at `O2` with an
//! outer-loop count scaled from the workload `Scale`), the golden
//! lowering tests pin each entry's compiled bytes, and the differential
//! fuzzer uses them as its seed shapes.

use crate::{compile, Compiled, CompileError, Opt, Options};

/// One committed guest program.
#[derive(Clone, Copy, Debug)]
pub struct GuestProgram {
    /// Short stable name; workload names prefix it with `g_`.
    pub name: &'static str,
    /// Source file name under `crates/lang/guest/`.
    pub file: &'static str,
    /// The embedded source text.
    pub source: &'static str,
    /// Outer-loop iterations per unit of workload scale: a workload at
    /// scale `s` runs the program with `ITERS = max(1, s / divisor)`.
    /// Larger divisors compensate for heavier per-round bodies so all
    /// corpus workloads land in the same dynamic-length band as the
    /// synthetic suite.
    pub scale_divisor: i64,
    /// What real-program shape this models.
    pub description: &'static str,
}

impl GuestProgram {
    /// The `ITERS` value for a given workload scale.
    pub fn iters_at(&self, scale_iters: i64) -> i64 {
        (scale_iters / self.scale_divisor).max(1)
    }

    /// Compiles this program at the given opt level and `ITERS`.
    pub fn compile(&self, opt: Opt, iters: i64) -> Result<Compiled, CompileError> {
        compile(self.source, &Options { opt, iters })
    }
}

/// All committed guest programs, in registry order.
pub const CORPUS: &[GuestProgram] = &[
    GuestProgram {
        name: "sort",
        file: "sort.sccl",
        source: include_str!("../guest/sort.sccl"),
        scale_divisor: 16,
        description: "insertion sort: data-dependent branches + element moves",
    },
    GuestProgram {
        name: "sieve",
        file: "sieve.sccl",
        source: include_str!("../guest/sieve.sccl"),
        scale_divisor: 16,
        description: "Eratosthenes sieve: flag-array stores with data-dependent stride",
    },
    GuestProgram {
        name: "matmul",
        file: "matmul.sccl",
        source: include_str!("../guest/matmul.sccl"),
        scale_divisor: 16,
        description: "4x4 integer matmul: multiply-accumulate + 2-D indexing",
    },
    GuestProgram {
        name: "search",
        file: "search.sccl",
        source: include_str!("../guest/search.sccl"),
        scale_divisor: 16,
        description: "substring search: short early-exit inner loops",
    },
    GuestProgram {
        name: "interp",
        file: "interp.sccl",
        source: include_str!("../guest/interp.sccl"),
        scale_divisor: 16,
        description: "bytecode interpreter: dispatch over an invariant code table",
    },
    GuestProgram {
        name: "cksum",
        file: "cksum.sccl",
        source: include_str!("../guest/cksum.sccl"),
        scale_divisor: 16,
        description: "Adler-style checksum: serial modular recurrences",
    },
];

/// Looks up a corpus entry by its short name.
pub fn find(name: &str) -> Option<&'static GuestProgram> {
    CORPUS.iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::Machine;

    #[test]
    fn every_corpus_program_compiles_at_every_level_and_halts() {
        for g in CORPUS {
            for opt in Opt::ALL {
                let c = g
                    .compile(opt, 3)
                    .unwrap_or_else(|e| panic!("{} at {}: {e}", g.name, opt.name()));
                let mut m = Machine::new(&c.program);
                let r = m
                    .run(10_000_000)
                    .unwrap_or_else(|e| panic!("{} at {}: {e}", g.name, opt.name()));
                assert!(r.halted, "{} at {} did not halt", g.name, opt.name());
            }
        }
    }

    #[test]
    fn opt_levels_agree_on_final_memory() {
        for g in CORPUS {
            let mut snapshots = Vec::new();
            for opt in Opt::ALL {
                let c = g.compile(opt, 5).unwrap();
                let mut m = Machine::new(&c.program);
                m.run(10_000_000).unwrap();
                // Compare every guest-visible variable, not raw machine
                // state (register allocation differs across levels).
                let mem: Vec<(String, Vec<i64>)> = c
                    .symbols
                    .iter()
                    .map(|s| {
                        let words =
                            (0..s.len).map(|i| m.mem().read(s.addr + 8 * i as u64)).collect();
                        (s.name.clone(), words)
                    })
                    .collect();
                snapshots.push(mem);
            }
            assert_eq!(snapshots[0], snapshots[1], "{}: O0 vs O1", g.name);
            assert_eq!(snapshots[1], snapshots[2], "{}: O1 vs O2", g.name);
        }
    }

    #[test]
    fn corpus_results_are_the_expected_values() {
        // Hand-checked results pin guest semantics end to end.
        let read = |name: &str, var: &str, iters: i64| -> i64 {
            let g = find(name).unwrap();
            let c = g.compile(Opt::O2, iters).unwrap();
            let s = c.symbols.iter().find(|s| s.name == var).unwrap();
            let mut m = Machine::new(&c.program);
            assert!(m.run(50_000_000).unwrap().halted);
            m.mem().read(s.addr)
        };
        assert_eq!(read("sieve", "primes", 2), 18, "primes below 64");
        // The needle is planted once per round and found exactly once.
        assert_eq!(read("search", "found", 4), 4);

        // Reference models written independently of the compiler.
        let interp_expected = {
            let code = [1i64, 3, 2, 5, 1, 2, 4, 1, 3, 5, 2, 1, 4, 3, 1, 0];
            let mut acc = 0i64;
            for &op in &code {
                match op {
                    0 => break,
                    1 => acc += 7,
                    2 => acc *= 3,
                    3 => acc -= 2,
                    4 => acc ^= 21,
                    _ => acc >>= 1,
                }
            }
            acc
        };
        assert_eq!(read("interp", "sum", 1), interp_expected);

        let cksum_expected = {
            let (mut s1, mut s2) = (1i64, 0i64);
            for f in 0..32i64 {
                s1 = (s1 + ((f * 97 + 13) & 0xff)) % 65521;
                s2 = (s2 + s1) % 65521;
            }
            (s2 << 16) | s1
        };
        assert_eq!(read("cksum", "cksum", 1), cksum_expected);
    }

    #[test]
    fn corpus_names_are_unique_and_findable() {
        let mut names: Vec<_> = CORPUS.iter().map(|g| g.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CORPUS.len());
        assert!(find("sort").is_some());
        assert!(find("nope").is_none());
    }
}
