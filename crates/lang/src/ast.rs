//! Abstract syntax for the guest language.
//!
//! The language is a minimal imperative core: 64-bit integer scalars,
//! fixed-size integer arrays, `while`/`if`-`else` control flow, and C-like
//! expressions. All arithmetic is two's-complement wrapping `i64`, shifts
//! mask their amount to 6 bits, and division by zero yields 0 — exactly
//! the semantics of the target micro-op ISA (`scc_isa::semantics`), so
//! constant folding in the compiler can never disagree with the machine.

/// Binary arithmetic/logic operators (comparisons are [`CmpOp`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (wrapping).
    Add,
    /// `-` (wrapping).
    Sub,
    /// `*` (wrapping).
    Mul,
    /// `/` (0 on division by zero).
    Div,
    /// `%` (0 on division by zero).
    Rem,
    /// `&`.
    And,
    /// `|`.
    Or,
    /// `^`.
    Xor,
    /// `<<` (amount masked to 6 bits).
    Shl,
    /// `>>` (arithmetic; amount masked to 6 bits).
    Sar,
}

/// Comparison operators; each evaluates to 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<` (signed).
    Lt,
    /// `<=` (signed).
    Le,
    /// `>` (signed).
    Gt,
    /// `>=` (signed).
    Ge,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-` (wrapping negate).
    Neg,
    /// `~` (bitwise not).
    Not,
    /// `!` (logical not: 1 if zero, else 0).
    LogNot,
}

/// An expression node, annotated with its source line.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Scalar variable read (or the `ITERS` builtin).
    Var(String, usize),
    /// Array element read `name[index]`.
    Index(String, Box<Expr>, usize),
    /// Unary operator application.
    Un(UnOp, Box<Expr>),
    /// Binary arithmetic/logic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison producing 0/1.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
}

/// A statement, annotated with its source line where errors can occur.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let name = expr;` — declares and initializes a scalar.
    Let(String, Expr, usize),
    /// `array name[len];` or `array name[len] = { v, ... };` — declares a
    /// fixed-size array, optionally with constant initial values (unset
    /// trailing elements are 0).
    ArrayDecl(String, usize, Vec<i64>, usize),
    /// `name = expr;` — assigns a scalar.
    Assign(String, Expr, usize),
    /// `name[index] = expr;` — assigns an array element.
    ArrayAssign(String, Expr, Expr, usize),
    /// `while (cond) { ... }`.
    While(Expr, Vec<Stmt>),
    /// `if (cond) { ... } else { ... }` (else optional).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
}
