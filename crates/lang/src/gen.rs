//! Seeded random guest-program generator for differential fuzzing.
//!
//! [`generate`] produces syntactically valid, **terminating** guest
//! source from a seed: loops are only ever emitted in the bounded shape
//! `iN = 0; while (iN < K) { ...; iN = iN + 1; }` with `K <= 20` and
//! the loop counter never reassigned in the body (counters live in a
//! reserved pool the statement generator cannot write), so every
//! generated program halts by construction. Everything else —
//! expression shapes, operators (including `/` and `%` with
//! data-dependent divisors), array indices clamped by masking, nested
//! `if`/`else` — is fair game.
//!
//! The fuzzer (`scc-check --guest`) compiles each generated program at
//! `O0`/`O1`/`O2`, runs all three, and compares the final guest-visible
//! memory; any divergence is a compiler bug, reproducible from the seed
//! alone.

use std::fmt::Write as _;

/// Number of pre-declared loop counters (`i1`..`i{MAX_LOOPS}`).
const MAX_LOOPS: usize = 12;

const MAX_EXPR_DEPTH: usize = 3;

/// Deterministic xorshift64* stream; the whole program derives from the
/// initial seed.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator stream from a seed (0 is remapped).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct Gen {
    rng: Rng,
    out: String,
    scalars: Vec<String>,
    arrays: Vec<(String, usize)>,
    next_var: usize,
    loops_used: usize,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_var += 1;
        format!("{prefix}{}", self.next_var)
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("    ");
        }
    }

    /// An expression over declared variables, literals, and operators.
    fn expr(&mut self, depth: usize) -> String {
        let leaf = depth >= MAX_EXPR_DEPTH || self.rng.below(3) == 0;
        if leaf {
            match self.rng.below(4) {
                0 => {
                    let i = self.rng.below(self.scalars.len() as u64) as usize;
                    self.scalars[i].clone()
                }
                1 => {
                    let i = self.rng.below(self.arrays.len() as u64) as usize;
                    let (name, len) = self.arrays[i].clone();
                    // Mask the index into range: lengths are powers of two.
                    let idx = self.expr_leaf();
                    format!("{name}[({idx}) & {}]", len - 1)
                }
                _ => (self.rng.next() as i64 % 1000).to_string(),
            }
        } else {
            match self.rng.below(10) {
                0..=5 => {
                    let op = ["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"]
                        [self.rng.below(10) as usize];
                    let l = self.expr(depth + 1);
                    let r = self.expr(depth + 1);
                    format!("({l} {op} {r})")
                }
                6 | 7 => {
                    let op = ["==", "!=", "<", "<=", ">", ">="][self.rng.below(6) as usize];
                    let l = self.expr(depth + 1);
                    let r = self.expr(depth + 1);
                    format!("(({l}) {op} ({r}))")
                }
                _ => {
                    let op = ["-", "~", "!"][self.rng.below(3) as usize];
                    let e = self.expr(depth + 1);
                    format!("{op}({e})")
                }
            }
        }
    }

    /// A cheap leaf expression for array indices.
    fn expr_leaf(&mut self) -> String {
        if self.rng.below(2) == 0 {
            let i = self.rng.below(self.scalars.len() as u64) as usize;
            self.scalars[i].clone()
        } else {
            self.rng.below(64).to_string()
        }
    }

    fn block(&mut self, depth: usize, budget: usize) {
        let mut inner = budget;
        while inner > 0 {
            self.stmt(depth, &mut inner);
        }
    }

    fn stmt(&mut self, depth: usize, budget: &mut usize) {
        debug_assert!(*budget > 0);
        *budget -= 1;
        match self.rng.below(10) {
            // Declarations only at top level: a `let` inside a loop body
            // would be lowered once but is clearer kept flat, and arrays
            // keep the address map stable.
            0 | 1 if depth == 1 => {
                if self.rng.below(4) == 0 {
                    let name = self.fresh("a");
                    let len = 1usize << (2 + self.rng.below(3)); // 4..16
                    self.indent(depth);
                    let _ = writeln!(self.out, "array {name}[{len}];");
                    self.arrays.push((name, len));
                } else {
                    let name = self.fresh("v");
                    let e = self.expr(1);
                    self.indent(depth);
                    let _ = writeln!(self.out, "let {name} = {e};");
                    self.scalars.push(name);
                }
            }
            // Bounded loop: counter from the reserved pool, constant
            // bound, increment pinned at the bottom. The pool is not in
            // `scalars`, so no generated statement can write a counter.
            2 | 3 if depth < 3 && self.loops_used < MAX_LOOPS => {
                self.loops_used += 1;
                let i = format!("i{}", self.loops_used);
                let k = 2 + self.rng.below(19);
                self.indent(depth);
                let _ = writeln!(self.out, "{i} = 0;");
                self.indent(depth);
                let _ = writeln!(self.out, "while ({i} < {k}) {{");
                let inner = (*budget).min(4);
                self.block(depth + 1, inner);
                self.indent(depth + 1);
                let _ = writeln!(self.out, "{i} = {i} + 1;");
                self.indent(depth);
                let _ = writeln!(self.out, "}}");
            }
            4 if depth < 3 => {
                let cond = self.expr(1);
                self.indent(depth);
                let _ = writeln!(self.out, "if ({cond}) {{");
                self.block(depth + 1, (*budget).min(3));
                if self.rng.below(2) == 0 {
                    self.indent(depth);
                    let _ = writeln!(self.out, "}} else {{");
                    self.block(depth + 1, (*budget).min(2));
                }
                self.indent(depth);
                let _ = writeln!(self.out, "}}");
            }
            n => {
                if n >= 8 {
                    let i = self.rng.below(self.arrays.len() as u64) as usize;
                    let (name, len) = self.arrays[i].clone();
                    let idx = self.expr_leaf();
                    let e = self.expr(1);
                    self.indent(depth);
                    let _ = writeln!(self.out, "{name}[({idx}) & {}] = {e};", len - 1);
                } else {
                    let i = self.rng.below(self.scalars.len() as u64) as usize;
                    let name = self.scalars[i].clone();
                    let e = self.expr(1);
                    self.indent(depth);
                    let _ = writeln!(self.out, "{name} = {e};");
                }
            }
        }
    }
}

/// Generates a terminating guest program from `seed`.
pub fn generate(seed: u64) -> String {
    let mut g = Gen {
        rng: Rng::new(seed),
        out: format!("# generated: seed {seed}\n"),
        scalars: Vec::new(),
        arrays: Vec::new(),
        next_var: 0,
        loops_used: 0,
    };
    // Seed material so the first statements have operands to chew on,
    // plus the reserved loop-counter pool.
    g.out.push_str("let x1 = 3; let x2 = 250; let x3 = -7;\narray m[8];\n");
    g.scalars.extend(["x1".into(), "x2".into(), "x3".into()]);
    g.arrays.push(("m".into(), 8));
    for n in 1..=MAX_LOOPS {
        let _ = writeln!(g.out, "let i{n} = 0;");
    }
    let budget = 10 + (g.rng.below(25) as usize);
    g.block(1, budget);
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, Opt, Options};
    use scc_isa::Machine;

    #[test]
    fn generated_programs_compile_run_and_agree_across_levels() {
        for seed in 0..60u64 {
            let src = generate(seed);
            let mut mems = Vec::new();
            for opt in Opt::ALL {
                let c = compile(&src, &Options { opt, iters: 1 })
                    .unwrap_or_else(|e| panic!("seed {seed} at {}: {e}\n{src}", opt.name()));
                let mut m = Machine::new(&c.program);
                let r = m
                    .run(20_000_000)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
                assert!(r.halted, "seed {seed} did not halt (bounded loops!)\n{src}");
                let mem: Vec<Vec<i64>> = c
                    .symbols
                    .iter()
                    .map(|s| (0..s.len).map(|i| m.mem().read(s.addr + 8 * i as u64)).collect())
                    .collect();
                mems.push(mem);
            }
            assert_eq!(mems[0], mems[1], "seed {seed}: O0 vs O1 diverge\n{src}");
            assert_eq!(mems[1], mems[2], "seed {seed}: O1 vs O2 diverge\n{src}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(42), generate(42));
        assert_ne!(generate(42), generate(43));
    }
}
