//! Staged local peephole passes over the linear IR.
//!
//! Three passes, mirroring a classic local-optimization pipeline:
//!
//! 1. **Constant folding & propagation** ([`const_fold`]): per-block known
//!    constant tracking; folds ALU/compare results, rewrites
//!    register operands to immediates where the ISA has an immediate form,
//!    resolves constant-index array addressing back to `GP`-relative
//!    accesses, and turns decided compare-and-branches into `jmp`s (or
//!    deletes them).
//! 2. **Redundant-load elision** ([`load_elim`]): per-block store-to-load
//!    forwarding and repeated-load CSE over `GP`-relative slots; loads
//!    whose value is already in a register become moves (or vanish), and
//!    stored constants forward straight into `movi`.
//! 3. **Branch simplification** ([`simplify_branches`]): jump threading
//!    through trivial trampolines, deletion of branches to the immediately
//!    following address, unreachable-code sweeping, and unreferenced-label
//!    pruning.
//!
//! All three are *local*: constant and availability state resets at every
//! label, so correctness never depends on control-flow analysis. Folding
//! evaluates through [`scc_isa::semantics`], so a folded constant is
//! bit-identical to what the machine would compute.
//!
//! The passes rely on two lowering invariants (see [`crate::lower`]): `GP`
//! (`r15`) is constant after the prologue, and no instruction reads
//! condition codes produced by an earlier instruction.

use crate::ast::UnOp;
use crate::lower::{eval_bin, has_imm_form, Ins, Val, GP, GUEST_BASE};
use scc_isa::{eval_cond, CcFlags};
use std::collections::HashMap;

const NUM_REGS: usize = 16;

/// Constant folding and propagation (pass 1). See module docs.
pub(crate) fn const_fold(ins: &mut Vec<Ins>) {
    let mut known: [Option<i64>; NUM_REGS] = [None; NUM_REGS];
    known[GP as usize] = Some(GUEST_BASE as i64);
    let reset = |known: &mut [Option<i64>; NUM_REGS]| {
        *known = [None; NUM_REGS];
        known[GP as usize] = Some(GUEST_BASE as i64);
    };
    let mut out = Vec::with_capacity(ins.len());
    for i in ins.drain(..) {
        match i {
            Ins::Label { .. } => {
                reset(&mut known);
                out.push(i);
            }
            Ins::MovImm { dst, imm } => {
                known[dst as usize] = Some(imm);
                out.push(i);
            }
            Ins::Mov { dst, src } => match known[src as usize] {
                Some(v) => {
                    known[dst as usize] = Some(v);
                    out.push(Ins::MovImm { dst, imm: v });
                }
                None => {
                    known[dst as usize] = None;
                    out.push(i);
                }
            },
            Ins::Bin { op, dst, lhs, mut rhs } => {
                let rv = value_of(rhs, &known);
                match (known[lhs as usize], rv) {
                    (Some(a), Some(b)) => {
                        let v = eval_bin(op, a, b);
                        known[dst as usize] = Some(v);
                        out.push(Ins::MovImm { dst, imm: v });
                    }
                    _ => {
                        if has_imm_form(op) {
                            if let (Val::Reg(_), Some(k)) = (rhs, rv) {
                                rhs = Val::Imm(k);
                            }
                        }
                        known[dst as usize] = None;
                        out.push(Ins::Bin { op, dst, lhs, rhs });
                    }
                }
            }
            Ins::Un { op, dst, src } => match known[src as usize] {
                Some(a) => {
                    let v = match op {
                        UnOp::Not => !a,
                        UnOp::Neg => a.wrapping_neg(),
                        UnOp::LogNot => i64::from(a == 0),
                    };
                    known[dst as usize] = Some(v);
                    out.push(Ins::MovImm { dst, imm: v });
                }
                None => {
                    known[dst as usize] = None;
                    out.push(i);
                }
            },
            Ins::SetCmp { cond, dst, lhs, mut rhs } => {
                let rv = value_of(rhs, &known);
                match (known[lhs as usize], rv) {
                    (Some(a), Some(b)) => {
                        let v = i64::from(eval_cond(cond, CcFlags::from_cmp(a, b)));
                        known[dst as usize] = Some(v);
                        out.push(Ins::MovImm { dst, imm: v });
                    }
                    _ => {
                        if let (Val::Reg(_), Some(k)) = (rhs, rv) {
                            rhs = Val::Imm(k);
                        }
                        known[dst as usize] = None;
                        out.push(Ins::SetCmp { cond, dst, lhs, rhs });
                    }
                }
            }
            Ins::Load { dst, base, off } => {
                let (base, off) = canonical_slot(base, off, &known);
                known[dst as usize] = None;
                out.push(Ins::Load { dst, base, off });
            }
            Ins::Store { mut src, base, off } => {
                if let Val::Reg(r) = src {
                    if let Some(k) = known[r as usize] {
                        src = Val::Imm(k);
                    }
                }
                let (base, off) = canonical_slot(base, off, &known);
                out.push(Ins::Store { src, base, off });
            }
            Ins::CmpBr { cond, lhs, mut rhs, target } => {
                let rv = value_of(rhs, &known);
                match (known[lhs as usize], rv) {
                    (Some(a), Some(b)) => {
                        if eval_cond(cond, CcFlags::from_cmp(a, b)) {
                            out.push(Ins::Jmp { target });
                            reset(&mut known);
                        }
                        // Never-taken branches vanish entirely.
                    }
                    _ => {
                        if let (Val::Reg(_), Some(k)) = (rhs, rv) {
                            rhs = Val::Imm(k);
                        }
                        out.push(Ins::CmpBr { cond, lhs, rhs, target });
                    }
                }
            }
            Ins::Jmp { .. } => {
                out.push(i);
                reset(&mut known);
            }
            Ins::Halt => out.push(i),
        }
    }
    *ins = out;
}

fn value_of(v: Val, known: &[Option<i64>; NUM_REGS]) -> Option<i64> {
    match v {
        Val::Imm(k) => Some(k),
        Val::Reg(r) => known[r as usize],
    }
}

/// Rewrites an access through a register holding a known absolute address
/// into the canonical `GP`-relative form, so load elision sees one name
/// per memory slot.
fn canonical_slot(base: u8, off: i64, known: &[Option<i64>; NUM_REGS]) -> (u8, i64) {
    if base == GP {
        return (base, off);
    }
    match known[base as usize] {
        Some(c) => (GP, c.wrapping_add(off).wrapping_sub(GUEST_BASE as i64)),
        None => (base, off),
    }
}

/// Redundant-load elision (pass 2). See module docs.
pub(crate) fn load_elim(ins: &mut Vec<Ins>) {
    // mem[GP+off] is in this register / is this constant.
    let mut in_reg: HashMap<i64, u8> = HashMap::new();
    let mut is_const: HashMap<i64, i64> = HashMap::new();
    let mut out = Vec::with_capacity(ins.len());
    for i in ins.drain(..) {
        match i {
            Ins::Label { .. } => {
                in_reg.clear();
                is_const.clear();
                out.push(i);
            }
            Ins::Load { dst, base, off } if base == GP => {
                if let Some(&k) = is_const.get(&off) {
                    in_reg.retain(|_, r| *r != dst);
                    in_reg.insert(off, dst);
                    out.push(Ins::MovImm { dst, imm: k });
                } else if let Some(&r) = in_reg.get(&off) {
                    if r != dst {
                        in_reg.retain(|_, v| *v != dst);
                        in_reg.insert(off, r);
                        out.push(Ins::Mov { dst, src: r });
                    }
                    // r == dst: the value is already there; drop the load.
                } else {
                    in_reg.retain(|_, r| *r != dst);
                    in_reg.insert(off, dst);
                    out.push(i);
                }
            }
            Ins::Store { src, base, off } if base == GP => {
                in_reg.remove(&off);
                is_const.remove(&off);
                match src {
                    Val::Reg(r) => {
                        in_reg.insert(off, r);
                    }
                    Val::Imm(k) => {
                        is_const.insert(off, k);
                    }
                }
                out.push(i);
            }
            Ins::Store { .. } => {
                // A store through a computed address may alias any slot.
                in_reg.clear();
                is_const.clear();
                out.push(i);
            }
            _ => {
                if let Some(dst) = i.def() {
                    in_reg.retain(|_, r| *r != dst);
                }
                out.push(i);
            }
        }
    }
    *ins = out;
}

/// Branch simplification and dead-code sweeping (pass 3). See module docs.
pub(crate) fn simplify_branches(ins: &mut Vec<Ins>) {
    for _ in 0..16 {
        let mut changed = false;

        // Jump threading: a branch to a label whose first real instruction
        // is `jmp M` goes straight to M.
        let trampoline: HashMap<usize, usize> = {
            let mut t = HashMap::new();
            for (idx, i) in ins.iter().enumerate() {
                if let Ins::Label { id, .. } = i {
                    let mut j = idx + 1;
                    while matches!(ins.get(j), Some(Ins::Label { .. })) {
                        j += 1;
                    }
                    if let Some(Ins::Jmp { target }) = ins.get(j) {
                        if *target != *id {
                            t.insert(*id, *target);
                        }
                    }
                }
            }
            t
        };
        for i in ins.iter_mut() {
            let target = match i {
                Ins::CmpBr { target, .. } | Ins::Jmp { target } => target,
                _ => continue,
            };
            let mut seen = vec![*target];
            while let Some(&next) = trampoline.get(target) {
                if seen.contains(&next) {
                    break;
                }
                seen.push(next);
                *target = next;
                changed = true;
            }
        }

        // Branches to the immediately following address are no-ops. (The
        // compare side effect on flags is dead by the lowering invariant.)
        let mut keep = vec![true; ins.len()];
        for (idx, i) in ins.iter().enumerate() {
            let target = match i {
                Ins::CmpBr { target, .. } | Ins::Jmp { target } => *target,
                _ => continue,
            };
            let mut j = idx + 1;
            while let Some(Ins::Label { id, .. }) = ins.get(j) {
                if *id == target {
                    keep[idx] = false;
                    changed = true;
                    break;
                }
                j += 1;
            }
        }
        retain_mask(ins, &keep);

        // Unreachable sweep: after an unconditional transfer, everything up
        // to the next label is dead. A trailing halt is kept so labels
        // bound at the end of the program still precede an instruction.
        let mut keep = vec![true; ins.len()];
        let mut dead = false;
        for (idx, i) in ins.iter().enumerate() {
            match i {
                Ins::Label { .. } => dead = false,
                Ins::Halt if idx == ins.len() - 1 => {}
                _ if dead => {
                    keep[idx] = false;
                    changed = true;
                }
                Ins::Jmp { .. } | Ins::Halt => dead = true,
                _ => {}
            }
        }
        retain_mask(ins, &keep);

        // Unreferenced labels only cost alignment padding; drop them.
        let referenced: std::collections::HashSet<usize> = ins
            .iter()
            .filter_map(|i| match i {
                Ins::CmpBr { target, .. } | Ins::Jmp { target } => Some(*target),
                _ => None,
            })
            .collect();
        let before = ins.len();
        ins.retain(|i| match i {
            Ins::Label { id, .. } => referenced.contains(id),
            _ => true,
        });
        changed |= ins.len() != before;

        if !changed {
            break;
        }
    }
}

fn retain_mask(ins: &mut Vec<Ins>, keep: &[bool]) {
    let mut idx = 0;
    ins.retain(|_| {
        idx += 1;
        keep[idx - 1]
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;
    use scc_isa::Cond;

    #[test]
    fn fold_evaluates_constant_chains() {
        let mut ins = vec![
            Ins::MovImm { dst: 1, imm: 6 },
            Ins::Bin { op: BinOp::Mul, dst: 1, lhs: 1, rhs: Val::Reg(2) },
            Ins::MovImm { dst: 2, imm: 7 },
            Ins::Bin { op: BinOp::Add, dst: 3, lhs: 2, rhs: Val::Imm(1) },
            Ins::Halt,
        ];
        // r2 unknown at the mul; known at the add.
        const_fold(&mut ins);
        assert!(matches!(ins[1], Ins::Bin { op: BinOp::Mul, .. }));
        assert!(matches!(ins[3], Ins::MovImm { dst: 3, imm: 8 }));
    }

    #[test]
    fn fold_rewrites_reg_operands_to_imm() {
        let mut ins = vec![
            Ins::MovImm { dst: 2, imm: 5 },
            Ins::Load { dst: 1, base: GP, off: 0 },
            Ins::Bin { op: BinOp::Add, dst: 1, lhs: 1, rhs: Val::Reg(2) },
            Ins::Halt,
        ];
        const_fold(&mut ins);
        assert!(matches!(
            ins[2],
            Ins::Bin { op: BinOp::Add, rhs: Val::Imm(5), .. }
        ));
    }

    #[test]
    fn fold_keeps_mul_operands_in_registers() {
        let mut ins = vec![
            Ins::MovImm { dst: 2, imm: 5 },
            Ins::Load { dst: 1, base: GP, off: 0 },
            Ins::Bin { op: BinOp::Mul, dst: 1, lhs: 1, rhs: Val::Reg(2) },
            Ins::Halt,
        ];
        const_fold(&mut ins);
        assert!(matches!(
            ins[2],
            Ins::Bin { op: BinOp::Mul, rhs: Val::Reg(2), .. }
        ));
    }

    #[test]
    fn fold_canonicalizes_constant_indexed_access() {
        // shl r1, r1, 3 with r1 = 2, then load through r1: becomes a
        // GP-relative load at offset 16+base-GUEST_BASE.
        let base = GUEST_BASE as i64 + 40;
        let mut ins = vec![
            Ins::MovImm { dst: 1, imm: 2 },
            Ins::Bin { op: BinOp::Shl, dst: 1, lhs: 1, rhs: Val::Imm(3) },
            Ins::Load { dst: 2, base: 1, off: base },
            Ins::Halt,
        ];
        const_fold(&mut ins);
        assert!(matches!(ins[2], Ins::Load { base: GP, off: 56, .. }));
    }

    #[test]
    fn fold_decides_branches() {
        let mut ins = vec![
            Ins::Label { id: 9, align: false },
            Ins::MovImm { dst: 1, imm: 0 },
            Ins::CmpBr { cond: Cond::Eq, lhs: 1, rhs: Val::Imm(0), target: 9 },
            Ins::MovImm { dst: 2, imm: 1 },
            Ins::CmpBr { cond: Cond::Ne, lhs: 2, rhs: Val::Imm(1), target: 9 },
            Ins::Halt,
        ];
        const_fold(&mut ins);
        assert!(matches!(ins[2], Ins::Jmp { target: 9 }));
        assert!(matches!(ins[3], Ins::MovImm { .. }), "dead branch removed");
        assert!(matches!(ins[4], Ins::Halt));
    }

    #[test]
    fn load_elim_forwards_stores_and_dedups_loads() {
        let mut ins = vec![
            Ins::Store { src: Val::Reg(3), base: GP, off: 8 },
            Ins::Load { dst: 1, base: GP, off: 8 },
            Ins::Load { dst: 2, base: GP, off: 8 },
            Ins::Halt,
        ];
        load_elim(&mut ins);
        assert!(matches!(ins[1], Ins::Mov { dst: 1, src: 3 }));
        assert!(matches!(ins[2], Ins::Mov { dst: 2, src: 3 }));
    }

    #[test]
    fn load_elim_forwards_constant_stores() {
        let mut ins = vec![
            Ins::Store { src: Val::Imm(42), base: GP, off: 0 },
            Ins::Load { dst: 1, base: GP, off: 0 },
            Ins::Halt,
        ];
        load_elim(&mut ins);
        assert!(matches!(ins[1], Ins::MovImm { dst: 1, imm: 42 }));
    }

    #[test]
    fn load_elim_respects_redefinition_and_aliasing() {
        let mut ins = vec![
            Ins::Load { dst: 1, base: GP, off: 0 },
            Ins::MovImm { dst: 1, imm: 9 }, // clobbers the cached copy
            Ins::Load { dst: 2, base: GP, off: 0 },
            Ins::Store { src: Val::Reg(2), base: 4, off: 0 }, // unknown address
            Ins::Load { dst: 3, base: GP, off: 0 },
            Ins::Halt,
        ];
        load_elim(&mut ins);
        assert!(matches!(ins[2], Ins::Load { .. }), "clobbered copy reloads");
        assert!(matches!(ins[4], Ins::Load { .. }), "aliased store invalidates");
    }

    #[test]
    fn load_elim_drops_self_reload() {
        let mut ins = vec![
            Ins::Load { dst: 1, base: GP, off: 0 },
            Ins::Load { dst: 1, base: GP, off: 0 },
            Ins::Halt,
        ];
        load_elim(&mut ins);
        assert_eq!(ins.len(), 2);
    }

    #[test]
    fn branch_simplify_threads_and_sweeps() {
        let mut ins = vec![
            Ins::CmpBr { cond: Cond::Eq, lhs: 1, rhs: Val::Imm(0), target: 0 },
            Ins::MovImm { dst: 1, imm: 1 },
            Ins::Jmp { target: 2 },
            Ins::MovImm { dst: 1, imm: 99 }, // unreachable
            Ins::Label { id: 0, align: false },
            Ins::Jmp { target: 2 }, // trampoline
            Ins::Label { id: 2, align: false },
            Ins::Halt,
        ];
        simplify_branches(&mut ins);
        // The CmpBr is threaded through label 0 to label 2; the trampoline
        // and the unreachable store are gone.
        assert!(matches!(ins[0], Ins::CmpBr { target: 2, .. }));
        assert!(!ins.iter().any(|i| matches!(i, Ins::MovImm { imm: 99, .. })));
        assert!(!ins.iter().any(|i| matches!(i, Ins::Label { id: 0, .. })));
    }

    #[test]
    fn branch_to_next_is_deleted() {
        let mut ins = vec![
            Ins::CmpBr { cond: Cond::Lt, lhs: 1, rhs: Val::Imm(4), target: 7 },
            Ins::Label { id: 7, align: false },
            Ins::Halt,
        ];
        simplify_branches(&mut ins);
        assert!(matches!(ins[0], Ins::Halt), "{ins:?}");
    }

    #[test]
    fn trailing_halt_survives_sweep() {
        let mut ins = vec![
            Ins::Label { id: 1, align: true },
            Ins::Jmp { target: 1 },
            Ins::Halt,
        ];
        simplify_branches(&mut ins);
        assert!(matches!(ins.last(), Some(Ins::Halt)));
    }
}
