//! `scc-lang`: a guest-language compiler frontend for the SCC engine.
//!
//! The paper's evaluation needs *real program shapes* — loops, branches,
//! array traffic, redundancy that speculative code compaction can actually
//! harvest — not just hand-woven synthetic kernels. This crate provides
//! them: a small imperative language (64-bit integer scalars, fixed-size
//! arrays, `while`/`if`, C-like expressions) that compiles down to the
//! macro-op ISA in [`scc_isa`].
//!
//! Pipeline: [`lexer`] → [`parser`] → lowering to a linear IR
//! ([`lower`, private]) → staged peephole passes (constant folding,
//! redundant-load elision, branch simplification; see [`Opt`]) → assembly
//! through `scc_isa::ProgramBuilder`.
//!
//! The crate also owns the versioned **`SCCTRACE1`** interchange format
//! ([`trace`]) so compiled programs can be shipped to a running `scc-serve`
//! instance, a seeded program *generator* ([`gen`]) for differential
//! fuzzing of the compiler itself, and the committed guest corpus
//! ([`corpus`]) registered as first-class workloads by `scc-workloads`.
//!
//! Guest semantics are *defined* as ISA semantics: the constant folder
//! evaluates through `scc_isa::semantics`, so a folded program can never
//! disagree with the interpreted one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod corpus;
pub mod gen;
pub mod lexer;
mod lower;
mod opt;
pub mod parser;
pub mod trace;

pub use lower::{ENTRY, GUEST_BASE, ITERS_NAME};

use scc_isa::{Program, ProgramError};
use std::fmt;

/// A compilation failure. Every malformed input maps to a typed error;
/// the compiler never panics on user source.
#[derive(Debug)]
pub enum CompileError {
    /// Lexical or grammatical error at a source line.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Name/type error (undeclared variable, redeclaration, scalar/array
    /// misuse) at a source line.
    Semantic {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The program exceeds a compiler capacity limit (e.g. expression
    /// nesting deeper than the evaluation register file).
    TooComplex {
        /// Human-readable description.
        msg: String,
    },
    /// The assembled program violated an ISA-level constraint.
    Build(ProgramError),
    /// A compiler invariant broke; indicates a bug in `scc-lang`, not in
    /// the guest program.
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Syntax { line, msg } => write!(f, "syntax error (line {line}): {msg}"),
            CompileError::Semantic { line, msg } => {
                write!(f, "semantic error (line {line}): {msg}")
            }
            CompileError::TooComplex { msg } => write!(f, "program too complex: {msg}"),
            CompileError::Build(e) => write!(f, "program assembly failed: {e}"),
            CompileError::Internal(msg) => write!(f, "internal compiler error: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Optimization level for the staged peephole pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Opt {
    /// No optimization; direct lowering output.
    O0,
    /// Constant folding + redundant-load elision (+ a re-fold).
    O1,
    /// `O1` plus branch simplification (threading, branch-to-next
    /// deletion, unreachable sweep).
    O2,
}

impl Opt {
    /// All levels, weakest first.
    pub const ALL: [Opt; 3] = [Opt::O0, Opt::O1, Opt::O2];

    /// Short stable name (`"O0"`/`"O1"`/`"O2"`), used in CLI flags and
    /// golden-file names.
    pub fn name(self) -> &'static str {
        match self {
            Opt::O0 => "O0",
            Opt::O1 => "O1",
            Opt::O2 => "O2",
        }
    }

    /// Parses a level name as produced by [`Opt::name`] (case-insensitive,
    /// leading `-` accepted).
    pub fn parse(s: &str) -> Option<Opt> {
        match s.trim_start_matches('-').to_ascii_lowercase().as_str() {
            "o0" | "0" => Some(Opt::O0),
            "o1" | "1" => Some(Opt::O1),
            "o2" | "2" => Some(Opt::O2),
            _ => None,
        }
    }
}

/// Compilation options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Peephole pipeline stage selection.
    pub opt: Opt,
    /// Value of the `ITERS` builtin, letting one source scale its outer
    /// loop per run without editing the source text.
    pub iters: i64,
}

impl Default for Options {
    fn default() -> Self {
        Options { opt: Opt::O2, iters: 1 }
    }
}

/// A guest-visible variable in the compiled program's memory image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Source-level name.
    pub name: String,
    /// Absolute address of the first (or only) word.
    pub addr: u64,
    /// Number of 8-byte words (1 for scalars).
    pub len: usize,
}

/// Static instruction counts before and after optimization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// IR instructions straight out of lowering.
    pub ir_before: usize,
    /// IR instructions after the selected passes.
    pub ir_after: usize,
}

impl PassStats {
    /// Instructions removed by the pipeline.
    pub fn removed(&self) -> usize {
        self.ir_before.saturating_sub(self.ir_after)
    }
}

/// The result of a successful compilation.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The assembled macro-op program.
    pub program: Program,
    /// Static pass statistics.
    pub stats: PassStats,
    /// Guest variable layout, in declaration order.
    pub symbols: Vec<Symbol>,
}

/// Compiles guest source text to a macro-op program.
pub fn compile(src: &str, options: &Options) -> Result<Compiled, CompileError> {
    let stmts = parser::parse(src)?;
    let lowered = lower::lower(&stmts, options)?;
    let mut ins = lowered.ins;
    let ir_before = ins.len();
    if options.opt >= Opt::O1 {
        opt::const_fold(&mut ins);
        opt::load_elim(&mut ins);
        opt::const_fold(&mut ins);
    }
    if options.opt >= Opt::O2 {
        opt::simplify_branches(&mut ins);
    }
    let program = lower::emit(&ins, &lowered.data)?;
    Ok(Compiled {
        program,
        stats: PassStats { ir_before, ir_after: ins.len() },
        symbols: lowered.symbols,
    })
}

/// Convenience wrapper returning just the [`Program`].
pub fn compile_program(src: &str, options: &Options) -> Result<Program, CompileError> {
    compile(src, options).map(|c| c.program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::Machine;

    // The `debug` block is provably dead: store-to-load forwarding plus
    // constant folding decide the guard, and branch simplification then
    // sweeps the body — the classic dead-code shape the passes exist for.
    const SRC: &str = "
        let debug = 0;
        let n = 10;
        let acc = 0;
        if (debug == 1) {
            acc = 123456;
        }
        let i = 0;
        while (i < n) {
            acc = acc + i * i;
            i = i + 1;
        }
    ";

    fn run_mem(program: &Program, addr: u64) -> i64 {
        let mut m = Machine::new(program);
        let r = m.run(1_000_000).unwrap();
        assert!(r.halted, "program did not halt");
        m.mem().read(addr)
    }

    /// Macro-insts that do work: region alignment pads with nops, so the
    /// raw `insts()` count grows as real code shrinks.
    fn real_insts(program: &Program) -> usize {
        program
            .insts()
            .iter()
            .filter(|i| i.uops.iter().any(|u| u.op != scc_isa::Op::Nop))
            .count()
    }

    #[test]
    fn all_opt_levels_agree_on_results() {
        let mut sizes = Vec::new();
        for opt in Opt::ALL {
            let c = compile(SRC, &Options { opt, iters: 1 }).unwrap();
            // acc is the second declared scalar.
            let acc = c.symbols.iter().find(|s| s.name == "acc").unwrap();
            assert_eq!(run_mem(&c.program, acc.addr), 285, "{opt:?}");
            sizes.push(real_insts(&c.program));
        }
        assert!(sizes[2] <= sizes[1] && sizes[1] <= sizes[0], "{sizes:?}");
    }

    #[test]
    fn optimization_shrinks_static_code() {
        let o0 = compile(SRC, &Options { opt: Opt::O0, iters: 1 }).unwrap();
        let o2 = compile(SRC, &Options { opt: Opt::O2, iters: 1 }).unwrap();
        assert!(o2.stats.removed() > 0);
        assert!(real_insts(&o2.program) < real_insts(&o0.program));
    }

    #[test]
    fn opt_level_names_round_trip() {
        for opt in Opt::ALL {
            assert_eq!(Opt::parse(opt.name()), Some(opt));
        }
        assert_eq!(Opt::parse("-O2"), Some(Opt::O2));
        assert_eq!(Opt::parse("bogus"), None);
    }

    #[test]
    fn errors_display_with_location() {
        let err = compile("let a = ;", &Options::default()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}
