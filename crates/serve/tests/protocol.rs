//! End-to-end protocol tests against a live in-process `scc-serve`.
//!
//! Each test boots its own server on an ephemeral loopback port, talks
//! to it over real sockets, and (where the acceptance criteria demand
//! it) checks the bytes on the wire against direct in-process
//! [`Runner`] execution.

use std::io;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use scc_serve::json::Json;
use scc_serve::protocol::{run_response, Proto, MAX_FRAME_BYTES};
use scc_serve::server::{Server, ServerConfig, ServerHandle};
use scc_serve::{Addr, Client};
use scc_sim::runner::{resolve_workload, Job};
use scc_sim::{Runner, SimOptions};
use scc_workloads::Scale;

/// Boots a server on `127.0.0.1:0` and returns its address, a drain
/// handle, and the join handle of the serving thread.
fn start(cfg: ServerConfig) -> (Addr, ServerHandle, thread::JoinHandle<io::Result<()>>) {
    let server = Server::bind(&[Addr::Tcp("127.0.0.1:0".to_string())], cfg).expect("bind");
    let addr: SocketAddr = server.local_tcp_addr().expect("tcp addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.serve());
    (Addr::Tcp(addr.to_string()), handle, join)
}

fn small_cfg() -> ServerConfig {
    ServerConfig { workers: 2, queue_depth: 8, ..ServerConfig::default() }
}

/// The response `scc-serve` must produce for a `run` request, computed
/// by executing the job directly on an in-process runner and rendering
/// it through the same deterministic report path.
fn expected_run_response(id: &str, workload: &str, iters: i64, level: scc_sim::OptLevel) -> String {
    let w = resolve_workload(workload, Scale::custom(iters)).expect("workload");
    let opts = SimOptions::new(level);
    let job = Job::new(&w, &opts);
    let one = Runner::new().try_run_one(&job, None, Some(id), false).expect("direct run");
    run_response(Proto::V1, Some(id), &one.result, None)
}

fn drain_and_join(handle: &ServerHandle, join: thread::JoinHandle<io::Result<()>>) {
    handle.drain();
    join.join().expect("serve thread").expect("serve result");
}

/// Polls the `stats` verb until `pred` holds on the stats object, with
/// a 30s backstop so a broken server fails the test instead of hanging.
fn wait_for(probe: &mut Client, pred: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = probe.request_json("{\"verb\":\"stats\"}").unwrap();
        let stats = s.get("stats").expect("stats object");
        if pred(stats) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting on stats; last: {stats:?}");
        thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn health_stats_and_malformed_frames_share_a_connection() {
    let (addr, handle, join) = start(small_cfg());
    let mut c = Client::connect(&addr).unwrap();

    let h = c.request_json("{\"verb\":\"health\"}").unwrap();
    assert_eq!(h.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"));

    // Malformed JSON → typed bad_frame, and the connection survives.
    let e = c.request_json("{\"verb\":").unwrap();
    assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        e.get("error").and_then(|x| x.get("kind")).and_then(Json::as_str),
        Some("bad_frame")
    );

    // Invalid UTF-8 → bad_frame, connection survives.
    c.send_raw(b"\xff\xfe\n").unwrap();
    let e = Json::parse(&c.read_response().unwrap()).unwrap();
    assert_eq!(
        e.get("error").and_then(|x| x.get("kind")).and_then(Json::as_str),
        Some("bad_frame")
    );

    // Unknown verb → typed error carrying the request id.
    let e = c.request_json("{\"verb\":\"dance\",\"id\":\"r-7\"}").unwrap();
    assert_eq!(
        e.get("error").and_then(|x| x.get("kind")).and_then(Json::as_str),
        Some("unknown_verb")
    );
    assert_eq!(e.get("id").and_then(Json::as_str), Some("r-7"));

    // Stats exposes the queue and cache registries.
    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    let stats = s.get("stats").expect("stats object");
    assert_eq!(stats.get("serve.workers").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("serve.queue.depth").and_then(Json::as_u64), Some(8));
    assert!(stats.get("runner.cache.capacity").and_then(Json::as_u64).is_some());

    drain_and_join(&handle, join);
}

#[test]
fn unknown_workloads_are_clean_protocol_errors() {
    let (addr, handle, join) = start(small_cfg());
    let mut c = Client::connect(&addr).unwrap();
    let e = c
        .request_json("{\"verb\":\"run\",\"id\":\"bad-wl\",\"workload\":\"frobnicate\"}")
        .unwrap();
    assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        e.get("error").and_then(|x| x.get("kind")).and_then(Json::as_str),
        Some("unknown_workload")
    );
    assert_eq!(e.get("id").and_then(Json::as_str), Some("bad-wl"));
    // The connection is still good for a real job afterwards.
    let ok = c
        .request_json("{\"verb\":\"run\",\"id\":\"after\",\"workload\":\"freqmine\",\"iters\":120}")
        .unwrap();
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
    drain_and_join(&handle, join);
}

#[test]
fn truncated_frames_are_discarded_not_executed() {
    let (addr, handle, join) = start(small_cfg());
    let mut c = Client::connect(&addr).unwrap();
    // A half-sent request with no newline: the server must not act on
    // it; closing the write half leads to EOF with no response.
    c.send_raw(b"{\"verb\":\"run\",\"workload\":\"freq").unwrap();
    drop(c);
    // The server is still healthy for the next client.
    let mut c2 = Client::connect(&addr).unwrap();
    let h = c2.request_json("{\"verb\":\"health\"}").unwrap();
    assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"));
    drain_and_join(&handle, join);
}

#[test]
fn oversized_frames_get_a_typed_error_then_the_connection_closes() {
    let (addr, handle, join) = start(small_cfg());
    let mut c = Client::connect(&addr).unwrap();
    let huge = vec![b'x'; MAX_FRAME_BYTES + 4096];
    c.send_raw(&huge).unwrap();
    let e = Json::parse(&c.read_response().unwrap()).unwrap();
    assert_eq!(
        e.get("error").and_then(|x| x.get("kind")).and_then(Json::as_str),
        Some("oversized_frame")
    );
    // Mid-frame recovery is impossible; the server hangs up.
    assert!(c.read_response().is_err());
    drain_and_join(&handle, join);
}

#[test]
fn concurrent_clients_get_byte_identical_reports_to_direct_execution() {
    const CONNS: usize = 32;
    const PER_CONN: usize = 2;
    let (addr, handle, join) = start(ServerConfig { workers: 4, queue_depth: 128, ..ServerConfig::default() });

    let mut threads = Vec::new();
    for conn in 0..CONNS {
        let addr = addr.clone();
        threads.push(thread::spawn(move || -> io::Result<Vec<(String, String)>> {
            let mut c = Client::connect(&addr)?;
            let mut got = Vec::new();
            for seq in 0..PER_CONN {
                let iters = 90 + (conn % 4) as i64 * 10;
                let id = format!("c{conn}-r{seq}");
                let line = format!(
                    "{{\"verb\":\"run\",\"id\":\"{id}\",\"workload\":\"freqmine\",\"iters\":{iters},\"level\":\"full-scc\"}}"
                );
                let resp = c.request(&line)?;
                got.push((id, format!("{resp}\n")));
            }
            Ok(got)
        }));
    }

    let mut all = Vec::new();
    for t in threads {
        all.extend(t.join().expect("client thread").expect("client io"));
    }
    assert_eq!(all.len(), CONNS * PER_CONN);

    // Every response must match direct in-process execution, byte for
    // byte — whether the service answered it fresh or from cache.
    for (id, resp) in &all {
        let conn: usize = id[1..id.find('-').unwrap()].parse().unwrap();
        let iters = 90 + (conn % 4) as i64 * 10;
        let expected = expected_run_response(id, "freqmine", iters, scc_sim::OptLevel::Full);
        assert_eq!(resp, &expected, "response for {id} diverges from direct execution");
    }
    drain_and_join(&handle, join);
}

#[test]
fn a_full_queue_rejects_with_a_retry_hint() {
    // One worker, queue of one: a long-running job plus a queued job
    // saturate the service; further submissions must be rejected
    // immediately with queue_full + retry_after_ms.
    let (addr, handle, join) =
        start(ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() });

    // The saturating jobs are deliberately large: the overflow probe
    // below must land while the blocker is still executing, on any
    // machine speed. Readiness is observed through `stats`, not sleeps.
    let blocker = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request_json(
                "{\"verb\":\"run\",\"id\":\"blocker\",\"workload\":\"freqmine\",\"iters\":60011}",
            )
            .unwrap()
        })
    };
    // Fill the queue's single slot...
    let filler = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let mut probe = Client::connect(&addr).unwrap();
            // Enqueue only once the blocker holds the worker, so this
            // request occupies the queue slot rather than the worker.
            wait_for(&mut probe, |s| {
                s.get("serve.in_flight").and_then(Json::as_u64) == Some(1)
            });
            c.request_json(
                "{\"verb\":\"run\",\"id\":\"filler\",\"workload\":\"freqmine\",\"iters\":60012}",
            )
            .unwrap()
        })
    };
    {
        let mut probe = Client::connect(&addr).unwrap();
        wait_for(&mut probe, |s| {
            s.get("serve.in_flight").and_then(Json::as_u64) == Some(1)
                && s.get("serve.queue.len").and_then(Json::as_u64) == Some(1)
        });
    }

    // ...and overflow it.
    let mut c = Client::connect(&addr).unwrap();
    let e = c
        .request_json("{\"verb\":\"run\",\"id\":\"overflow\",\"workload\":\"freqmine\",\"iters\":8013}")
        .unwrap();
    assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false), "overflow response: {e:?}");
    let err = e.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("queue_full"));
    let hint = err.get("retry_after_ms").and_then(Json::as_u64).expect("retry hint");
    assert!(hint >= 10, "retry_after_ms = {hint}");

    // The saturating jobs themselves complete fine.
    let b = blocker.join().unwrap();
    assert_eq!(b.get("ok").and_then(Json::as_bool), Some(true));
    let f = filler.join().unwrap();
    assert_eq!(f.get("ok").and_then(Json::as_bool), Some(true));
    drain_and_join(&handle, join);
}

#[test]
fn deadline_exceeded_is_reported_and_does_not_poison_the_cache() {
    let (addr, handle, join) = start(small_cfg());
    let mut c = Client::connect(&addr).unwrap();

    // A job far larger than its 1 ms deadline: cancelled (mid-run or
    // while queued — both are deadline_exceeded on the wire).
    let e = c
        .request_json(
            "{\"verb\":\"run\",\"id\":\"dl\",\"workload\":\"freqmine\",\"iters\":8021,\"deadline_ms\":1}",
        )
        .unwrap();
    assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        e.get("error").and_then(|x| x.get("kind")).and_then(Json::as_str),
        Some("deadline_exceeded")
    );

    // The identical job without a deadline must now run to completion
    // and match direct execution exactly — a cancelled run must never
    // have published a partial result into the shared cache.
    let resp = c
        .request("{\"verb\":\"run\",\"id\":\"dl\",\"workload\":\"freqmine\",\"iters\":8021}")
        .unwrap();
    let expected = expected_run_response("dl", "freqmine", 8021, scc_sim::OptLevel::Full);
    assert_eq!(format!("{resp}\n"), expected);
    drain_and_join(&handle, join);
}

#[test]
fn audited_runs_return_the_decision_log() {
    let (addr, handle, join) = start(small_cfg());
    let mut c = Client::connect(&addr).unwrap();
    let r = c
        .request_json(
            "{\"verb\":\"run\",\"id\":\"aud\",\"workload\":\"freqmine\",\"iters\":130,\"audit\":true}",
        )
        .unwrap();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    match r.get("audit") {
        Some(Json::Arr(events)) => assert!(!events.is_empty(), "audit log empty"),
        other => panic!("missing audit array: {other:?}"),
    }
    drain_and_join(&handle, join);
}

#[test]
fn shutdown_drains_finishing_in_flight_work() {
    let (addr, _handle, join) =
        start(ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() });

    // A long job goes in-flight...
    let inflight = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request_json(
                "{\"verb\":\"run\",\"id\":\"inflight\",\"workload\":\"freqmine\",\"iters\":8031}",
            )
            .unwrap()
        })
    };
    thread::sleep(Duration::from_millis(300));

    // ...then a second connection orders the drain.
    let mut c = Client::connect(&addr).unwrap();
    let d = c.request_json("{\"verb\":\"shutdown\"}").unwrap();
    assert_eq!(d.get("status").and_then(Json::as_str), Some("draining"));

    // The in-flight job still completes successfully.
    let r = inflight.join().unwrap();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "in-flight run: {r:?}");

    // And the server exits cleanly.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !join.is_finished() {
        assert!(Instant::now() < deadline, "serve() did not return after drain");
        thread::sleep(Duration::from_millis(20));
    }
    join.join().expect("serve thread").expect("serve result");

    // New connections are refused once drained.
    assert!(Client::connect(&addr).is_err());
}
