//! End-to-end tests for `scc-route`: in-process shards behind an
//! in-process router, over real sockets.
//!
//! The correctness bar (the PR's acceptance criterion): responses
//! routed through `scc-route` are **byte-identical** to direct
//! in-process [`Runner`] execution, at 256+ concurrent connections —
//! and a dead shard degrades to typed `shard_unavailable` errors
//! without disturbing the other shard's traffic, then recovers cleanly
//! when the shard returns.

use std::io::{self, BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use scc_serve::json::Json;
use scc_serve::net::Stream;
use scc_serve::protocol::{run_key, run_response, Proto, RunRequest};
use scc_serve::ring::Ring;
use scc_serve::route::{Router, RouterConfig, RouterHandle};
use scc_serve::server::{Server, ServerConfig, ServerHandle};
use scc_serve::{Addr, Client};
use scc_sim::runner::{resolve_workload, Job};
use scc_sim::{OptLevel, Runner, SimOptions};
use scc_workloads::Scale;

type Joiner = thread::JoinHandle<io::Result<()>>;

fn shard_cfg() -> ServerConfig {
    ServerConfig { workers: 2, queue_depth: 1024, ..ServerConfig::default() }
}

fn start_shard(addr: &str, cfg: ServerConfig) -> (Addr, ServerHandle, Joiner) {
    let server = Server::bind(&[Addr::Tcp(addr.to_string())], cfg).expect("bind shard");
    let bound: SocketAddr = server.local_tcp_addr().expect("tcp addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.serve());
    (Addr::Tcp(bound.to_string()), handle, join)
}

fn start_router(shards: Vec<Addr>, upstream_conns: usize) -> (Addr, RouterHandle, Joiner) {
    let cfg = RouterConfig { shards, upstream_conns, ..RouterConfig::default() };
    let router = Router::bind(&[Addr::Tcp("127.0.0.1:0".to_string())], cfg).expect("bind router");
    let bound: SocketAddr = router.local_tcp_addr().expect("tcp addr");
    let handle = router.handle();
    let join = thread::spawn(move || router.serve());
    (Addr::Tcp(bound.to_string()), handle, join)
}

/// Polls the router's `stats` until `pred` holds (30s backstop).
fn wait_for_stats(addr: &Addr, pred: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        // Reconnect each probe: the router may be mid-recovery.
        if let Ok(mut c) = Client::connect(addr) {
            if let Ok(s) = c.request_json("{\"verb\":\"stats\"}") {
                let stats = s.get("stats").expect("stats object");
                if pred(stats) {
                    return;
                }
                if Instant::now() >= deadline {
                    panic!("timed out waiting on router stats; last: {stats:?}");
                }
            }
        }
        assert!(Instant::now() < deadline, "timed out waiting on router stats");
        thread::sleep(Duration::from_millis(20));
    }
}

fn shards_up(n: u64) -> impl Fn(&Json) -> bool {
    move |s| s.get("route.shards.up").and_then(Json::as_u64) == Some(n)
}

/// The request and expected byte-exact response for one job shape.
fn shape(i: i64) -> (String, String) {
    let id = format!("rt-{i}");
    let iters = 120 + (i % 8);
    let req = format!(
        "{{\"verb\":\"run\",\"id\":\"{id}\",\"workload\":\"freqmine\",\"iters\":{iters},\"level\":\"full-scc\"}}\n"
    );
    let w = resolve_workload("freqmine", Scale::custom(iters)).expect("workload");
    let opts = SimOptions::new(OptLevel::Full);
    let job = Job::new(&w, &opts);
    let one = Runner::new().try_run_one(&job, None, Some(&id), false).expect("direct run");
    (req, run_response(Proto::V1, Some(&id), &one.result, None))
}

/// The ring shard a freqmine/full-scc shape with these iters lands on,
/// computed exactly as the router computes it.
fn owner_of(iters: i64, shards: usize) -> usize {
    let req = RunRequest {
        id: None,
        workload: "freqmine".into(),
        iters,
        level: OptLevel::Full,
        max_cycles: None,
        deadline_ms: None,
        audit: false,
    };
    Ring::new(shards).shard_for(&run_key(&req, scc_sim::build::DEFAULT_MAX_CYCLES))
}

/// Iters values (freqmine/full-scc) owned by shard 0 and shard 1 of a
/// two-shard ring.
fn one_key_per_shard() -> (i64, i64) {
    let mut owned = [None, None];
    for iters in 100..200 {
        let s = owner_of(iters, 2);
        if owned[s].is_none() {
            owned[s] = Some(iters);
        }
        if owned.iter().all(Option::is_some) {
            break;
        }
    }
    (owned[0].expect("a shard-0 key"), owned[1].expect("a shard-1 key"))
}

#[test]
fn routed_responses_are_byte_identical_at_256_connections() {
    const CONNS: usize = 256;
    let limit = scc_serve::sys::raise_nofile_limit().expect("raise fd limit");
    assert!(limit > 3 * CONNS as u64 + 64, "fd limit {limit} too low");

    let (a0, h0, j0) = start_shard("127.0.0.1:0", shard_cfg());
    let (a1, h1, j1) = start_shard("127.0.0.1:0", shard_cfg());
    let (ra, rh, rj) = start_router(vec![a0, a1], 4);
    wait_for_stats(&ra, shards_up(2));

    // Expected bytes per shape, from direct in-process execution.
    let expected: Vec<(String, String)> = (0..8).map(shape).collect();

    // Hold all 256 connections open at once, write every request, then
    // read every response — the router multiplexes all of them over
    // 2 shards x 4 upstream connections.
    let mut conns = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let s = Stream::connect(&ra).unwrap_or_else(|e| panic!("connect {i}: {e}"));
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        conns.push(s);
    }
    for (i, s) in conns.iter_mut().enumerate() {
        let (req, _) = &expected[i % 8];
        s.write_all(req.as_bytes()).unwrap_or_else(|e| panic!("write {i}: {e}"));
    }
    let mut failures = Vec::new();
    for (i, s) in conns.into_iter().enumerate() {
        let (_, want) = &expected[i % 8];
        let mut r = BufReader::new(s);
        let mut line = String::new();
        match r.read_line(&mut line) {
            Ok(0) => failures.push(format!("conn {i}: closed before responding")),
            Ok(_) => {
                if &line != want {
                    failures.push(format!(
                        "conn {i}: routed response differs from direct execution\n got: {line} want: {want}"
                    ));
                }
            }
            Err(e) => failures.push(format!("conn {i}: read: {e}")),
        }
        if failures.len() > 5 {
            break;
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));

    // Per-shard counters prove the work actually spread across shards.
    let mut c = Client::connect(&ra).unwrap();
    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    let stats = s.get("stats").unwrap();
    let fwd0 = stats.get("route.shard.0.forwarded").and_then(Json::as_u64).unwrap();
    let fwd1 = stats.get("route.shard.1.forwarded").and_then(Json::as_u64).unwrap();
    assert_eq!(fwd0 + fwd1, CONNS as u64, "all requests forwarded");
    assert!(fwd0 > 0 && fwd1 > 0, "placement spread: {fwd0}/{fwd1}");
    assert_eq!(stats.get("route.shard_unavailable").and_then(Json::as_u64), Some(0));
    drop(c);

    rh.drain();
    rj.join().expect("router thread").expect("router result");
    // Drain propagated: both shards wind down from the router's
    // shutdown frames, without their own handles being touched.
    j0.join().expect("shard 0 thread").expect("shard 0 result");
    j1.join().expect("shard 1 thread").expect("shard 1 result");
    let _ = (h0, h1);
}

#[test]
fn pipelined_requests_across_shards_come_back_in_order() {
    let (a0, _h0, j0) = start_shard("127.0.0.1:0", shard_cfg());
    let (a1, _h1, j1) = start_shard("127.0.0.1:0", shard_cfg());
    let (ra, rh, rj) = start_router(vec![a0, a1], 2);
    wait_for_stats(&ra, shards_up(2));

    // One connection alternating between a shard-0-owned and a
    // shard-1-owned key: the one-outstanding-per-connection policy
    // means responses must come back strictly in request order even
    // though they execute on different backends.
    let (k0, k1) = one_key_per_shard();
    let mut c = Client::connect(&ra).unwrap();
    let mut want = Vec::new();
    for round in 0..6 {
        let iters = if round % 2 == 0 { k0 } else { k1 };
        let id = format!("ord-{round}");
        let got = c
            .request_json(&format!(
                "{{\"verb\":\"run\",\"id\":\"{id}\",\"workload\":\"freqmine\",\"iters\":{iters}}}"
            ))
            .unwrap();
        assert_eq!(got.get("ok").and_then(Json::as_bool), Some(true), "{got:?}");
        assert_eq!(got.get("id").and_then(Json::as_str), Some(id.as_str()));
        want.push(got.get("report").and_then(|r| r.get("cycles")).cloned());
    }
    // Same key -> same report, across shards, every round.
    assert_eq!(want[0], want[2]);
    assert_eq!(want[1], want[3]);

    rh.drain();
    rj.join().unwrap().unwrap();
    j0.join().unwrap().unwrap();
    j1.join().unwrap().unwrap();
}

#[test]
fn key_verb_agrees_between_router_shard_and_ring() {
    let (a0, _h0, j0) = start_shard("127.0.0.1:0", shard_cfg());
    let (ra, rh, rj) = start_router(vec![a0.clone()], 1);
    wait_for_stats(&ra, shards_up(1));

    let req = "{\"verb\":\"key\",\"id\":\"k\",\"workload\":\"freqmine\",\"iters\":321,\"level\":\"full-scc\"}";
    let via_router = Client::connect(&ra).unwrap().request_json(req).unwrap();
    let via_shard = Client::connect(&a0).unwrap().request_json(req).unwrap();
    let rk = via_router.get("key").and_then(Json::as_str).unwrap().to_string();
    let sk = via_shard.get("key").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(rk, sk, "router and shard must agree on the canonical key");

    // And both match the in-process canonical serialization — the
    // string the shard's cache and store actually use.
    let w = resolve_workload("freqmine", Scale::custom(321)).unwrap();
    let opts = SimOptions::new(OptLevel::Full);
    assert_eq!(rk, Job::new(&w, &opts).key());

    rh.drain();
    rj.join().unwrap().unwrap();
    j0.join().unwrap().unwrap();
}

#[test]
fn a_dead_shard_degrades_to_typed_errors_and_recovers() {
    let (a0, h0, j0) = start_shard("127.0.0.1:0", shard_cfg());
    let (a1, _h1, j1) = start_shard("127.0.0.1:0", shard_cfg());
    let shard0_addr = match &a0 { Addr::Tcp(hp) => hp.clone(), _ => unreachable!() };
    let (ra, rh, rj) = start_router(vec![a0, a1], 2);
    wait_for_stats(&ra, shards_up(2));

    let (k0, k1) = one_key_per_shard();
    let run_frame = |id: &str, iters: i64| {
        format!("{{\"verb\":\"run\",\"id\":\"{id}\",\"workload\":\"freqmine\",\"iters\":{iters}}}")
    };

    // Kill shard 0 directly (not through the router): the router finds
    // out the hard way, via connection failures.
    h0.drain();
    j0.join().unwrap().unwrap();
    wait_for_stats(&ra, shards_up(1));

    // Shard-0 keys: typed, retryable, with a sane backoff hint.
    let mut c = Client::connect(&ra).unwrap();
    let e = c.request_json(&run_frame("dead", k0)).unwrap();
    assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false), "{e:?}");
    let err = e.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("shard_unavailable"));
    let hint = err.get("retry_after_ms").and_then(Json::as_u64).expect("retry hint");
    assert!(hint > 0 && hint <= 30_000, "retry_after_ms = {hint}");

    // Shard-1 keys on the same connection: completely unaffected, and
    // still byte-identical to direct execution.
    let ok = c.request_json(&run_frame("alive", k1)).unwrap();
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true), "{ok:?}");
    assert_eq!(ok.get("id").and_then(Json::as_str), Some("alive"));

    // Resurrect shard 0 on its old address (retry: the port may take a
    // moment to free) and wait out the router's reconnect backoff.
    let deadline = Instant::now() + Duration::from_secs(10);
    let revived = loop {
        match Server::bind(&[Addr::Tcp(shard0_addr.clone())], shard_cfg()) {
            Ok(s) => break s,
            Err(e) => {
                assert!(Instant::now() < deadline, "rebind {shard0_addr}: {e}");
                thread::sleep(Duration::from_millis(100));
            }
        }
    };
    let h0b = revived.handle();
    let j0b = thread::spawn(move || revived.serve());
    wait_for_stats(&ra, shards_up(2));

    // Clean reconnect: shard-0 keys serve again on a fresh connection.
    let mut c2 = Client::connect(&ra).unwrap();
    let back = c2.request_json(&run_frame("back", k0)).unwrap();
    assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true), "{back:?}");
    assert_eq!(back.get("id").and_then(Json::as_str), Some("back"));

    // The router observed real failures and real reconnects.
    let mut cs = Client::connect(&ra).unwrap();
    let s = cs.request_json("{\"verb\":\"stats\"}").unwrap();
    let stats = s.get("stats").unwrap();
    assert!(stats.get("route.upstream.failures").and_then(Json::as_u64).unwrap() > 0);
    assert!(stats.get("route.shard_unavailable").and_then(Json::as_u64).unwrap() > 0);
    drop((c, c2, cs));

    rh.drain();
    rj.join().unwrap().unwrap();
    j1.join().unwrap().unwrap();
    let _ = h0b;
    j0b.join().unwrap().unwrap();
}

#[test]
fn the_shutdown_verb_drains_router_and_shards() {
    let (a0, _h0, j0) = start_shard("127.0.0.1:0", shard_cfg());
    let (a1, _h1, j1) = start_shard("127.0.0.1:0", shard_cfg());
    let (ra, _rh, rj) = start_router(vec![a0, a1], 2);
    wait_for_stats(&ra, shards_up(2));

    // The wire verb, not the in-process handle: this is the path
    // `scc-load --shards` and operators use.
    let mut c = Client::connect(&ra).unwrap();
    let ack = c.request_json("{\"verb\":\"shutdown\"}").unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack:?}");
    assert_eq!(ack.get("status").and_then(Json::as_str), Some("draining"));
    drop(c);

    // One verb winds down the whole topology: the router exits, and
    // its propagated shutdown frames drain both shards too.
    rj.join().unwrap().unwrap();
    j0.join().unwrap().unwrap();
    j1.join().unwrap().unwrap();
}

#[test]
fn v2_frames_route_with_v2_responses() {
    let (a0, _h0, j0) = start_shard("127.0.0.1:0", shard_cfg());
    let (ra, rh, rj) = start_router(vec![a0], 1);
    wait_for_stats(&ra, shards_up(1));

    let mut c = Client::connect(&ra).unwrap();
    let got = c
        .request_json(
            "{\"proto\":2,\"verb\":\"run\",\"id\":\"v2\",\"workload\":\"freqmine\",\"iters\":140}",
        )
        .unwrap();
    assert_eq!(got.get("ok").and_then(Json::as_bool), Some(true), "{got:?}");
    // The shard echoes the v2 envelope straight through the router.
    assert_eq!(got.get("proto").and_then(Json::as_u64), Some(2));
    assert_eq!(got.get("id").and_then(Json::as_str), Some("v2"));

    rh.drain();
    rj.join().unwrap().unwrap();
    j0.join().unwrap().unwrap();
}
