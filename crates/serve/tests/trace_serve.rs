//! End-to-end tests for `run-trace` ingestion: externally compiled
//! `SCCTRACE1` blobs served over real sockets.
//!
//! The correctness bar mirrors the router suite: a trace job served
//! over a Unix socket, and the same job forwarded through `scc-route`,
//! must both be **byte-identical** to direct in-process [`Runner`]
//! execution of the decoded program. Corrupt, truncated, and
//! version-stale blobs must come back as typed `bad_trace` errors —
//! never a dropped connection — and the session must keep serving
//! afterwards.

use std::borrow::Cow;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};
use std::{env, io};

use scc_lang::corpus;
use scc_lang::trace;
use scc_serve::json::Json;
use scc_serve::protocol::{run_response, Proto};
use scc_serve::route::{Router, RouterConfig};
use scc_serve::server::{Server, ServerConfig, ServerHandle};
use scc_serve::{Addr, Client};
use scc_sim::runner::{trace_workload_name, Job};
use scc_sim::{OptLevel, Runner, SimOptions};
use scc_workloads::{Scale, Suite, Workload};

type Joiner = thread::JoinHandle<io::Result<()>>;

fn shard_cfg() -> ServerConfig {
    ServerConfig { workers: 2, queue_depth: 64, ..ServerConfig::default() }
}

/// A fresh Unix socket path under the system temp dir, unique per
/// (process, tag) so parallel tests never collide.
fn sock_path(tag: &str) -> PathBuf {
    env::temp_dir().join(format!("scc-trace-{}-{tag}.sock", std::process::id()))
}

fn start_unix_shard(tag: &str) -> (Addr, ServerHandle, Joiner, PathBuf) {
    let path = sock_path(tag);
    let addr = Addr::Unix(path.clone());
    let server = Server::bind(std::slice::from_ref(&addr), shard_cfg()).expect("bind unix shard");
    let handle = server.handle();
    let join = thread::spawn(move || server.serve());
    (addr, handle, join, path)
}

fn start_tcp_shard() -> (Addr, ServerHandle, Joiner) {
    let server =
        Server::bind(&[Addr::Tcp("127.0.0.1:0".to_string())], shard_cfg()).expect("bind shard");
    let bound: SocketAddr = server.local_tcp_addr().expect("tcp addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.serve());
    (Addr::Tcp(bound.to_string()), handle, join)
}

/// The `SCCTRACE1` blob for a corpus program compiled at `O2`, plus
/// its stamp-independent program digest.
fn corpus_trace(name: &str, iters: i64) -> (Vec<u8>, u64) {
    let g = corpus::find(name).expect("corpus program");
    let c = g.compile(scc_lang::Opt::O2, iters).expect("corpus compiles");
    let digest = trace::program_digest(&c.program);
    (trace::encode(&c.program, "external-frontend 9.9.9"), digest)
}

/// What the server must answer for a trace job, computed by decoding
/// the same blob and running it in-process — the same synthesis
/// `submit_trace` performs, executed without any serving machinery.
fn direct_response(blob: &[u8], id: &str, level: OptLevel, proto: Proto) -> String {
    let t = trace::decode(blob).expect("blob decodes");
    let w = Workload {
        name: Cow::Owned(trace_workload_name(t.digest)),
        suite: Suite::Guest,
        program: t.program,
        description: "ingested SCCTRACE1 program",
        scale: Scale::custom(1),
    };
    let opts = SimOptions::new(level);
    let job = Job::new(&w, &opts);
    let one = Runner::new().try_run_one(&job, None, Some(id), false).expect("direct run");
    // `Client::request` strips the NDJSON line delimiter; strip it here
    // too so the comparison covers the full rendered frame body.
    run_response(proto, Some(id), &one.result, None).trim_end_matches('\n').to_string()
}

fn run_trace_frame(id: &str, b64: &str, level: &str) -> String {
    format!(r#"{{"proto":2,"verb":"run-trace","id":"{id}","trace":"{b64}","level":"{level}"}}"#)
}

#[test]
fn run_trace_over_a_unix_socket_is_byte_identical_to_direct_execution() {
    let (addr, handle, join, path) = start_unix_shard("direct");
    let (blob, digest) = corpus_trace("cksum", 3);
    let b64 = trace::to_base64(&blob);

    let mut c = Client::connect(&addr).expect("connect over unix socket");

    // The key verb with a trace payload answers without executing:
    // the canonical content key is pinned to the program digest.
    let key = c
        .request_json(&format!(r#"{{"proto":2,"verb":"key","trace":"{b64}"}}"#))
        .expect("key frame");
    let key_str = key.get("key").and_then(Json::as_str).expect("key string");
    let want_prefix = format!("{}|iters=1|", trace_workload_name(digest));
    assert!(
        key_str.starts_with(&want_prefix),
        "trace key `{key_str}` must start with `{want_prefix}`"
    );

    // The run itself: byte-identical to in-process execution.
    let got = c.request(&run_trace_frame("ux-1", &b64, "full-scc")).expect("run-trace frame");
    let want = direct_response(&blob, "ux-1", OptLevel::Full, Proto::V2);
    assert_eq!(got, want, "unix-socket run-trace differs from direct execution");

    // A second level on the same connection exercises a distinct
    // config key under the same digest name.
    let got = c.request(&run_trace_frame("ux-2", &b64, "baseline")).expect("second run-trace");
    let want = direct_response(&blob, "ux-2", OptLevel::Baseline, Proto::V2);
    assert_eq!(got, want, "baseline run-trace differs from direct execution");

    drop(c);
    handle.drain();
    join.join().expect("shard thread").expect("shard result");
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_trace_through_the_router_is_byte_identical_to_direct_execution() {
    let (a0, _h0, j0) = start_tcp_shard();
    let (a1, _h1, j1) = start_tcp_shard();
    let cfg = RouterConfig { shards: vec![a0, a1], upstream_conns: 2, ..RouterConfig::default() };
    let router = Router::bind(&[Addr::Tcp("127.0.0.1:0".to_string())], cfg).expect("bind router");
    let bound: SocketAddr = router.local_tcp_addr().expect("router tcp addr");
    let ra = Addr::Tcp(bound.to_string());
    let rh = router.handle();
    let rj = thread::spawn(move || router.serve());
    wait_for_shards_up(&ra, 2);

    // Distinct corpus programs land on ring positions by content key;
    // every routed response must match direct execution byte for byte.
    let mut forwarded = 0u64;
    for (i, name) in ["cksum", "sieve", "sort"].iter().enumerate() {
        let (blob, _) = corpus_trace(name, 2);
        let b64 = trace::to_base64(&blob);
        let id = format!("rt-{i}");
        let mut c = Client::connect(&ra).expect("connect router");
        let got = c.request(&run_trace_frame(&id, &b64, "full-scc")).expect("routed run-trace");
        let want = direct_response(&blob, &id, OptLevel::Full, Proto::V2);
        assert_eq!(got, want, "routed `{name}` trace differs from direct execution");
        forwarded += 1;
    }

    let mut c = Client::connect(&ra).expect("router stats");
    let s = c.request_json("{\"verb\":\"stats\"}").expect("stats");
    let stats = s.get("stats").expect("stats object");
    let fwd0 = stats.get("route.shard.0.forwarded").and_then(Json::as_u64).unwrap_or(0);
    let fwd1 = stats.get("route.shard.1.forwarded").and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(fwd0 + fwd1, forwarded, "every run-trace frame was forwarded");
    drop(c);

    rh.drain();
    rj.join().expect("router thread").expect("router result");
    j0.join().expect("shard 0 thread").expect("shard 0 result");
    j1.join().expect("shard 1 thread").expect("shard 1 result");
}

/// Polls the router's `stats` until `n` shards report up (30s backstop).
fn wait_for_shards_up(addr: &Addr, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if let Ok(s) = c.request_json("{\"verb\":\"stats\"}") {
                let up = s
                    .get("stats")
                    .and_then(|t| t.get("route.shards.up"))
                    .and_then(Json::as_u64);
                if up == Some(n) {
                    return;
                }
            }
        }
        assert!(Instant::now() < deadline, "timed out waiting for {n} shards");
        thread::sleep(Duration::from_millis(20));
    }
}

/// Asserts an error frame: `ok:false` with the given v2 `code`.
fn assert_error_code(resp: &Json, code: &str, what: &str) {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false), "{what}: must be an error");
    let got = resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str);
    assert_eq!(got, Some(code), "{what}: wrong error code");
}

#[test]
fn corrupt_truncated_and_stale_traces_get_typed_errors_and_serving_continues() {
    let (addr, handle, join, path) = start_unix_shard("reject");
    let (blob, _) = corpus_trace("matmul", 2);
    let mut c = Client::connect(&addr).expect("connect over unix socket");

    // Truncated: half the blob. The length header no longer matches.
    let truncated = trace::to_base64(&blob[..blob.len() / 2]);
    let r = c
        .request_json(&run_trace_frame("bad-1", &truncated, "full-scc"))
        .expect("truncated frame answered");
    assert_error_code(&r, "bad_trace", "truncated blob");

    // Corrupt: flip a bit in the last body byte; the CRC catches it.
    let mut flipped = blob.clone();
    *flipped.last_mut().unwrap() ^= 0x40;
    let r = c
        .request_json(&run_trace_frame("bad-2", &trace::to_base64(&flipped), "full-scc"))
        .expect("corrupt frame answered");
    assert_error_code(&r, "bad_trace", "CRC-corrupt blob");

    // Version-stale: a future format version right after the magic.
    let mut stale = blob.clone();
    stale[8] = 0xEE;
    let r = c
        .request_json(&run_trace_frame("bad-3", &trace::to_base64(&stale), "full-scc"))
        .expect("stale frame answered");
    assert_error_code(&r, "bad_trace", "version-stale blob");

    // Not base64 at all.
    let r = c
        .request_json(r#"{"proto":2,"verb":"run-trace","id":"bad-4","trace":"@@@@"}"#)
        .expect("non-base64 frame answered");
    assert_error_code(&r, "bad_trace", "non-base64 payload");

    // Missing payload is a malformed request, not a trace error.
    let r = c
        .request_json(r#"{"proto":2,"verb":"run-trace","id":"bad-5"}"#)
        .expect("payload-less frame answered");
    assert_error_code(&r, "bad_request", "missing trace payload");

    // The same connection still serves good work after five rejects.
    let b64 = trace::to_base64(&blob);
    let got = c.request(&run_trace_frame("good-1", &b64, "full-scc")).expect("good frame");
    let want = direct_response(&blob, "good-1", OptLevel::Full, Proto::V2);
    assert_eq!(got, want, "serving must continue after rejected traces");

    drop(c);
    handle.drain();
    join.join().expect("shard thread").expect("shard result");
    let _ = std::fs::remove_file(path);
}
