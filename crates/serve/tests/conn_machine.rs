//! Deterministic nonblocking edge cases for the per-connection state
//! machine, driven through a scripted mock stream — no sockets, no
//! timing, every `WouldBlock`/`EINTR`/short read is placed exactly.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

use scc_serve::conn::{Conn, ConnStatus, FrameDisposition, WRITE_HIGH_WATER};
use scc_serve::json::Json;

/// What the mock returns for one `read` or `write` call.
#[derive(Clone, Debug)]
enum Step {
    /// Serve up to this many bytes of the scripted input.
    Read(usize),
    /// `ErrorKind::WouldBlock`.
    Block,
    /// `ErrorKind::Interrupted`.
    Eintr,
    /// Accept up to this many bytes of output.
    Write(usize),
}

/// A stream whose reads and writes follow a script. Reads consume
/// `input`; writes append to `written`. When a script runs dry the
/// stream acts unconstrained (full reads to EOF, full writes).
#[derive(Default)]
struct MockStream {
    input: VecDeque<u8>,
    read_script: VecDeque<Step>,
    write_script: VecDeque<Step>,
    written: Vec<u8>,
}

impl MockStream {
    fn with_input(input: &str) -> MockStream {
        MockStream { input: input.bytes().collect(), ..MockStream::default() }
    }

    fn responses(&self) -> Vec<Json> {
        String::from_utf8(self.written.clone())
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect()
    }
}

impl Read for MockStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cap = match self.read_script.pop_front() {
            Some(Step::Block) => return Err(io::ErrorKind::WouldBlock.into()),
            Some(Step::Eintr) => return Err(io::ErrorKind::Interrupted.into()),
            Some(Step::Read(n)) => n,
            Some(other) => panic!("write step {other:?} in read script"),
            // Script dry: serve everything left; once the input is
            // exhausted act like an idle open socket, not EOF — EOF
            // is always scripted explicitly as `Read(0)`.
            None if self.input.is_empty() => return Err(io::ErrorKind::WouldBlock.into()),
            None => buf.len(),
        };
        let n = cap.min(buf.len()).min(self.input.len());
        for b in buf.iter_mut().take(n) {
            *b = self.input.pop_front().unwrap();
        }
        Ok(n)
    }
}

impl Write for MockStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let cap = match self.write_script.pop_front() {
            Some(Step::Block) => return Err(io::ErrorKind::WouldBlock.into()),
            Some(Step::Eintr) => return Err(io::ErrorKind::Interrupted.into()),
            Some(Step::Write(n)) => n,
            Some(other) => panic!("read step {other:?} in write script"),
            None => buf.len(),
        };
        let n = cap.min(buf.len());
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

const MAX_FRAME: usize = 1024;

fn echo(line: &str) -> FrameDisposition {
    FrameDisposition::Reply(format!("echo:{line}\n"))
}

#[test]
fn a_frame_split_into_one_byte_reads_still_parses() {
    let mut stream = MockStream::with_input("{\"verb\":\"health\"}\n");
    // Every read yields exactly one byte, with a WouldBlock wedged
    // between each pair — 18 bytes of frame arrive over 35+ edges.
    for _ in 0..18 {
        stream.read_script.push_back(Step::Read(1));
        stream.read_script.push_back(Step::Block);
    }
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut seen = Vec::new();
    let mut on_frame = |l: &str| {
        seen.push(l.to_string());
        echo(l)
    };
    for _ in 0..40 {
        assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    }
    assert_eq!(seen, vec!["{\"verb\":\"health\"}".to_string()]);
    assert_eq!(String::from_utf8(conn.stream().written.clone()).unwrap(), "echo:{\"verb\":\"health\"}\n");
}

#[test]
fn would_block_mid_write_parks_and_resumes_without_truncation() {
    let mut stream = MockStream::with_input("ping\n");
    // The response goes out 3 bytes per call with WouldBlock and EINTR
    // interleaved; nothing may be lost or reordered.
    stream.write_script.extend([
        Step::Write(3),
        Step::Block,
        Step::Eintr,
        Step::Write(3),
        Step::Write(2),
        Step::Block,
        Step::Write(1),
    ]);
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut on_frame = |l: &str| echo(l);
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    let (_, wants_write) = conn.wants();
    assert!(wants_write, "parked bytes must request POLLOUT");
    while conn.wants().1 {
        assert_eq!(conn.on_writable(&mut on_frame), ConnStatus::Open);
    }
    assert_eq!(String::from_utf8(conn.stream().written.clone()).unwrap(), "echo:ping\n");
}

#[test]
fn pipelined_run_frames_park_behind_one_outstanding_job() {
    // Three frames arrive in one readable edge; the first becomes a
    // job, so the other two stay buffered until the job completes.
    let stream = MockStream::with_input("run1\nrun2\nrun3\n");
    let mut conn = Conn::new(stream, MAX_FRAME);
    let jobs = std::cell::RefCell::new(Vec::new());
    let mut on_frame = |l: &str| {
        jobs.borrow_mut().push(l.to_string());
        FrameDisposition::JobQueued
    };
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    assert_eq!(*jobs.borrow(), vec!["run1"], "second frame parsed while a job is outstanding");
    assert!(conn.awaiting_job());
    let (readable, _) = conn.wants();
    assert!(!readable, "must not poll for reads while awaiting a job");

    assert_eq!(conn.complete_job("done:run1\n", &mut on_frame), ConnStatus::Open);
    assert_eq!(*jobs.borrow(), vec!["run1", "run2"], "completion resumes exactly one frame");
    assert_eq!(conn.complete_job("done:run2\n", &mut on_frame), ConnStatus::Open);
    assert_eq!(conn.complete_job("done:run3\n", &mut on_frame), ConnStatus::Open);
    assert_eq!(
        String::from_utf8(conn.stream().written.clone()).unwrap(),
        "done:run1\ndone:run2\ndone:run3\n"
    );
}

#[test]
fn eof_with_a_parked_response_flushes_before_closing() {
    let mut stream = MockStream::with_input("last\n");
    // Input ends after one frame (explicit EOF); the response needs
    // three writable edges to drain. Close must wait for the last.
    stream.read_script.extend([Step::Read(5), Step::Read(0)]);
    stream.write_script.extend([Step::Write(4), Step::Block, Step::Block]);
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut on_frame = |l: &str| echo(l);
    // Reads the frame, hits EOF, writes 4 bytes, parks the rest.
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    // The drained flush resolves the EOF into a close.
    assert_eq!(conn.on_writable(&mut on_frame), ConnStatus::Closed);
    assert_eq!(String::from_utf8(conn.stream().written.clone()).unwrap(), "echo:last\n");
}

#[test]
fn eof_while_awaiting_a_job_still_delivers_the_response() {
    let mut stream = MockStream::with_input("job\n");
    stream.read_script.extend([Step::Read(4), Step::Read(0)]);
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut queue = |_: &str| FrameDisposition::JobQueued;
    assert_eq!(conn.on_readable(&mut queue), ConnStatus::Open);
    // Peer half-closed; the job is still running. The connection must
    // stay open until the reply lands, then close.
    assert_eq!(conn.on_readable(&mut queue), ConnStatus::Open);
    assert!(conn.awaiting_job());
    let mut no_more = |l: &str| panic!("unexpected frame after EOF: {l}");
    assert_eq!(conn.complete_job("done\n", &mut no_more), ConnStatus::Closed);
    assert_eq!(String::from_utf8(conn.stream().written.clone()).unwrap(), "done\n");
}

#[test]
fn drain_with_a_half_written_response_finishes_the_frame() {
    let mut stream = MockStream::with_input("bye\n");
    stream.write_script.extend([Step::Write(2), Step::Block, Step::Write(2), Step::Block]);
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut on_frame = |l: &str| echo(l);
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    // Drain arrives with "ec" on the wire and "ho:bye\n" parked.
    conn.begin_drain();
    assert_eq!(conn.on_writable(&mut on_frame), ConnStatus::Open);
    // The final writable edge drains the buffer and closes.
    assert_eq!(conn.on_writable(&mut on_frame), ConnStatus::Closed);
    assert_eq!(String::from_utf8(conn.stream().written.clone()).unwrap(), "echo:bye\n");
}

#[test]
fn drain_defers_to_an_outstanding_job() {
    let stream = MockStream::with_input("job\n");
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut queue = |_: &str| FrameDisposition::JobQueued;
    assert_eq!(conn.on_readable(&mut queue), ConnStatus::Open);
    // begin_drain while the job is in flight is a no-op; the sweep
    // comes back after completion.
    conn.begin_drain();
    let mut no_more = |_: &str| panic!("frame parsed during drain");
    assert_eq!(conn.complete_job("late-reply\n", &mut no_more), ConnStatus::Open);
    conn.begin_drain();
    assert_eq!(conn.on_writable(&mut no_more), ConnStatus::Closed);
    assert_eq!(String::from_utf8(conn.stream().written.clone()).unwrap(), "late-reply\n");
}

#[test]
fn oversized_frames_get_an_error_then_a_close_after_flush() {
    let big = "x".repeat(MAX_FRAME + 10);
    let stream = MockStream::with_input(&big);
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut on_frame = |l: &str| panic!("oversized frame dispatched: {l}");
    // Unconstrained write script: the error flushes in one edge and
    // the connection closes without ever dispatching a frame.
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Closed);
    let responses = conn.stream().responses();
    assert_eq!(responses.len(), 1);
    let kind = responses[0]
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .map(str::to_string);
    assert_eq!(kind.as_deref(), Some("oversized_frame"));
}

#[test]
fn bad_utf8_is_answered_and_parsing_continues() {
    let mut stream = MockStream::default();
    stream.input.extend([0xff, 0xfe, b'\n']);
    stream.input.extend("ok\n".bytes());
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut seen = Vec::new();
    let mut on_frame = |l: &str| {
        seen.push(l.to_string());
        echo(l)
    };
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    assert_eq!(seen, vec!["ok"], "the garbage frame must not reach dispatch");
    let written = String::from_utf8(conn.stream().written.clone()).unwrap();
    let mut lines = written.lines();
    let error = Json::parse(lines.next().unwrap()).unwrap();
    let kind = error
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .map(str::to_string);
    assert_eq!(kind.as_deref(), Some("bad_frame"));
    assert_eq!(lines.next(), Some("echo:ok"));
}

#[test]
fn a_full_write_buffer_pauses_parsing_until_it_drains() {
    // A reply far over the high-water mark, followed by another frame
    // that must NOT be parsed until the buffer drains.
    let mut stream = MockStream::with_input("big\nnext\n");
    stream.write_script.push_back(Step::Block);
    let mut conn = Conn::new(stream, MAX_FRAME);
    let huge = format!("{}\n", "y".repeat(WRITE_HIGH_WATER + 1));
    let seen = std::cell::RefCell::new(Vec::new());
    let mut on_frame = |l: &str| {
        seen.borrow_mut().push(l.to_string());
        if l == "big" {
            FrameDisposition::Reply(huge.clone())
        } else {
            FrameDisposition::Reply("small\n".to_string())
        }
    };
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    assert_eq!(*seen.borrow(), vec!["big"], "parsing must pause above the high-water mark");
    let (readable, writable) = conn.wants();
    assert!(!readable && writable);
    // Unconstrained writes from here: one writable edge drains the
    // buffer and resumes the second frame.
    while conn.wants().1 {
        assert_eq!(conn.on_writable(&mut on_frame), ConnStatus::Open);
    }
    assert_eq!(*seen.borrow(), vec!["big", "next"]);
    assert!(String::from_utf8(conn.stream().written.clone()).unwrap().ends_with("small\n"));
}

#[test]
fn an_interrupted_read_is_retried_transparently() {
    let mut stream = MockStream::with_input("survives-eintr\n");
    stream.read_script.extend([Step::Eintr, Step::Read(7), Step::Eintr, Step::Read(8)]);
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut seen = Vec::new();
    let mut on_frame = |l: &str| {
        seen.push(l.to_string());
        echo(l)
    };
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Open);
    assert_eq!(seen, vec!["survives-eintr"]);
}

#[test]
fn an_immediate_eof_with_nothing_owed_closes() {
    let mut stream = MockStream::default();
    stream.read_script.push_back(Step::Read(0));
    let mut conn = Conn::new(stream, MAX_FRAME);
    let mut on_frame = |l: &str| panic!("frame from an empty stream: {l}");
    assert_eq!(conn.on_readable(&mut on_frame), ConnStatus::Closed);
    assert!(conn.stream().written.is_empty());
}
