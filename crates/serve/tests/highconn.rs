//! The acceptance test for the readiness event loop: 1,000 concurrent
//! connections served through a single I/O thread with zero protocol
//! errors, every response byte-identical to direct in-process
//! [`Runner`] execution.
//!
//! The run uses a handful of distinct job shapes so most requests are
//! cache hits — the point is connection-multiplexing scale, not
//! simulator throughput — but identity is asserted on every response,
//! fresh and cached alike.

use std::io::{self, BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use scc_serve::net::Stream;
use scc_serve::protocol::{run_response, Proto};
use scc_serve::server::{Server, ServerConfig, ServerHandle};
use scc_serve::Addr;
use scc_sim::runner::{resolve_workload, Job};
use scc_sim::{OptLevel, Runner, SimOptions};
use scc_workloads::Scale;

const CONNS: usize = 1_000;
const SHAPES: i64 = 5;
const BASE_ITERS: i64 = 120;

fn start(cfg: ServerConfig) -> (Addr, ServerHandle, thread::JoinHandle<io::Result<()>>) {
    let server = Server::bind(&[Addr::Tcp("127.0.0.1:0".to_string())], cfg).expect("bind");
    let addr: SocketAddr = server.local_tcp_addr().expect("tcp addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.serve());
    (Addr::Tcp(addr.to_string()), handle, join)
}

/// One direct in-process execution per job shape; responses for every
/// connection are rendered from these results with the connection's
/// own id — the same pure rendering the server uses.
fn direct_results() -> Vec<std::sync::Arc<scc_sim::SimResult>> {
    (0..SHAPES)
        .map(|k| {
            let w = resolve_workload("freqmine", Scale::custom(BASE_ITERS + k)).expect("workload");
            let opts = SimOptions::new(OptLevel::Full);
            let job = Job::new(&w, &opts);
            Runner::new().try_run_one(&job, None, Some("direct"), false).expect("direct run").result
        })
        .collect()
}

#[test]
fn a_thousand_connections_share_one_io_thread_byte_identically() {
    // The test process itself needs >1k fds for its client sockets.
    let limit = scc_serve::sys::raise_nofile_limit().expect("raise fd limit");
    assert!(limit > 2 * CONNS as u64 + 64, "fd limit {limit} too low for {CONNS} connections");

    // The queue is deeper than the connection count so backpressure
    // (`queue_full`) cannot race into this identity check — overload
    // behavior has its own tests.
    let (addr, handle, join) = start(ServerConfig {
        workers: 2,
        queue_depth: 2 * CONNS,
        max_conns: CONNS + 16,
        ..ServerConfig::default()
    });

    // Open every connection before sending anything: the server must
    // hold all 1k open simultaneously on its single poll set.
    let mut conns = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let s = Stream::connect(&addr).unwrap_or_else(|e| panic!("connect {i}: {e}"));
        s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        conns.push(s);
    }

    // Phase 1: every connection writes its request (the server parses
    // and queues as readiness allows)...
    for (i, s) in conns.iter_mut().enumerate() {
        let iters = BASE_ITERS + (i as i64 % SHAPES);
        let req = format!(
            "{{\"verb\":\"run\",\"id\":\"hc-{i}\",\"workload\":\"freqmine\",\"iters\":{iters},\"level\":\"full-scc\"}}\n"
        );
        s.write_all(req.as_bytes()).unwrap_or_else(|e| panic!("write {i}: {e}"));
    }

    // ...then every connection reads its response. Expected bytes come
    // from direct in-process execution of the same five shapes.
    let direct = direct_results();
    let mut failures = Vec::new();
    for (i, s) in conns.into_iter().enumerate() {
        let shape = i % SHAPES as usize;
        let want = run_response(Proto::V1, Some(&format!("hc-{i}")), &direct[shape], None);
        let mut r = BufReader::new(s);
        let mut line = String::new();
        match r.read_line(&mut line) {
            Ok(0) => failures.push(format!("conn {i}: server closed before responding")),
            Ok(_) => {
                if line != want {
                    failures.push(format!(
                        "conn {i}: response differs from direct execution\n got: {line} want: {want}"
                    ));
                }
            }
            Err(e) => failures.push(format!("conn {i}: read: {e}")),
        }
        if failures.len() > 5 {
            break;
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));

    handle.drain();
    join.join().expect("serve thread").expect("serve result");
}
