//! End-to-end tests of the persistent store tier behind `scc-serve`:
//! the `persist`/`warm` verbs, warm-start byte-identity with direct
//! execution, graceful degradation on bad store directories, and the
//! drain-time flush.
//!
//! These tests share the process-wide result LRU with each other and
//! reset it between "restarts", so they serialize on [`SERIAL`]
//! (integration-test binaries are separate processes, so this does not
//! interact with any other test file).

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

use scc_serve::json::Json;
use scc_serve::protocol::{run_response, Proto};
use scc_serve::server::{Server, ServerConfig, ServerHandle};
use scc_serve::{Addr, Client};
use scc_sim::runner::{resolve_workload, Job, StoreTier};
use scc_sim::{set_cache_capacity, Runner, SimOptions, DEFAULT_CACHE_CAPACITY};
use scc_workloads::Scale;

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Empties the process-wide LRU, simulating the cold in-memory state of
/// a freshly started process while keeping the on-disk store.
fn reset_lru() {
    set_cache_capacity(0);
    set_cache_capacity(DEFAULT_CACHE_CAPACITY);
}

fn temp_store_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("scc-serve-store-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(cfg: ServerConfig) -> (Addr, ServerHandle, thread::JoinHandle<io::Result<()>>) {
    let server = Server::bind(&[Addr::Tcp("127.0.0.1:0".to_string())], cfg).expect("bind");
    let addr: SocketAddr = server.local_tcp_addr().expect("tcp addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.serve());
    (Addr::Tcp(addr.to_string()), handle, join)
}

fn store_cfg(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 8,
        store_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn drain_and_join(handle: &ServerHandle, join: thread::JoinHandle<io::Result<()>>) {
    handle.drain();
    join.join().expect("serve thread").expect("serve result");
}

fn run_line(id: &str, iters: i64) -> String {
    format!(
        "{{\"verb\":\"run\",\"id\":\"{id}\",\"workload\":\"freqmine\",\"iters\":{iters},\"level\":\"full-scc\"}}"
    )
}

/// The byte-exact response a warm-started server must produce: direct
/// *uncached* in-process execution through the same report renderer.
fn expected_run_response(id: &str, iters: i64) -> String {
    let w = resolve_workload("freqmine", Scale::custom(iters)).expect("workload");
    let job = Job::new(&w, &SimOptions::new(scc_sim::OptLevel::Full));
    let one =
        Runner::serial_uncached().try_run_one(&job, None, Some(id), false).expect("direct run");
    run_response(Proto::V1, Some(id), &one.result, None)
}

fn stat(j: &Json, name: &str) -> u64 {
    j.get("stats")
        .and_then(|s| s.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stat {name} missing: {j:?}"))
}

#[test]
fn persist_and_warm_verbs_round_trip_through_the_store() {
    let _guard = serialize();
    let dir = temp_store_dir("verbs");
    let (addr, handle, join) = start(store_cfg(&dir));
    let mut c = Client::connect(&addr).unwrap();

    // Store-backed server advertises the tier in stats.
    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    assert_eq!(stat(&s, "serve.store.enabled"), 1);
    assert_eq!(stat(&s, "serve.store.degraded"), 0);
    assert_eq!(stat(&s, "runner.store.writes"), 0);

    // A fresh run writes through to the store.
    let r = c.request_json(&run_line("w-1", 4101)).unwrap();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    assert_eq!(stat(&s, "runner.store.writes"), 1);

    // `persist` fsyncs and reports the write count.
    let p = c.request_json("{\"verb\":\"persist\"}").unwrap();
    assert_eq!(p.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(p.get("status").and_then(Json::as_str), Some("persisted"));
    assert_eq!(p.get("writes").and_then(Json::as_u64), Some(1));

    // `warm` promotes every live record into the LRU.
    let w = c.request_json("{\"verb\":\"warm\"}").unwrap();
    assert_eq!(w.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(w.get("status").and_then(Json::as_str), Some("warmed"));
    assert_eq!(w.get("entries").and_then(Json::as_u64), Some(1));
    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    assert_eq!(stat(&s, "runner.store.preloaded"), 1);

    drain_and_join(&handle, join);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_started_server_is_byte_identical_to_direct_execution() {
    let _guard = serialize();
    let dir = temp_store_dir("warmstart");

    // Cold server: simulate once, response written through to disk.
    let (addr, handle, join) = start(store_cfg(&dir));
    let mut c = Client::connect(&addr).unwrap();
    let cold = format!("{}\n", c.request(&run_line("ws-1", 4102)).unwrap());
    drop(c);
    drain_and_join(&handle, join); // drain flushes the store

    // "Restart": cold in-memory state, same disk.
    reset_lru();
    let (addr, handle, join) = start(store_cfg(&dir));
    let mut c = Client::connect(&addr).unwrap();
    let warm = format!("{}\n", c.request(&run_line("ws-1", 4102)).unwrap());
    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    assert!(
        stat(&s, "runner.store.hits") >= 1,
        "restarted server must have served from the store: {s:?}"
    );
    assert_eq!(stat(&s, "runner.store.recovered_records"), 1);
    drain_and_join(&handle, join);

    assert_eq!(cold, warm, "warm-start response diverges from the cold run");
    let expected = expected_run_response("ws-1", 4102);
    assert_eq!(warm, expected, "warm-start response diverges from direct execution");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unopenable_store_dir_degrades_to_cold_serving() {
    let _guard = serialize();
    // Point --store-dir at a regular file: the store cannot open, but
    // the server must come up and serve cold.
    let file = temp_store_dir("degraded-file");
    std::fs::write(&file, b"i am a file, not a directory").unwrap();
    let (addr, handle, join) = start(store_cfg(&file));
    let mut c = Client::connect(&addr).unwrap();

    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    assert_eq!(stat(&s, "serve.store.enabled"), 0);
    assert_eq!(stat(&s, "serve.store.degraded"), 1);

    // Runs still work (cold).
    let r = c.request_json(&run_line("deg-1", 4103)).unwrap();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));

    // Store verbs are clean typed errors, naming the degradation.
    for verb in ["persist", "warm"] {
        let e = c.request_json(&format!("{{\"verb\":\"{verb}\"}}")).unwrap();
        assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false));
        let err = e.get("error").expect("error object");
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("store_unavailable"));
        assert!(
            err.get("message").and_then(Json::as_str).unwrap().contains("failed to open"),
            "{e:?}"
        );
    }
    drain_and_join(&handle, join);
    let _ = std::fs::remove_file(&file);
}

#[test]
fn corrupt_store_contents_serve_cold_not_garbage() {
    let _guard = serialize();
    // A directory full of junk segment files: recovery discards them
    // all, warm finds nothing, and runs still work.
    let dir = temp_store_dir("degraded-corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("seg-0000000000000001.log"), vec![0xAB; 4096]).unwrap();
    std::fs::write(dir.join("seg-0000000000000002.log"), b"SCCSTOR1 but then garbage").unwrap();

    let (addr, handle, join) = start(store_cfg(&dir));
    let mut c = Client::connect(&addr).unwrap();
    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    assert_eq!(stat(&s, "serve.store.enabled"), 1, "junk contents are not a degraded store");
    assert_eq!(stat(&s, "runner.store.recovered_records"), 0);
    assert!(stat(&s, "runner.store.recovery_invalidated_segments") >= 2);

    let w = c.request_json("{\"verb\":\"warm\"}").unwrap();
    assert_eq!(w.get("entries").and_then(Json::as_u64), Some(0));

    let r = c.request_json(&run_line("cor-1", 4104)).unwrap();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    drain_and_join(&handle, join);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_and_warm_without_a_store_are_typed_errors() {
    let _guard = serialize();
    let (addr, handle, join) =
        start(ServerConfig { workers: 1, queue_depth: 4, ..ServerConfig::default() });
    let mut c = Client::connect(&addr).unwrap();
    for verb in ["persist", "warm"] {
        let e = c.request_json(&format!("{{\"verb\":\"{verb}\"}}")).unwrap();
        let err = e.get("error").expect("error object");
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("store_unavailable"));
        assert!(
            err.get("message").and_then(Json::as_str).unwrap().contains("--store-dir"),
            "{e:?}"
        );
    }
    let s = c.request_json("{\"verb\":\"stats\"}").unwrap();
    assert_eq!(stat(&s, "serve.store.enabled"), 0);
    assert_eq!(stat(&s, "serve.store.degraded"), 0);
    drain_and_join(&handle, join);
}

#[test]
fn drain_flushes_store_writes_before_exit() {
    let _guard = serialize();
    let dir = temp_store_dir("drainflush");
    let (addr, handle, join) = start(store_cfg(&dir));
    let mut c = Client::connect(&addr).unwrap();
    let r = c.request_json(&run_line("df-1", 4105)).unwrap();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    // Shutdown via the verb — no explicit persist.
    let d = c.request_json("{\"verb\":\"shutdown\"}").unwrap();
    assert_eq!(d.get("status").and_then(Json::as_str), Some("draining"));
    join.join().expect("serve thread").expect("serve result");
    let _ = handle;

    // The drained store recovers the record fully synced: nothing torn,
    // nothing corrupt.
    let tier = StoreTier::open(&dir).expect("reopen after drain");
    let rec = tier.recovery();
    assert_eq!(rec.records_indexed, 1, "drain must flush the write-through record");
    assert_eq!(rec.torn_truncations, 0);
    assert_eq!(rec.corrupt_records_skipped, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
