//! Restart-and-replay: boot the real `scc-serve` binary with a store
//! directory, populate it over the wire, `kill -9` the process, restart
//! it on the same directory, and replay the identical mix. The replayed
//! run must be answered almost entirely from the persistent tier
//! (warm-hit rate >= 0.9) and recovery must be clean.
//!
//! This test runs in its own process and talks to child processes, so
//! it does not share the in-process LRU with any other test.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use scc_serve::json::Json;
use scc_serve::loadgen::{run, stats_object, store_bench_json, LoadConfig};
use scc_serve::Addr;

fn temp_store_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scc-restart-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `scc-serve --listen tcp:127.0.0.1:0 --store-dir <dir>` and
/// waits for its "tcp bound at" banner to learn the ephemeral port.
fn spawn_server(store_dir: &Path) -> (Child, Addr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_scc-serve"))
        .args(["--listen", "tcp:127.0.0.1:0", "--workers", "2", "--queue", "16"])
        .arg("--store-dir")
        .arg(store_dir)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn scc-serve");
    let stderr = child.stderr.take().expect("child stderr");
    let mut lines = BufReader::new(stderr).lines();
    let mut addr = None;
    for line in lines.by_ref() {
        let line = line.expect("read child stderr");
        if let Some(rest) = line.strip_prefix("scc-serve: tcp bound at ") {
            addr = Some(Addr::Tcp(rest.trim().to_string()));
            break;
        }
    }
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    let addr = addr.expect("scc-serve never announced its tcp address");
    (child, addr)
}

fn mix(addr: Addr) -> LoadConfig {
    LoadConfig {
        addr,
        conns: 2,
        requests_per_conn: 4,
        workload: "freqmine".to_string(),
        iters: 4200,
        level: "full-scc".to_string(),
        deadline_ms: None,
        distinct: 4,
        idle_conns: 0,
        sweep: Vec::new(),
        stats_addrs: Vec::new(),
    }
}

#[test]
fn killed_server_replays_warm_from_its_store() {
    let dir = temp_store_dir();

    // Populate: run the mix against a cold server, then SIGKILL it —
    // no drain, no flush; durability must come from the write path.
    let (mut child, addr) = spawn_server(&dir);
    let cold = run(&mix(addr)).expect("populate run");
    assert_eq!(cold.errors, 0, "populate run failed: {cold:?}");
    assert!(cold.ok >= 8, "populate run too small: {cold:?}");
    child.kill().expect("kill -9 scc-serve");
    child.wait().expect("reap scc-serve");

    // Restart on the same directory and replay the identical mix.
    let (mut child, addr) = spawn_server(&dir);
    let warm = run(&mix(addr.clone())).expect("replay run");
    assert_eq!(warm.errors, 0, "replay run failed: {warm:?}");
    assert!(
        warm.store_warm_hit_rate >= 0.9,
        "replay after kill -9 must be served warm from the store: {warm:?}"
    );

    // Recovery after an unclean death must be clean: every record the
    // populate run wrote is indexed, nothing corrupt, nothing skipped.
    let stats = stats_object(&addr).expect("final stats");
    let read = |name: &str| stats.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert!(read("runner.store.recovered_records") >= 1, "{stats:?}");
    assert_eq!(read("runner.store.recovery_corrupt_skipped"), 0, "{stats:?}");
    assert_eq!(read("runner.store.recovery_torn_truncations"), 0, "{stats:?}");
    assert_eq!(read("runner.store.recovery_invalidated_segments"), 0, "{stats:?}");

    // The replay report renders as a valid BENCH_store document.
    let doc = store_bench_json(&warm, &stats);
    let j = Json::parse(&doc).expect("BENCH_store document parses");
    let rate = j.get("warm_hit_rate").and_then(Json::as_f64).expect("warm_hit_rate");
    assert!(rate >= 0.9, "{doc}");

    child.kill().expect("kill scc-serve");
    child.wait().expect("reap scc-serve");
    let _ = std::fs::remove_dir_all(&dir);
}
