//! The per-connection state machine of the readiness loop.
//!
//! A [`Conn`] owns one nonblocking stream plus its resumable framing
//! state: a [`FrameReader`](crate::frame::FrameReader) accumulating
//! request bytes and a [`FrameWriter`](crate::frame::FrameWriter)
//! draining response bytes. The event loop drives it with edge
//! handlers ([`Conn::on_readable`], [`Conn::on_writable`],
//! [`Conn::complete_job`]) and asks [`Conn::wants`] which readiness
//! events to poll for.
//!
//! Two invariants shape the machine:
//!
//! - **One outstanding `run` per connection.** While a job is queued or
//!   in flight (`awaiting_job`), no further frames are parsed — the
//!   bytes stay in the kernel socket buffer and the read accumulator.
//!   This keeps responses trivially ordered *and* is the fairness
//!   policy: a client pipelining a thousand `run` frames holds exactly
//!   one queue slot, so it cannot starve other connections.
//! - **Writes are never abandoned mid-frame.** Every response goes
//!   through the buffered writer; `WouldBlock` parks the remainder for
//!   the next `POLLOUT` edge and close-like states (`Eof` seen, drain,
//!   oversized frame) only complete once the buffer fully drains.
//!
//! The machine is generic over the stream so a deterministic mock (one
//! byte per read, scripted `WouldBlock`/`EINTR`) can drive every edge
//! case in tests; the event loop instantiates it with a real
//! [`Stream`](crate::net::Stream).

use std::io::{Read, Write};

use crate::frame::{FrameReader, FrameWriter, Poll, WriteStatus};
use crate::protocol::{error_response, ErrorCode, Proto};

/// Pause parsing new frames once this many response bytes are queued
/// behind a slow reader; parsing resumes when the buffer drains. This
/// bounds per-connection memory against a client that pipelines
/// requests but never reads responses.
pub const WRITE_HIGH_WATER: usize = 256 * 1024;

/// What the server did with one parsed frame.
#[derive(Debug)]
pub enum FrameDisposition {
    /// The frame was answered immediately; write this response.
    Reply(String),
    /// The frame became a queued job; the response will arrive later
    /// via [`Conn::complete_job`].
    JobQueued,
}

/// Whether the connection survives the edge that was just handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnStatus {
    /// Keep polling this connection.
    Open,
    /// Done (peer closed, I/O error, or a close-after-flush finished
    /// flushing): deregister and drop.
    Closed,
}

/// One multiplexed connection.
pub struct Conn<S> {
    stream: S,
    reader: FrameReader,
    writer: FrameWriter,
    max_frame: usize,
    awaiting_job: bool,
    close_after_flush: bool,
    eof: bool,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps a (nonblocking) stream with fresh framing state.
    pub fn new(stream: S, max_frame: usize) -> Conn<S> {
        Conn {
            stream,
            reader: FrameReader::new(max_frame),
            writer: FrameWriter::new(),
            max_frame,
            awaiting_job: false,
            close_after_flush: false,
            eof: false,
        }
    }

    /// The underlying stream (the event loop needs its fd).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// True while a `run` from this connection is queued or executing.
    pub fn awaiting_job(&self) -> bool {
        self.awaiting_job
    }

    /// Which readiness events the event loop should poll for:
    /// `(readable, writable)`.
    pub fn wants(&self) -> (bool, bool) {
        let readable = !self.awaiting_job
            && !self.close_after_flush
            && !self.eof
            && self.writer.pending() <= WRITE_HIGH_WATER;
        (readable, !self.writer.is_empty())
    }

    /// Marks the connection to close once its buffer drains — unless a
    /// job is outstanding, in which case the drain sweep will come back
    /// after the job's response is delivered.
    pub fn begin_drain(&mut self) {
        if !self.awaiting_job {
            self.close_after_flush = true;
        }
    }

    /// Handles a readable edge: drain the socket, parse complete
    /// frames, dispatch each through `on_frame`, then flush whatever
    /// responses accumulated.
    pub fn on_readable(
        &mut self,
        on_frame: &mut impl FnMut(&str) -> FrameDisposition,
    ) -> ConnStatus {
        loop {
            if self.awaiting_job
                || self.close_after_flush
                || self.eof
                || self.writer.pending() > WRITE_HIGH_WATER
            {
                break;
            }
            match self.reader.poll_line(&mut self.stream) {
                Poll::TimedOut => break,
                Poll::Eof => {
                    // A truncated unterminated frame is not a request;
                    // finish writing what we owe, then close.
                    self.eof = true;
                    break;
                }
                Poll::Err(_) => return ConnStatus::Closed,
                Poll::Oversized => {
                    // The stream is mid-frame; recovery is impossible.
                    // Framing errors predate envelope detection, so they
                    // are answered in v1 — the envelope every client
                    // generation understands.
                    let r = error_response(
                        Proto::V1,
                        None,
                        ErrorCode::OversizedFrame,
                        &format!("frame exceeds {} bytes", self.max_frame),
                        None,
                    );
                    self.writer.push(&r);
                    self.close_after_flush = true;
                    break;
                }
                Poll::BadUtf8 => {
                    let r = error_response(
                        Proto::V1,
                        None,
                        ErrorCode::BadFrame,
                        "frame is not valid UTF-8",
                        None,
                    );
                    self.writer.push(&r);
                }
                Poll::Line(line) => match on_frame(&line) {
                    FrameDisposition::Reply(r) => self.writer.push(&r),
                    FrameDisposition::JobQueued => self.awaiting_job = true,
                },
            }
        }
        self.flush()
    }

    /// Handles a writable edge: drain the response buffer, then — if
    /// the connection is idle again — resume parsing any frames that
    /// were buffered while parsing was paused.
    pub fn on_writable(
        &mut self,
        on_frame: &mut impl FnMut(&str) -> FrameDisposition,
    ) -> ConnStatus {
        match self.flush() {
            ConnStatus::Closed => ConnStatus::Closed,
            ConnStatus::Open => {
                if self.writer.is_empty() && !self.awaiting_job && !self.close_after_flush {
                    self.on_readable(on_frame)
                } else {
                    ConnStatus::Open
                }
            }
        }
    }

    /// Delivers the response of this connection's outstanding job and
    /// resumes the frame pump.
    pub fn complete_job(
        &mut self,
        reply: &str,
        on_frame: &mut impl FnMut(&str) -> FrameDisposition,
    ) -> ConnStatus {
        self.awaiting_job = false;
        self.writer.push(reply);
        self.on_writable(on_frame)
    }

    /// Writes as much as the socket takes; resolves close-like states
    /// once the buffer is empty.
    fn flush(&mut self) -> ConnStatus {
        match self.writer.write_some(&mut self.stream) {
            Ok(WriteStatus::Drained) => {
                if self.close_after_flush || (self.eof && !self.awaiting_job) {
                    ConnStatus::Closed
                } else {
                    ConnStatus::Open
                }
            }
            Ok(WriteStatus::Pending) => ConnStatus::Open,
            // A peer that vanished mid-response: nothing left to tell it.
            Err(_) => ConnStatus::Closed,
        }
    }
}
