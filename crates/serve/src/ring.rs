//! The consistent-hash ring `scc-route` places jobs with.
//!
//! Each shard contributes [`VNODES`] virtual points to a 64-bit hash
//! circle; a job's canonical key (see [`scc_sim::runner::job_key`])
//! hashes to a point and is owned by the first shard point at or after
//! it, wrapping at the top. Two properties matter:
//!
//! - **Stability**: a key's owner is a pure function of the key and the
//!   shard count, so every router instance — and every restart — agrees
//!   on placement, which is what makes each shard's result cache and
//!   persistent store accumulate *its* keys and stay hot.
//! - **Minimal disruption**: changing the shard count remaps only the
//!   keys whose arc changed hands (~1/N of the space per shard added or
//!   removed), not the whole keyspace — the reason this is a ring and
//!   not `hash % N`.
//!
//! The hash is FNV-1a, the same dependency-free digest used elsewhere
//! in the workspace (e.g. the wire report's `arch_digest`).

/// Virtual points per shard. 64 points keeps the expected per-shard
/// share of the keyspace within a few percent of uniform for the shard
/// counts this service targets (single digits), at negligible memory.
pub const VNODES: usize = 64;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Avalanche finalizer (splitmix64's) applied on top of FNV-1a before a
/// value lands on the circle. Raw FNV over short, near-identical
/// strings — `shard-3-vnode-17` vs `shard-3-vnode-18` — leaves the low
/// and high bits correlated, which clusters a shard's points on one arc
/// and skews ownership several-fold. The finalizer spreads them.
fn point(bytes: &[u8]) -> u64 {
    let mut h = fnv1a(bytes);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over `shards` backends, identified `0..N`.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Builds the ring for `shards` backends.
    ///
    /// Virtual points are derived from the shard *index*, not its
    /// address: placement must survive a shard moving to a new socket
    /// (its store directory travels with its index, not its port).
    pub fn new(shards: usize) -> Ring {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for v in 0..VNODES {
                points.push((point(format!("shard-{shard}-vnode-{v}").as_bytes()), shard));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// How many shards the ring covers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first point clockwise from the
    /// key's hash (wrapping at the top of the circle).
    pub fn shard_for(&self, key: &str) -> usize {
        let h = point(key.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        // Shaped like real job keys, varied in the fields that vary.
        (0..n)
            .map(|i| format!("wl-{}|iters={}|full-scc|max=400000000|cfg", i % 23, 100 + i))
            .collect()
    }

    #[test]
    fn placement_is_stable_across_ring_instances() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for k in keys(500) {
            assert_eq!(a.shard_for(&k), b.shard_for(&k));
        }
    }

    #[test]
    fn distribution_is_roughly_even() {
        for shards in [2usize, 3, 4, 8] {
            let ring = Ring::new(shards);
            let mut counts = vec![0usize; shards];
            let n = 8000;
            for k in keys(n) {
                counts[ring.shard_for(&k)] += 1;
            }
            let ideal = n / shards;
            for (s, &c) in counts.iter().enumerate() {
                // 64 vnodes keeps every shard within 2x of ideal with
                // lots of margin; catastrophic skew (a shard owning
                // almost nothing or almost everything) is the failure
                // this guards against.
                assert!(
                    c > ideal / 2 && c < ideal * 2,
                    "shard {s}/{shards} got {c} of {n} (ideal {ideal})"
                );
            }
        }
    }

    #[test]
    fn growing_the_ring_only_remaps_a_fraction() {
        let four = Ring::new(4);
        let five = Ring::new(5);
        let ks = keys(4000);
        let moved = ks.iter().filter(|k| four.shard_for(k) != five.shard_for(k)).count();
        // Ideal is 1/5 of keys moving to the new shard; assert well
        // under the 4/5 a naive `hash % N` would reshuffle.
        assert!(
            moved < ks.len() * 2 / 5,
            "{moved}/{} keys moved going 4 -> 5 shards",
            ks.len()
        );
        // And every moved key landed on some shard that exists.
        for k in &ks {
            assert!(five.shard_for(k) < 5);
        }
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = Ring::new(1);
        for k in keys(64) {
            assert_eq!(ring.shard_for(&k), 0);
        }
    }
}
