//! `scc-route`: a consistent-hash shard router in front of N
//! `scc-serve` backends.
//!
//! The router is a second, thinner instantiation of the same readiness
//! machinery the server runs on: one thread, one `poll(2)` set, and the
//! [`Conn`] state machine on every client connection. It never
//! simulates anything — its job is placement:
//!
//! 1. A client `run` frame is parsed just far enough to compute the
//!    job's canonical content key ([`run_key`] — the *same* string the
//!    shard will cache and store the result under), hashed onto the
//!    [`Ring`], and forwarded **verbatim** to the owning shard. Byte
//!    transparency is the point: the response a client sees through the
//!    router is byte-identical to what the shard produced, which in
//!    turn is byte-identical to direct in-process execution.
//! 2. Keyed placement means each shard only ever sees its own slice of
//!    the keyspace, so per-shard result caches and persistent stores
//!    stay hot and disjoint for free.
//! 3. `key`, `stats`, `health`, and `shutdown` are answered locally;
//!    `persist`/`warm` are per-shard administrative verbs and are
//!    rejected with a pointer at the shards.
//!
//! # Upstream pools and failover
//!
//! A shard allows one outstanding `run` per connection (its fairness
//! policy), so the router holds a small pool of upstream connections
//! per shard and picks the least-loaded one. Each upstream connection
//! carries a FIFO of the client tokens whose requests it forwarded —
//! NDJSON responses come back in order, so the front of the FIFO always
//! identifies the response's owner.
//!
//! A failed upstream moves to `Down` with doubling backoff
//! ([`RECONNECT_INITIAL`] → [`RECONNECT_CAP`]); every request it owed
//! is answered with a typed `shard_unavailable` error. While a shard
//! has no `Up` connection, requests hashing to it are rejected
//! immediately with `shard_unavailable` + `retry_after_ms` (time to the
//! next reconnect probe) — degraded, never stalled: the other shards'
//! traffic is unaffected, which is exactly the deopt-style contract of
//! a *recoverable* invalidation ([`ErrorCode::is_retryable`]).
//!
//! # Drain
//!
//! `shutdown` (or SIGTERM via [`RouterHandle::drain`]) drains the
//! router *and* propagates: one `shutdown` frame is written to each
//! shard (tagged with a control token so its acknowledgement is
//! discarded), so a single `shutdown` to the router winds down the
//! whole topology; in-flight forwarded jobs still complete and deliver
//! first.

use std::collections::{HashMap, VecDeque};
use std::io;
#[cfg(unix)]
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(unix)]
use crate::conn::{Conn, ConnStatus};
use crate::conn::FrameDisposition;
use crate::frame::{FrameReader, FrameWriter, Poll};
use crate::net::{Addr, Stream};
use crate::protocol::{
    error_response, key_response, metrics_object, ok_response, parse_request, run_key,
    trace_key, ErrorCode, Proto, Request, MAX_FRAME_BYTES,
};
use crate::ring::Ring;
#[cfg(unix)]
use crate::sys;
use scc_pipeline::{Metric, MetricValue};

/// Shard responses can carry full reports with audit logs; mirror the
/// blocking client's response cap rather than the request cap.
pub const MAX_UPSTREAM_FRAME: usize = 16 * 1024 * 1024;

/// First reconnect delay after an upstream connection fails.
pub const RECONNECT_INITIAL: Duration = Duration::from_millis(100);

/// Ceiling of the doubling reconnect backoff.
pub const RECONNECT_CAP: Duration = Duration::from_secs(5);

/// Poll timeout — the cadence of reconnect probes and drain checks when
/// no fd is ready.
#[cfg(unix)]
const POLL_TIMEOUT_MS: i32 = 100;

/// How long drain waits for clients to take their final bytes before
/// force-closing.
#[cfg(unix)]
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// FIFO token marking a router-originated control frame (the propagated
/// `shutdown`): the shard's acknowledgement has no client to go to.
const CONTROL_TOKEN: u64 = u64::MAX;

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Backend shard addresses; index in this list is the shard's ring
    /// identity, so order matters and must be stable across restarts.
    pub shards: Vec<Addr>,
    /// Upstream connections per shard. Shards run one outstanding job
    /// per connection, so this is also the router's per-shard
    /// concurrency ceiling.
    pub upstream_conns: usize,
    /// Client connection limit (admission control, as on the server).
    pub max_conns: usize,
    /// Cycle-budget cap — **must match the shards'** `--max-cycles`:
    /// the router hashes the canonical key, and the key embeds the
    /// clamped budget.
    pub max_cycles: u64,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shards: Vec::new(),
            upstream_conns: 4,
            max_conns: 4096,
            max_cycles: scc_sim::build::DEFAULT_MAX_CYCLES,
        }
    }
}

/// One live upstream connection to a shard.
#[cfg(unix)]
struct Upstream {
    stream: Stream,
    reader: FrameReader,
    writer: FrameWriter,
    /// Client tokens owed a response, in forwarding order (NDJSON
    /// responses return in order on one connection). Entries carry the
    /// envelope/id needed to synthesize a typed failure if the
    /// connection dies with the response still owed.
    fifo: VecDeque<FifoEntry>,
}

#[cfg(unix)]
struct FifoEntry {
    token: u64,
    proto: Proto,
    id: Option<String>,
}

/// One slot of a shard's connection pool.
#[cfg(unix)]
enum Slot {
    Up(Upstream),
    /// Disconnected; retry at `until`, then double `backoff`.
    Down { until: Instant, backoff: Duration },
}

#[cfg(unix)]
struct ShardState {
    addr: Addr,
    slots: Vec<Slot>,
    forwarded: u64,
}

#[cfg(unix)]
impl ShardState {
    fn up_slots(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, Slot::Up(_))).count()
    }

    /// Milliseconds until this shard's earliest reconnect probe — the
    /// honest `retry_after_ms` for `shard_unavailable`.
    fn retry_after_ms(&self) -> u64 {
        let now = Instant::now();
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Down { until, .. } => {
                    Some(until.saturating_duration_since(now).as_millis() as u64)
                }
                Slot::Up(_) => None,
            })
            .min()
            .unwrap_or(0)
            .clamp(10, crate::server::RETRY_AFTER_CAP_MS)
    }
}

/// Loop-local counters behind the `stats` verb (single-threaded, so
/// plain integers).
#[derive(Default)]
struct Counters {
    connections: u64,
    conns_refused: u64,
    setup_failures: u64,
    requests: u64,
    forwarded: u64,
    replies: u64,
    shard_unavailable: u64,
    upstream_failures: u64,
    reconnects: u64,
    v1_frames: u64,
}

/// A `run` frame parsed, placed, and awaiting an upstream slot.
struct PendingForward {
    token: u64,
    shard: usize,
    line: String,
    proto: Proto,
    id: Option<String>,
}

/// State shared with [`RouterHandle`] (the only cross-thread surface).
struct RouterShared {
    drain: AtomicBool,
}

/// A handle that can trigger drain from outside the router thread (the
/// binary points SIGTERM here).
#[derive(Clone)]
pub struct RouterHandle {
    shared: Arc<RouterShared>,
}

impl RouterHandle {
    /// Begins graceful drain: stop accepting, deliver in-flight
    /// responses, propagate `shutdown` to every shard, then let
    /// [`Router::serve`] return.
    pub fn drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
    }

    /// True once drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.drain.load(Ordering::SeqCst)
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

#[cfg(unix)]
impl Listener {
    fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

/// The router: listeners + ring + upstream pools, one readiness loop.
/// Construct with [`Router::bind`], then block in [`Router::serve`].
pub struct Router {
    shared: Arc<RouterShared>,
    cfg: RouterConfig,
    ring: Ring,
    listeners: Vec<Listener>,
    tcp_addrs: Vec<SocketAddr>,
}

impl Router {
    /// Binds every listen address and prepares (but does not start) the
    /// router. Shards are dialed lazily by the loop, so the router may
    /// come up before its shards do.
    pub fn bind(addrs: &[Addr], cfg: RouterConfig) -> io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shard addresses"));
        }
        let mut listeners = Vec::new();
        let mut tcp_addrs = Vec::new();
        for addr in addrs {
            match addr {
                Addr::Tcp(hp) => {
                    let l = TcpListener::bind(hp.as_str())?;
                    l.set_nonblocking(true)?;
                    tcp_addrs.push(l.local_addr()?);
                    listeners.push(Listener::Tcp(l));
                }
                #[cfg(unix)]
                Addr::Unix(path) => {
                    let _ = std::fs::remove_file(path);
                    let l = UnixListener::bind(path)?;
                    l.set_nonblocking(true)?;
                    listeners.push(Listener::Unix(l, path.clone()));
                }
            }
        }
        if listeners.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no listen addresses"));
        }
        let ring = Ring::new(cfg.shards.len());
        Ok(Router {
            shared: Arc::new(RouterShared { drain: AtomicBool::new(false) }),
            cfg: RouterConfig { upstream_conns: cfg.upstream_conns.max(1), ..cfg },
            ring,
            listeners,
            tcp_addrs,
        })
    }

    /// A drain handle usable from other threads (tests, signal wiring).
    pub fn handle(&self) -> RouterHandle {
        RouterHandle { shared: Arc::clone(&self.shared) }
    }

    /// The first bound TCP address (resolves port 0 for tests).
    pub fn local_tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addrs.first().copied()
    }

    /// Runs the router until drained.
    #[cfg(unix)]
    pub fn serve(self) -> io::Result<()> {
        let result = route_loop(&self);
        for l in &self.listeners {
            if let Listener::Unix(_, path) = l {
                let _ = std::fs::remove_file(path);
            }
        }
        result
    }

    /// The readiness loop multiplexes raw fds via `poll(2)`, which this
    /// build target does not provide.
    #[cfg(not(unix))]
    pub fn serve(self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "scc-route's readiness loop requires a Unix-like OS",
        ))
    }
}

/// Everything below is the single router thread.
#[cfg(unix)]
fn route_loop(router: &Router) -> io::Result<()> {
    let cfg = &router.cfg;
    let ring = &router.ring;
    let mut conns: HashMap<u64, Conn<Stream>> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut counters = Counters::default();
    let mut shards: Vec<ShardState> = cfg
        .shards
        .iter()
        .map(|addr| ShardState {
            addr: addr.clone(),
            slots: (0..cfg.upstream_conns)
                .map(|_| Slot::Down {
                    until: Instant::now(),
                    backoff: RECONNECT_INITIAL,
                })
                .collect(),
            forwarded: 0,
        })
        .collect();
    let mut pending: Vec<PendingForward> = Vec::new();
    let mut completions: Vec<(u64, String)> = Vec::new();
    let mut drain_started: Option<Instant> = None;
    let mut shutdown_propagated = false;
    let mut accept_backoff_until: Option<Instant> = None;

    loop {
        let draining = router.shared.drain.load(Ordering::SeqCst);
        if !draining {
            // Reconnect probes for Down slots whose backoff expired.
            reconnect_due_slots(&mut shards, &mut counters);
        } else {
            let started = *drain_started.get_or_insert_with(Instant::now);
            if !shutdown_propagated {
                propagate_shutdown(&mut shards);
                shutdown_propagated = true;
            }
            sweep_for_drain(&mut conns, |tok, line| {
                frame_action(
                    cfg,
                    ring,
                    &shards,
                    &mut counters,
                    &mut pending,
                    &router.shared.drain,
                    tok,
                    line,
                )
            });
            let upstream_quiet = shards.iter().all(|s| {
                s.slots.iter().all(|slot| match slot {
                    Slot::Up(u) => u.writer.is_empty(),
                    Slot::Down { .. } => true,
                })
            });
            if (conns.is_empty() && upstream_quiet) || started.elapsed() > DRAIN_GRACE {
                return Ok(());
            }
        }

        // ---- Build the poll set: listeners, clients, upstreams. ----
        let accepting = !draining
            && accept_backoff_until.is_none_or(|t| Instant::now() >= t)
            && conns.len() < cfg.max_conns.saturating_add(64);
        let mut fds = Vec::with_capacity(router.listeners.len() + conns.len() + shards.len());
        let listener_base = fds.len();
        for l in &router.listeners {
            let fd = if accepting { l.raw_fd() } else { -1 };
            fds.push(sys::PollFd::new(fd, sys::POLLIN));
        }
        let conn_base = fds.len();
        let mut conn_tokens = Vec::with_capacity(conns.len());
        for (tok, c) in &conns {
            let (r, w) = c.wants();
            let mut events = 0;
            if r {
                events |= sys::POLLIN;
            }
            if w {
                events |= sys::POLLOUT;
            }
            fds.push(sys::PollFd::new(c.stream().as_raw_fd(), events));
            conn_tokens.push(*tok);
        }
        let up_base = fds.len();
        let mut up_index = Vec::new();
        for (si, shard) in shards.iter().enumerate() {
            for (vi, slot) in shard.slots.iter().enumerate() {
                if let Slot::Up(u) = slot {
                    let mut events = sys::POLLIN;
                    if !u.writer.is_empty() {
                        events |= sys::POLLOUT;
                    }
                    fds.push(sys::PollFd::new(u.stream.as_raw_fd(), events));
                    up_index.push((si, vi));
                }
            }
        }

        sys::poll_fds(&mut fds, POLL_TIMEOUT_MS)?;

        // ---- Upstream edges first: responses unblock clients. ----
        for (i, &(si, vi)) in up_index.iter().enumerate() {
            let revents = fds[up_base + i].revents;
            if revents == 0 {
                continue;
            }
            service_upstream(&mut shards[si], vi, &mut counters, &mut completions);
        }

        // ---- Accept new clients. ----
        for (i, l) in router.listeners.iter().enumerate() {
            if fds[listener_base + i].revents & sys::POLLIN != 0 {
                if let Err(e) = accept_all(cfg, l, &mut conns, &mut next_token, &mut counters) {
                    eprintln!("scc-route: accept error: {e}");
                    accept_backoff_until = Some(Instant::now() + Duration::from_millis(50));
                }
            }
        }

        // ---- Client edges. ----
        for (i, tok) in conn_tokens.iter().enumerate() {
            let revents = fds[conn_base + i].revents;
            if revents == 0 {
                continue;
            }
            let Some(c) = conns.get_mut(tok) else { continue };
            let mut cb = |line: &str| {
                frame_action(
                    cfg,
                    ring,
                    &shards,
                    &mut counters,
                    &mut pending,
                    &router.shared.drain,
                    *tok,
                    line,
                )
            };
            let status = if revents & sys::POLLNVAL != 0 {
                ConnStatus::Closed
            } else if revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0 {
                c.on_readable(&mut cb)
            } else {
                c.on_writable(&mut cb)
            };
            if status == ConnStatus::Closed {
                conns.remove(tok);
            }
        }

        // ---- Dispatch placed forwards and deliver completions until
        // quiescent: a delivery re-pumps its connection's parser, which
        // can queue fresh forwards; a dispatch onto a dead shard
        // synthesizes an error completion. ----
        while !pending.is_empty() || !completions.is_empty() {
            for fwd in std::mem::take(&mut pending) {
                dispatch_forward(&mut shards, fwd, &mut counters, &mut completions);
            }
            deliver_completions(
                cfg,
                ring,
                &shards,
                &mut counters,
                &mut pending,
                &router.shared.drain,
                &mut conns,
                &mut completions,
            );
        }
    }
}

/// Routes each completed (or synthesized) response to its client
/// connection and re-pumps that connection's parser, collecting any
/// next forward into `pending`.
#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn deliver_completions(
    cfg: &RouterConfig,
    ring: &Ring,
    shards: &[ShardState],
    counters: &mut Counters,
    pending: &mut Vec<PendingForward>,
    drain: &AtomicBool,
    conns: &mut HashMap<u64, Conn<Stream>>,
    completions: &mut Vec<(u64, String)>,
) {
    for (tok, reply) in completions.drain(..) {
        if tok == CONTROL_TOKEN {
            continue;
        }
        // A client that vanished mid-job simply loses its response.
        let Some(c) = conns.get_mut(&tok) else { continue };
        counters.replies += 1;
        let mut cb =
            |line: &str| frame_action(cfg, ring, shards, counters, pending, drain, tok, line);
        if c.complete_job(&reply, &mut cb) == ConnStatus::Closed {
            conns.remove(&tok);
        }
    }
}

/// Parses one client frame and decides its fate: answer locally, or
/// queue a forward (the dispatch happens after the conn borrow ends).
#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn frame_action(
    cfg: &RouterConfig,
    ring: &Ring,
    shards: &[ShardState],
    counters: &mut Counters,
    pending: &mut Vec<PendingForward>,
    drain: &AtomicBool,
    token: u64,
    line: &str,
) -> FrameDisposition {
    use FrameDisposition::Reply;
    let draining = drain.load(Ordering::SeqCst);
    counters.requests += 1;
    let frame = match parse_request(line) {
        Ok(f) => f,
        Err(e) => {
            return Reply(error_response(e.proto, e.id.as_deref(), e.code, &e.message, None))
        }
    };
    let proto = frame.proto;
    if proto == Proto::V1 {
        counters.v1_frames += 1;
    }
    match frame.request {
        Request::Health => {
            let status = if draining { "draining" } else { "ok" };
            Reply(ok_response(proto, &format!("\"status\":\"{status}\"")))
        }
        Request::Stats => {
            Reply(ok_response(proto, &format!("\"stats\":{}", metrics_object(&route_metrics(
                cfg, shards, counters, draining,
            )))))
        }
        Request::Shutdown => {
            // Raise the drain flag here; the loop observes it on its
            // next tick and propagates `shutdown` to the shards.
            // Replying first lets the client see the acknowledgement
            // before its connection drains.
            drain.store(true, Ordering::SeqCst);
            Reply(ok_response(proto, "\"status\":\"draining\""))
        }
        Request::Key(req) => {
            // Same computation the shard would do — and the exact
            // string the ring hashes below for `run`.
            let key = run_key(&req, cfg.max_cycles);
            Reply(key_response(proto, req.id.as_deref(), &key))
        }
        Request::KeyTrace(req) => {
            let key = trace_key(&req, cfg.max_cycles);
            Reply(key_response(proto, req.id.as_deref(), &key))
        }
        Request::Persist | Request::Warm => Reply(error_response(
            proto,
            None,
            ErrorCode::BadRequest,
            "store administration is per-shard; send this verb to a shard directly",
            None,
        )),
        Request::Run(req) if draining => Reply(error_response(
            proto,
            req.id.as_deref(),
            ErrorCode::Draining,
            "router is draining; submit to another instance",
            None,
        )),
        Request::RunTrace(req) if draining => Reply(error_response(
            proto,
            req.id.as_deref(),
            ErrorCode::Draining,
            "router is draining; submit to another instance",
            None,
        )),
        Request::Run(req) => {
            // Forward the client's bytes verbatim: the router adds
            // nothing and rewrites nothing, so shard responses (keyed
            // by the same id and proto) pass through byte-identical.
            let shard = ring.shard_for(&run_key(&req, cfg.max_cycles));
            pending.push(PendingForward {
                token,
                shard,
                line: format!("{line}\n"),
                proto,
                id: req.id,
            });
            FrameDisposition::JobQueued
        }
        Request::RunTrace(req) => {
            // Trace jobs place by the same canonical key machinery —
            // the digest-derived name means byte-identical traces from
            // any client land on the same shard, and the frame still
            // forwards verbatim.
            let shard = ring.shard_for(&trace_key(&req, cfg.max_cycles));
            pending.push(PendingForward {
                token,
                shard,
                line: format!("{line}\n"),
                proto,
                id: req.id,
            });
            FrameDisposition::JobQueued
        }
    }
}

/// Sends one queued forward to the least-loaded Up slot of its shard.
/// A fully-down shard — or a write that fails on the spot — resolves
/// the request with a synthesized `shard_unavailable` completion; the
/// client is never left waiting on a connection that cannot answer.
#[cfg(unix)]
fn dispatch_forward(
    shards: &mut [ShardState],
    fwd: PendingForward,
    counters: &mut Counters,
    completions: &mut Vec<(u64, String)>,
) {
    let shard = &mut shards[fwd.shard];
    let vi = shard
        .slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            Slot::Up(u) => Some((i, u.fifo.len())),
            Slot::Down { .. } => None,
        })
        .min_by_key(|&(_, depth)| depth)
        .map(|(i, _)| i);
    let Some(vi) = vi else {
        counters.shard_unavailable += 1;
        completions.push((
            fwd.token,
            error_response(
                fwd.proto,
                fwd.id.as_deref(),
                ErrorCode::ShardUnavailable,
                &format!("shard {} ({}) is unreachable", fwd.shard, shard.addr),
                Some(shard.retry_after_ms()),
            ),
        ));
        return;
    };
    let Slot::Up(up) = &mut shard.slots[vi] else { unreachable!() };
    up.writer.push(&fwd.line);
    up.fifo.push_back(FifoEntry { token: fwd.token, proto: fwd.proto, id: fwd.id });
    counters.forwarded += 1;
    shard.forwarded += 1;
    // Opportunistic flush; leftovers drain on the next POLLOUT edge. A
    // hard failure takes the slot down, which synthesizes errors for
    // everything in its FIFO — including the forward just queued.
    if up.writer.write_some(&mut up.stream).is_err() {
        fail_slot_into(shard, vi, counters, completions);
    }
}

/// Services one Up slot's readiness edge: drain responses (each one
/// resolves the FIFO front), flush pending writes, and on any hard
/// failure take the slot Down and synthesize errors for everything it
/// still owed.
#[cfg(unix)]
fn service_upstream(
    shard: &mut ShardState,
    vi: usize,
    counters: &mut Counters,
    completions: &mut Vec<(u64, String)>,
) {
    let failed = {
        let Slot::Up(u) = &mut shard.slots[vi] else { return };
        let mut failed = false;
        loop {
            match u.reader.poll_line(&mut u.stream) {
                Poll::TimedOut => break,
                Poll::Line(l) => {
                    if let Some(entry) = u.fifo.pop_front() {
                        completions.push((entry.token, format!("{l}\n")));
                    }
                    // A frame with no FIFO owner is a shard protocol
                    // violation; drop it rather than misattribute.
                }
                Poll::BadUtf8 => {
                    // The line was consumed; its owner gets a typed
                    // failure and the stream stays usable.
                    if let Some(entry) = u.fifo.pop_front() {
                        completions.push((
                            entry.token,
                            error_response(
                                entry.proto,
                                entry.id.as_deref(),
                                ErrorCode::InternalError,
                                "shard returned a non-UTF-8 frame",
                                None,
                            ),
                        ));
                    }
                }
                Poll::Eof | Poll::Err(_) | Poll::Oversized => {
                    failed = true;
                    break;
                }
            }
        }
        if !failed {
            if let Err(_e) = u.writer.write_some(&mut u.stream) {
                failed = true;
            }
        }
        failed
    };
    if failed {
        fail_slot_into(shard, vi, counters, completions);
    }
}

/// Takes slot `vi` Down (fresh backoff) and synthesizes a typed
/// `shard_unavailable` for every response it still owed.
#[cfg(unix)]
fn fail_slot_into(
    shard: &mut ShardState,
    vi: usize,
    counters: &mut Counters,
    completions: &mut Vec<(u64, String)>,
) {
    let old = std::mem::replace(
        &mut shard.slots[vi],
        Slot::Down { until: Instant::now() + RECONNECT_INITIAL, backoff: RECONNECT_INITIAL },
    );
    counters.upstream_failures += 1;
    if let Slot::Up(u) = old {
        let retry = shard.retry_after_ms();
        for entry in u.fifo {
            if entry.token == CONTROL_TOKEN {
                continue;
            }
            counters.shard_unavailable += 1;
            completions.push((
                entry.token,
                error_response(
                    entry.proto,
                    entry.id.as_deref(),
                    ErrorCode::ShardUnavailable,
                    &format!("shard connection to {} failed mid-request", shard.addr),
                    Some(retry),
                ),
            ));
        }
    }
}

/// Attempts to connect every Down slot whose backoff expired.
#[cfg(unix)]
fn reconnect_due_slots(shards: &mut [ShardState], counters: &mut Counters) {
    let now = Instant::now();
    for shard in shards.iter_mut() {
        for slot in shard.slots.iter_mut() {
            let Slot::Down { until, backoff } = slot else { continue };
            if now < *until {
                continue;
            }
            match Stream::connect(&shard.addr) {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_err() {
                        let next = (*backoff * 2).min(RECONNECT_CAP);
                        *slot = Slot::Down { until: now + next, backoff: next };
                        continue;
                    }
                    counters.reconnects += 1;
                    *slot = Slot::Up(Upstream {
                        stream,
                        reader: FrameReader::new(MAX_UPSTREAM_FRAME),
                        writer: FrameWriter::new(),
                        fifo: VecDeque::new(),
                    });
                }
                Err(_) => {
                    let next = (*backoff * 2).min(RECONNECT_CAP);
                    *slot = Slot::Down { until: now + next, backoff: next };
                }
            }
        }
    }
}

/// Writes one `shutdown` frame to each shard (on its least-loaded Up
/// slot), tagged with the control token so the acknowledgement is
/// discarded. Shards drain themselves from there.
#[cfg(unix)]
fn propagate_shutdown(shards: &mut [ShardState]) {
    for shard in shards.iter_mut() {
        let slot = shard
            .slots
            .iter_mut()
            .filter_map(|s| match s {
                Slot::Up(u) => Some(u),
                Slot::Down { .. } => None,
            })
            .min_by_key(|u| u.fifo.len());
        if let Some(up) = slot {
            up.writer.push("{\"verb\":\"shutdown\"}\n");
            up.fifo.push_back(FifoEntry { token: CONTROL_TOKEN, proto: Proto::V1, id: None });
            let _ = up.writer.write_some(&mut up.stream);
        }
        // A fully-down shard gets nothing — it is already not serving,
        // and whoever supervises it (scc-load's spawn mode, CI) owns
        // its lifecycle.
    }
}

/// Drain sweep over client connections, mirroring the server's.
#[cfg(unix)]
fn sweep_for_drain(
    conns: &mut HashMap<u64, Conn<Stream>>,
    mut cb: impl FnMut(u64, &str) -> FrameDisposition,
) {
    let mut closed = Vec::new();
    for (tok, c) in conns.iter_mut() {
        if c.awaiting_job() {
            continue;
        }
        c.begin_drain();
        let mut f = |line: &str| cb(*tok, line);
        if c.on_writable(&mut f) == ConnStatus::Closed {
            closed.push(*tok);
        }
    }
    for tok in closed {
        conns.remove(&tok);
    }
}

/// Accepts until `WouldBlock` with the same admission policy as the
/// server.
#[cfg(unix)]
fn accept_all(
    cfg: &RouterConfig,
    l: &Listener,
    conns: &mut HashMap<u64, Conn<Stream>>,
    next_token: &mut u64,
    counters: &mut Counters,
) -> io::Result<()> {
    let would_block = |e: &io::Error| e.kind() == io::ErrorKind::WouldBlock;
    loop {
        let stream = match l {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Stream::Tcp(s),
                Err(e) if would_block(&e) => return Ok(()),
                Err(e) => return Err(e),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Stream::Unix(s),
                Err(e) if would_block(&e) => return Ok(()),
                Err(e) => return Err(e),
            },
        };
        counters.connections += 1;
        if conns.len() >= cfg.max_conns {
            counters.conns_refused += 1;
            let r = error_response(
                Proto::V1,
                None,
                ErrorCode::OverCapacity,
                &format!("connection limit {} reached", cfg.max_conns),
                Some(100),
            );
            let _ = stream.set_nonblocking(true);
            let mut stream = stream;
            let _ = stream.write(r.as_bytes());
            continue;
        }
        if let Err(e) = stream.set_nonblocking(true) {
            counters.setup_failures += 1;
            eprintln!("scc-route: set_nonblocking failed on accepted connection: {e}");
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        conns.insert(token, Conn::new(stream, MAX_FRAME_BYTES));
    }
}

/// The `route.*` metric set behind the router's `stats` verb.
#[cfg(unix)]
fn route_metrics(
    cfg: &RouterConfig,
    shards: &[ShardState],
    counters: &Counters,
    draining: bool,
) -> Vec<Metric> {
    let counter = |name: String, v: u64| Metric { name, value: MetricValue::Counter(v) };
    let c = |name: &str, v: u64| counter(name.to_string(), v);
    let shards_up = shards.iter().filter(|s| s.up_slots() > 0).count();
    let slots_up: usize = shards.iter().map(|s| s.up_slots()).sum();
    let mut out = vec![
        c("route.shards", shards.len() as u64),
        c("route.shards.up", shards_up as u64),
        c("route.upstream.conns", (shards.len() * cfg.upstream_conns) as u64),
        c("route.upstream.conns_up", slots_up as u64),
        c("route.upstream.failures", counters.upstream_failures),
        c("route.reconnects", counters.reconnects),
        c("route.draining", u64::from(draining)),
        c("route.connections", counters.connections),
        c("route.conns.refused", counters.conns_refused),
        c("route.conns.max", cfg.max_conns as u64),
        c("route.net.setup_failures", counters.setup_failures),
        c("route.requests", counters.requests),
        c("route.forwarded", counters.forwarded),
        c("route.replies", counters.replies),
        c("route.shard_unavailable", counters.shard_unavailable),
        c("route.proto.v1_frames", counters.v1_frames),
    ];
    for (i, s) in shards.iter().enumerate() {
        out.push(counter(format!("route.shard.{i}.forwarded"), s.forwarded));
        out.push(counter(format!("route.shard.{i}.up"), s.up_slots() as u64));
    }
    out
}
