//! The `scc-serve` wire protocol: newline-delimited JSON frames.
//!
//! # Grammar
//!
//! Every frame is one JSON object on one line (`\n`-terminated, at most
//! [`MAX_FRAME_BYTES`] bytes). Requests carry a `verb`:
//!
//! ```text
//! {"verb":"run","id":"r-1","workload":"freqmine","iters":800,
//!  "level":"full-scc","deadline_ms":2000,"max_cycles":400000000,
//!  "audit":false}
//! {"verb":"stats"}
//! {"verb":"health"}
//! {"verb":"persist"}
//! {"verb":"warm"}
//! {"verb":"shutdown"}
//! ```
//!
//! Responses are one JSON object per request, in request order:
//!
//! ```text
//! {"ok":true,"id":"r-1","report":{...}}              // run
//! {"ok":true,"id":"r-1","report":{...},"audit":[..]} // run with audit
//! {"ok":false,"id":"r-1","error":{"kind":"queue_full","message":"...",
//!  "retry_after_ms":120}}                            // any failure
//! ```
//!
//! The `report` object is a *pure function of the simulation result* —
//! no timestamps, no cache provenance — so a response is byte-identical
//! whether the job was simulated fresh, resolved from the shared cache,
//! or executed by a direct in-process [`Runner`](scc_sim::Runner). The
//! regression suite holds the service to that.

use crate::json::{escape, Json};
use scc_pipeline::{Metric, MetricValue};
use scc_sim::{OptLevel, SimResult};

/// Hard cap on one request frame. Well above any legitimate request
/// (a few hundred bytes) and well below anything that could pressure
/// server memory.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Upper bound a client may set for `iters` (workload scale). Keeps a
/// single request from monopolizing a worker for minutes.
pub const MAX_ITERS: i64 = 100_000;

/// Default workload scale when a `run` request omits `iters`.
pub const DEFAULT_ITERS: i64 = 1000;

/// A parsed `run` request.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// Client-chosen request ID, echoed on the response and propagated
    /// into the runner's trace track.
    pub id: Option<String>,
    /// Workload name (validated against the suite by the worker).
    pub workload: String,
    /// Workload scale (base loop iterations).
    pub iters: i64,
    /// Optimization level.
    pub level: OptLevel,
    /// Optional cycle-budget override (clamped by the server).
    pub max_cycles: Option<u64>,
    /// Optional deadline, milliseconds from request receipt.
    pub deadline_ms: Option<u64>,
    /// Request the SCC decision audit log of the run.
    pub audit: bool,
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Simulate one job.
    Run(RunRequest),
    /// Service introspection: queue, counters, cache.
    Stats,
    /// Liveness/readiness: `ok` or `draining`.
    Health,
    /// Fsync the persistent store's active segment (durability barrier).
    Persist,
    /// Promote every live store record into the in-memory result cache.
    Warm,
    /// Begin graceful drain: stop accepting, finish in-flight, exit.
    Shutdown,
}

/// A protocol-level rejection (the frame never became a job).
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoError {
    /// Machine-readable kind: `bad_frame`, `unknown_verb`, `bad_request`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Request ID, when the frame parsed far enough to reveal one.
    pub id: Option<String>,
}

impl ProtoError {
    fn new(kind: &'static str, message: impl Into<String>, id: Option<String>) -> ProtoError {
        ProtoError { kind, message: message.into(), id }
    }
}

/// Parses an optimization level from its table label (the same labels
/// `OptLevel::label` prints).
pub fn parse_level(label: &str) -> Option<OptLevel> {
    OptLevel::all().into_iter().find(|l| l.label() == label)
}

/// Parses one request frame.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let doc = Json::parse(line)
        .map_err(|e| ProtoError::new("bad_frame", format!("malformed JSON: {e}"), None))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ProtoError::new("bad_frame", "frame must be a JSON object", None));
    }
    let id = doc.get("id").and_then(Json::as_str).map(str::to_string);
    if let Some(id_field) = doc.get("id") {
        if id_field.as_str().is_none() {
            return Err(ProtoError::new("bad_request", "`id` must be a string", None));
        }
        if id.as_deref().is_some_and(|s| s.len() > 128) {
            return Err(ProtoError::new("bad_request", "`id` longer than 128 bytes", None));
        }
    }
    let verb = match doc.get("verb").and_then(Json::as_str) {
        Some(v) => v,
        None => return Err(ProtoError::new("bad_request", "missing `verb`", id)),
    };
    match verb {
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "persist" => Ok(Request::Persist),
        "warm" => Ok(Request::Warm),
        "shutdown" => Ok(Request::Shutdown),
        "run" => parse_run(&doc, id).map(Request::Run),
        other => Err(ProtoError::new(
            "unknown_verb",
            format!(
                "unknown verb `{}` (expected run|stats|health|persist|warm|shutdown)",
                escape(other)
            ),
            id,
        )),
    }
}

fn parse_run(doc: &Json, id: Option<String>) -> Result<RunRequest, ProtoError> {
    let bad = |msg: String, id: &Option<String>| {
        Err(ProtoError::new("bad_request", msg, id.clone()))
    };
    let workload = match doc.get("workload").and_then(Json::as_str) {
        Some(w) if !w.is_empty() && w.len() <= 64 => w.to_string(),
        Some(_) => return bad("`workload` must be 1..=64 bytes".into(), &id),
        None => return bad("run needs a string `workload`".into(), &id),
    };
    let iters = match doc.get("iters") {
        None => DEFAULT_ITERS,
        Some(v) => match v.as_i64() {
            Some(n) if (1..=MAX_ITERS).contains(&n) => n,
            _ => return bad(format!("`iters` must be an integer in 1..={MAX_ITERS}"), &id),
        },
    };
    let level = match doc.get("level") {
        None => OptLevel::Full,
        Some(v) => match v.as_str().and_then(parse_level) {
            Some(l) => l,
            None => {
                let labels: Vec<&str> = OptLevel::all().iter().map(|l| l.label()).collect();
                return bad(format!("`level` must be one of {}", labels.join("|")), &id);
            }
        },
    };
    let max_cycles = match doc.get("max_cycles") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(n) if n >= 1 => Some(n),
            _ => return bad("`max_cycles` must be a positive integer".into(), &id),
        },
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(n) => Some(n),
            None => return bad("`deadline_ms` must be a non-negative integer".into(), &id),
        },
    };
    let audit = match doc.get("audit") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return bad("`audit` must be a boolean".into(), &id),
        },
    };
    Ok(RunRequest { id, workload, iters, level, max_cycles, deadline_ms, audit })
}

fn id_field(id: Option<&str>) -> String {
    match id {
        Some(id) => format!("\"id\":\"{}\",", escape(id)),
        None => String::new(),
    }
}

/// Renders an error response frame.
pub fn error_response(
    id: Option<&str>,
    kind: &str,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let retry = match retry_after_ms {
        Some(ms) => format!(",\"retry_after_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"ok\":false,{}\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"{retry}}}}}\n",
        id_field(id),
        escape(kind),
        escape(message),
    )
}

/// A 64-bit FNV-1a digest of the final architectural state. Two runs
/// with equal digests reached the same registers, condition codes, and
/// memory — a cheap wire-level stand-in for shipping the full snapshot.
pub fn arch_digest(res: &SimResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in &res.snapshot.regs {
        eat(*r as u64);
    }
    let cc = &res.snapshot.cc;
    eat(u64::from(cc.zf)
        | u64::from(cc.sf) << 1
        | u64::from(cc.of) << 2
        | u64::from(cc.cf) << 3);
    for (addr, val) in &res.snapshot.mem {
        eat(*addr);
        eat(*val as u64);
    }
    h
}

/// Renders the deterministic report object for one simulation result:
/// headline counters, total energy, an architectural-state digest, and
/// the full metrics registry. Single-line, no provenance — the same
/// bytes whether served fresh, from cache, or computed directly.
pub fn report_json(res: &SimResult) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\"workload\":\"{}\",\"level\":\"{}\",\"halted\":{},\"cycles\":{},\
         \"committed_uops\":{},\"program_uops\":{},\"energy_pj\":{:.6},\
         \"arch_digest\":\"{:016x}\",\"metrics\":{{",
        escape(&res.workload),
        res.level.label(),
        res.halted,
        res.stats.cycles,
        res.stats.committed_uops,
        res.stats.program_uops,
        res.energy_pj(),
        arch_digest(res),
    ));
    push_metric_fields(&mut out, &res.stats.metrics());
    out.push_str("}}");
    out
}

fn push_metric_fields(out: &mut String, metrics: &[Metric]) {
    for (i, m) in metrics.iter().enumerate() {
        let value = match &m.value {
            MetricValue::Counter(c) => c.to_string(),
            MetricValue::Gauge(g) if g.is_finite() => format!("{g:.6}"),
            MetricValue::Gauge(_) => "0".to_string(),
        };
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("\"{}\":{value}{sep}", escape(&m.name)));
    }
}

/// Renders a registry metric slice as one JSON object keyed by dotted
/// metric name (counters as integers, gauges as fixed-point, non-finite
/// gauges as `0` — the same convention as `scc_sim::metrics_json`).
pub fn metrics_object(metrics: &[Metric]) -> String {
    let mut out = String::with_capacity(64 * metrics.len().max(1));
    out.push('{');
    push_metric_fields(&mut out, metrics);
    out.push('}');
    out
}

/// Renders a successful `run` response frame.
pub fn run_response(id: Option<&str>, res: &SimResult, audit_jsonl: Option<&str>) -> String {
    let audit = match audit_jsonl {
        Some(jsonl) => {
            let lines: Vec<&str> = jsonl.lines().filter(|l| !l.is_empty()).collect();
            format!(",\"audit\":[{}]", lines.join(","))
        }
        None => String::new(),
    };
    format!("{{\"ok\":true,{}\"report\":{}{audit}}}\n", id_field(id), report_json(res))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips() {
        let r = parse_request(
            r#"{"verb":"run","id":"r-9","workload":"freqmine","iters":800,"level":"baseline","deadline_ms":250,"audit":true}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Run(RunRequest {
                id: Some("r-9".into()),
                workload: "freqmine".into(),
                iters: 800,
                level: OptLevel::Baseline,
                max_cycles: None,
                deadline_ms: Some(250),
                audit: true,
            })
        );
    }

    #[test]
    fn run_defaults_are_applied() {
        match parse_request(r#"{"verb":"run","workload":"gcc"}"#).unwrap() {
            Request::Run(r) => {
                assert_eq!(r.iters, DEFAULT_ITERS);
                assert_eq!(r.level, OptLevel::Full);
                assert!(!r.audit);
                assert_eq!(r.id, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verbs_parse() {
        assert_eq!(parse_request(r#"{"verb":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"verb":"health"}"#).unwrap(), Request::Health);
        assert_eq!(parse_request(r#"{"verb":"persist"}"#).unwrap(), Request::Persist);
        assert_eq!(parse_request(r#"{"verb":"warm"}"#).unwrap(), Request::Warm);
        assert_eq!(parse_request(r#"{"verb":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn malformed_frames_are_bad_frame() {
        for bad in ["", "{", "not json", "[1,2,3", "\"just a string"] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.kind, "bad_frame", "{bad:?} → {e:?}");
        }
        // A complete non-object document is also a framing error.
        assert_eq!(parse_request("[1,2,3]").unwrap_err().kind, "bad_frame");
        assert_eq!(parse_request("42").unwrap_err().kind, "bad_frame");
    }

    #[test]
    fn unknown_verbs_and_bad_fields_are_typed() {
        assert_eq!(parse_request(r#"{"verb":"dance"}"#).unwrap_err().kind, "unknown_verb");
        assert_eq!(parse_request(r#"{"workload":"gcc"}"#).unwrap_err().kind, "bad_request");
        for bad in [
            r#"{"verb":"run"}"#,
            r#"{"verb":"run","workload":""}"#,
            r#"{"verb":"run","workload":"gcc","iters":0}"#,
            r#"{"verb":"run","workload":"gcc","iters":9999999}"#,
            r#"{"verb":"run","workload":"gcc","iters":3.5}"#,
            r#"{"verb":"run","workload":"gcc","level":"ludicrous"}"#,
            r#"{"verb":"run","workload":"gcc","deadline_ms":-4}"#,
            r#"{"verb":"run","workload":"gcc","audit":"yes"}"#,
            r#"{"verb":"run","workload":"gcc","max_cycles":0}"#,
            r#"{"verb":"run","id":7,"workload":"gcc"}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.kind, "bad_request", "{bad}");
        }
    }

    #[test]
    fn error_id_is_preserved_when_parseable() {
        let e = parse_request(r#"{"verb":"dance","id":"r-3"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("r-3"));
    }

    #[test]
    fn level_labels_round_trip() {
        for l in OptLevel::all() {
            assert_eq!(parse_level(l.label()), Some(l));
        }
        assert_eq!(parse_level("warp-speed"), None);
    }

    #[test]
    fn error_response_renders_one_line_of_valid_json() {
        let s = error_response(Some("r\"1"), "queue_full", "queue at capacity", Some(120));
        assert!(s.ends_with('\n'));
        assert_eq!(s.lines().count(), 1);
        let j = Json::parse(s.trim_end()).unwrap();
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("id").and_then(Json::as_str), Some("r\"1"));
        let err = j.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("queue_full"));
        assert_eq!(err.get("retry_after_ms").and_then(Json::as_u64), Some(120));
        // No retry hint → field absent.
        let s = error_response(None, "bad_frame", "nope", None);
        assert!(!s.contains("retry_after_ms"));
        assert!(!s.contains("\"id\""));
    }
}
