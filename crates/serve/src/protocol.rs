//! The `scc-serve` wire protocol: newline-delimited JSON frames, in
//! two envelope versions.
//!
//! # Grammar
//!
//! Every frame is one JSON object on one line (`\n`-terminated, at most
//! [`MAX_FRAME_BYTES`] bytes). Requests carry a `verb` and, since v2,
//! a `proto` version field:
//!
//! ```text
//! {"proto":2,"verb":"run","id":"r-1","workload":"freqmine","iters":800,
//!  "level":"full-scc","deadline_ms":2000,"max_cycles":400000000,
//!  "audit":false}
//! {"proto":2,"verb":"run-trace","id":"t-1","trace":"<base64 SCCTRACE1>",
//!  "level":"full-scc","deadline_ms":2000,"max_cycles":400000000,"audit":false}
//! {"proto":2,"verb":"key","workload":"freqmine","iters":800,"level":"full-scc"}
//! {"proto":2,"verb":"key","trace":"<base64 SCCTRACE1>","level":"full-scc"}
//! {"proto":2,"verb":"stats"}
//! {"proto":2,"verb":"health"}
//! {"proto":2,"verb":"persist"}
//! {"proto":2,"verb":"warm"}
//! {"proto":2,"verb":"shutdown"}
//! ```
//!
//! Responses echo the request's protocol version. A v2 response:
//!
//! ```text
//! {"ok":true,"proto":2,"id":"r-1","report":{...}}
//! {"ok":false,"proto":2,"id":"r-1","error":{"code":"queue_full",
//!  "message":"...","retry_after_ms":120}}
//! ```
//!
//! # Version negotiation
//!
//! A frame with no `proto` field (or `"proto":1`) is a **legacy v1**
//! frame: it is accepted, counted on the `serve.proto.v1_frames`
//! deprecation counter, and answered with a v1 response — no `proto`
//! field, and errors carry the machine-readable discriminant under the
//! legacy `kind` name instead of v2's `code`. `"proto":2` selects the
//! v2 envelope. Any other value is rejected with `unsupported_proto`
//! (rendered as v1, the only version both sides are guaranteed to
//! share). Versions are negotiated **per frame**, not per connection,
//! so a router can interleave clients of both generations over one
//! upstream connection.
//!
//! # Error codes
//!
//! v2 replaces ad-hoc error strings with the closed [`ErrorCode`]
//! enum. The split that matters operationally is
//! [`ErrorCode::is_retryable`]: a retryable error (`queue_full`,
//! `shard_unavailable`, `over_capacity`, `draining`) means *this
//! request could succeed later or elsewhere* — the deopt-style
//! recoverable invalidation — while everything else is a hard fault of
//! the request itself.
//!
//! The `report` object is a *pure function of the simulation result* —
//! no timestamps, no cache provenance — so a response is byte-identical
//! whether the job was simulated fresh, resolved from the shared cache,
//! executed by a direct in-process [`Runner`](scc_sim::Runner), or
//! relayed through `scc-route`. The regression suites hold both the
//! service and the router to that.

use crate::json::{escape, Json};
use scc_pipeline::{Metric, MetricValue};
use scc_sim::{OptLevel, SimOptions, SimResult};

/// Hard cap on one request frame. Well above any legitimate request
/// (a few hundred bytes) and well below anything that could pressure
/// server memory.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Upper bound a client may set for `iters` (workload scale). Keeps a
/// single request from monopolizing a worker for minutes.
pub const MAX_ITERS: i64 = 100_000;

/// Default workload scale when a `run` request omits `iters`.
pub const DEFAULT_ITERS: i64 = 1000;

/// Wire protocol envelope version of one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Proto {
    /// Legacy envelope: no `proto` field, errors keyed by `kind`.
    /// Accepted for compatibility; counted on `serve.proto.v1_frames`.
    #[default]
    V1,
    /// Current envelope: `proto` echoed on responses, errors carry a
    /// closed machine-readable `code`.
    V2,
}

impl Proto {
    /// The numeric version carried on the wire.
    pub fn number(self) -> u64 {
        match self {
            Proto::V1 => 1,
            Proto::V2 => 2,
        }
    }
}

/// The closed set of machine-readable error codes. v1 transported
/// these as free-form `kind` strings; v2 makes the set explicit so a
/// router or client can branch on them without string contracts
/// scattered across the codebase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ErrorCode {
    /// The frame was not a JSON object (or not valid UTF-8).
    BadFrame,
    /// The frame parsed but a field was missing or malformed.
    BadRequest,
    /// The `verb` is not part of the protocol.
    UnknownVerb,
    /// The frame exceeded [`MAX_FRAME_BYTES`]; the connection closes.
    OversizedFrame,
    /// The `proto` field named a version this server does not speak.
    UnsupportedProto,
    /// The job queue is at capacity; retry after `retry_after_ms`.
    QueueFull,
    /// The connection limit is reached; retry against another instance.
    OverCapacity,
    /// The server is draining and accepts no new work.
    Draining,
    /// The request's deadline expired (while queued or mid-run).
    DeadlineExceeded,
    /// The workload did not halt within its cycle budget.
    BudgetExhausted,
    /// The workload name does not exist in the suite.
    UnknownWorkload,
    /// The `run-trace` payload was not a valid `SCCTRACE1` blob
    /// (bad base64, bad magic, version mismatch, truncation, CRC
    /// failure, or a malformed program body).
    BadTrace,
    /// No persistent store is attached (or it failed to open).
    StoreUnavailable,
    /// The persistent store failed an I/O operation.
    StoreIo,
    /// The shard owning this job's key is down; retry after
    /// `retry_after_ms` (the router's reconnect backoff).
    ShardUnavailable,
    /// The job's worker panicked or another invariant broke.
    InternalError,
}

impl ErrorCode {
    /// The wire string — identical in v1 (`kind`) and v2 (`code`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::OversizedFrame => "oversized_frame",
            ErrorCode::UnsupportedProto => "unsupported_proto",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::OverCapacity => "over_capacity",
            ErrorCode::Draining => "draining",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::BudgetExhausted => "budget_exhausted",
            ErrorCode::UnknownWorkload => "unknown_workload",
            ErrorCode::BadTrace => "bad_trace",
            ErrorCode::StoreUnavailable => "store_unavailable",
            ErrorCode::StoreIo => "store_io",
            ErrorCode::ShardUnavailable => "shard_unavailable",
            ErrorCode::InternalError => "internal_error",
        }
    }

    /// Parses a wire string (either envelope's spelling) back into the
    /// closed set. `None` means the peer spoke a code outside the
    /// protocol — treat as non-retryable.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        [
            ErrorCode::BadFrame,
            ErrorCode::BadRequest,
            ErrorCode::UnknownVerb,
            ErrorCode::OversizedFrame,
            ErrorCode::UnsupportedProto,
            ErrorCode::QueueFull,
            ErrorCode::OverCapacity,
            ErrorCode::Draining,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BudgetExhausted,
            ErrorCode::UnknownWorkload,
            ErrorCode::BadTrace,
            ErrorCode::StoreUnavailable,
            ErrorCode::StoreIo,
            ErrorCode::ShardUnavailable,
            ErrorCode::InternalError,
        ]
        .into_iter()
        .find(|c| c.as_str() == s)
    }

    /// The [`JobError`](scc_sim::runner::JobError) discriminants map
    /// into the closed set here, so the simulation layer never grows a
    /// parallel string contract.
    pub fn from_job_error(e: &scc_sim::runner::JobError) -> ErrorCode {
        ErrorCode::parse(e.kind()).unwrap_or(ErrorCode::InternalError)
    }

    /// True when the same request could succeed later (or on another
    /// instance): the recoverable-invalidation half of the error space.
    /// Everything else is a hard fault of the request itself.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::QueueFull
                | ErrorCode::OverCapacity
                | ErrorCode::Draining
                | ErrorCode::ShardUnavailable
        )
    }
}

/// A parsed `run` request.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// Client-chosen request ID, echoed on the response and propagated
    /// into the runner's trace track.
    pub id: Option<String>,
    /// Workload name (validated against the suite by the worker).
    pub workload: String,
    /// Workload scale (base loop iterations).
    pub iters: i64,
    /// Optimization level.
    pub level: OptLevel,
    /// Optional cycle-budget override (clamped by the server).
    pub max_cycles: Option<u64>,
    /// Optional deadline, milliseconds from request receipt.
    pub deadline_ms: Option<u64>,
    /// Request the SCC decision audit log of the run.
    pub audit: bool,
}

/// A parsed `run-trace` request: an externally compiled program shipped
/// as a versioned `SCCTRACE1` blob (base64 in the JSON frame), plus the
/// same execution knobs as `run`. The payload is fully validated at
/// parse time — magic, versions, CRC, and program reconstruction — so a
/// frame that parses can always be executed.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRequest {
    /// Client-chosen request ID, echoed on the response.
    pub id: Option<String>,
    /// The decoded (binary) `SCCTRACE1` bytes, already validated.
    pub trace_bytes: Vec<u8>,
    /// The trace's content digest (`scc_lang::trace::program_digest`),
    /// from which the job's `trace:<digest>` workload name derives.
    pub digest: u64,
    /// Optimization level.
    pub level: OptLevel,
    /// Optional cycle-budget override (clamped by the server).
    pub max_cycles: Option<u64>,
    /// Optional deadline, milliseconds from request receipt.
    pub deadline_ms: Option<u64>,
    /// Request the SCC decision audit log of the run.
    pub audit: bool,
}

impl TraceRequest {
    /// The equivalent run-shaped request: workload named by content
    /// digest, scale pinned to 1 (the program is fully specified — there
    /// is nothing to scale). Everything downstream of admission — the
    /// job key, the result cache, the store, ring placement — sees an
    /// ordinary [`RunRequest`] through this view, which is how trace
    /// jobs get uniform treatment with zero special cases.
    pub fn as_run_request(&self) -> RunRequest {
        RunRequest {
            id: self.id.clone(),
            workload: scc_sim::runner::trace_workload_name(self.digest),
            iters: 1,
            level: self.level,
            max_cycles: self.max_cycles,
            deadline_ms: self.deadline_ms,
            audit: self.audit,
        }
    }
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Simulate one job.
    Run(RunRequest),
    /// Simulate one ingested `SCCTRACE1` program.
    RunTrace(TraceRequest),
    /// Return the canonical content key of a run-shaped request — the
    /// exact string the cache and store identify the result by and the
    /// string `scc-route` hashes for shard placement. Takes the same
    /// fields as `run` (`deadline_ms`/`audit` are accepted and
    /// ignored; they are not part of the key).
    Key(RunRequest),
    /// Return the canonical content key of a `run-trace`-shaped request
    /// (the `key` verb with a `trace` field instead of a `workload`).
    KeyTrace(TraceRequest),
    /// Service introspection: queue, counters, cache.
    Stats,
    /// Liveness/readiness: `ok` or `draining`.
    Health,
    /// Fsync the persistent store's active segment (durability barrier).
    Persist,
    /// Promote every live store record into the in-memory result cache.
    Warm,
    /// Begin graceful drain: stop accepting, finish in-flight, exit.
    Shutdown,
}

/// One parsed frame: the envelope version plus the request.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Envelope version the client spoke; responses must echo it.
    pub proto: Proto,
    /// The request itself.
    pub request: Request,
}

/// A protocol-level rejection (the frame never became a job).
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoError {
    /// Envelope version to answer in.
    pub proto: Proto,
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Request ID, when the frame parsed far enough to reveal one.
    pub id: Option<String>,
}

impl ProtoError {
    fn new(
        proto: Proto,
        code: ErrorCode,
        message: impl Into<String>,
        id: Option<String>,
    ) -> ProtoError {
        ProtoError { proto, code, message: message.into(), id }
    }
}

/// Parses an optimization level from its table label (the same labels
/// `OptLevel::label` prints).
pub fn parse_level(label: &str) -> Option<OptLevel> {
    OptLevel::all().into_iter().find(|l| l.label() == label)
}

/// Parses one request frame, including its envelope version.
pub fn parse_request(line: &str) -> Result<Frame, ProtoError> {
    use ErrorCode as E;
    let doc = Json::parse(line)
        .map_err(|e| ProtoError::new(Proto::V1, E::BadFrame, format!("malformed JSON: {e}"), None))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ProtoError::new(Proto::V1, E::BadFrame, "frame must be a JSON object", None));
    }
    // The envelope version gates everything else: an unsupported
    // version is answered in v1, the only envelope both sides share.
    let proto = match doc.get("proto") {
        None => Proto::V1,
        Some(v) => match v.as_u64() {
            Some(1) => Proto::V1,
            Some(2) => Proto::V2,
            _ => {
                let id = doc.get("id").and_then(Json::as_str).map(str::to_string);
                return Err(ProtoError::new(
                    Proto::V1,
                    E::UnsupportedProto,
                    "`proto` must be 1 or 2",
                    id,
                ));
            }
        },
    };
    let id = doc.get("id").and_then(Json::as_str).map(str::to_string);
    if let Some(id_field) = doc.get("id") {
        if id_field.as_str().is_none() {
            return Err(ProtoError::new(proto, E::BadRequest, "`id` must be a string", None));
        }
        if id.as_deref().is_some_and(|s| s.len() > 128) {
            return Err(ProtoError::new(proto, E::BadRequest, "`id` longer than 128 bytes", None));
        }
    }
    let verb = match doc.get("verb").and_then(Json::as_str) {
        Some(v) => v,
        None => return Err(ProtoError::new(proto, E::BadRequest, "missing `verb`", id)),
    };
    let request = match verb {
        "stats" => Request::Stats,
        "health" => Request::Health,
        "persist" => Request::Persist,
        "warm" => Request::Warm,
        "shutdown" => Request::Shutdown,
        "run" => Request::Run(parse_run(&doc, proto, id)?),
        "run-trace" => Request::RunTrace(parse_trace(&doc, proto, id)?),
        // `key` takes either shape: a `trace` field selects the
        // trace-job key, otherwise the registry-workload key.
        "key" if doc.get("trace").is_some() => Request::KeyTrace(parse_trace(&doc, proto, id)?),
        "key" => Request::Key(parse_run(&doc, proto, id)?),
        other => {
            return Err(ProtoError::new(
                proto,
                E::UnknownVerb,
                format!(
                    "unknown verb `{}` (expected run|run-trace|key|stats|health|persist|warm|shutdown)",
                    escape(other)
                ),
                id,
            ))
        }
    };
    Ok(Frame { proto, request })
}

fn parse_run(doc: &Json, proto: Proto, id: Option<String>) -> Result<RunRequest, ProtoError> {
    let bad = |msg: String, id: &Option<String>| {
        Err(ProtoError::new(proto, ErrorCode::BadRequest, msg, id.clone()))
    };
    let workload = match doc.get("workload").and_then(Json::as_str) {
        Some(w) if !w.is_empty() && w.len() <= 64 => w.to_string(),
        Some(_) => return bad("`workload` must be 1..=64 bytes".into(), &id),
        None => return bad("run needs a string `workload`".into(), &id),
    };
    let iters = match doc.get("iters") {
        None => DEFAULT_ITERS,
        Some(v) => match v.as_i64() {
            Some(n) if (1..=MAX_ITERS).contains(&n) => n,
            _ => return bad(format!("`iters` must be an integer in 1..={MAX_ITERS}"), &id),
        },
    };
    let (level, max_cycles, deadline_ms, audit) = parse_exec_opts(doc, proto, &id)?;
    Ok(RunRequest { id, workload, iters, level, max_cycles, deadline_ms, audit })
}

/// The execution knobs shared by `run` and `run-trace`.
fn parse_exec_opts(
    doc: &Json,
    proto: Proto,
    id: &Option<String>,
) -> Result<(OptLevel, Option<u64>, Option<u64>, bool), ProtoError> {
    let bad = |msg: String| {
        Err(ProtoError::new(proto, ErrorCode::BadRequest, msg, id.clone()))
    };
    let level = match doc.get("level") {
        None => OptLevel::Full,
        Some(v) => match v.as_str().and_then(parse_level) {
            Some(l) => l,
            None => {
                let labels: Vec<&str> = OptLevel::all().iter().map(|l| l.label()).collect();
                return bad(format!("`level` must be one of {}", labels.join("|")));
            }
        },
    };
    let max_cycles = match doc.get("max_cycles") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(n) if n >= 1 => Some(n),
            _ => return bad("`max_cycles` must be a positive integer".into()),
        },
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(n) => Some(n),
            None => return bad("`deadline_ms` must be a non-negative integer".into()),
        },
    };
    let audit = match doc.get("audit") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return bad("`audit` must be a boolean".into()),
        },
    };
    Ok((level, max_cycles, deadline_ms, audit))
}

/// Parses and fully validates a `run-trace`-shaped frame. The base64
/// payload is decoded and the `SCCTRACE1` body verified end to end
/// (magic, format/schema versions, CRC, program reconstruction) right
/// here, so a malformed or version-stale trace is rejected at admission
/// with [`ErrorCode::BadTrace`] and never reaches a worker.
fn parse_trace(doc: &Json, proto: Proto, id: Option<String>) -> Result<TraceRequest, ProtoError> {
    let fail = |code: ErrorCode, msg: String, id: &Option<String>| {
        Err(ProtoError::new(proto, code, msg, id.clone()))
    };
    let b64 = match doc.get("trace").and_then(Json::as_str) {
        Some(t) if !t.is_empty() => t,
        Some(_) => return fail(ErrorCode::BadRequest, "`trace` must be non-empty".into(), &id),
        None => {
            return fail(
                ErrorCode::BadRequest,
                "run-trace needs a base64 `trace` string".into(),
                &id,
            )
        }
    };
    let trace_bytes = match scc_lang::trace::from_base64(b64) {
        Some(b) => b,
        None => return fail(ErrorCode::BadTrace, "`trace` is not valid base64".into(), &id),
    };
    let digest = match scc_lang::trace::decode(&trace_bytes) {
        Ok(t) => t.digest,
        Err(e) => return fail(ErrorCode::BadTrace, format!("invalid SCCTRACE1 payload: {e}"), &id),
    };
    let (level, max_cycles, deadline_ms, audit) = parse_exec_opts(doc, proto, &id)?;
    Ok(TraceRequest { id, trace_bytes, digest, level, max_cycles, deadline_ms, audit })
}

/// The canonical content key of a run-shaped request, as the serving
/// process would compute it: paper-default [`SimOptions`] at the
/// requested level with the effective cycle budget (the client's
/// `max_cycles` clamped to `max_cycles_cap`). Delegates to
/// [`scc_sim::runner::job_key`] — the single source of truth shared by
/// the cache, the store, and the router; there is deliberately no
/// second serialization of a job identity anywhere in the service.
pub fn run_key(req: &RunRequest, max_cycles_cap: u64) -> String {
    let mut opts = SimOptions::new(req.level);
    opts.max_cycles = req.max_cycles.unwrap_or(max_cycles_cap).min(max_cycles_cap);
    scc_sim::runner::job_key(
        &req.workload,
        req.iters,
        req.level,
        opts.max_cycles,
        &opts.to_pipeline_config(),
    )
}

/// The canonical content key of a `run-trace`-shaped request: exactly
/// [`run_key`] over the trace's synthesized run view
/// ([`TraceRequest::as_run_request`]). Because the workload name is the
/// trace's content digest, byte-identical traces share a key — and so a
/// cache entry, a store record, and a shard — regardless of which
/// client submitted them.
pub fn trace_key(req: &TraceRequest, max_cycles_cap: u64) -> String {
    run_key(&req.as_run_request(), max_cycles_cap)
}

fn id_field(id: Option<&str>) -> String {
    match id {
        Some(id) => format!("\"id\":\"{}\",", escape(id)),
        None => String::new(),
    }
}

/// The `"proto":2,` envelope marker (empty for v1, which never carried
/// one — legacy responses must stay byte-identical to the v1 servers).
fn proto_field(proto: Proto) -> &'static str {
    match proto {
        Proto::V1 => "",
        Proto::V2 => "\"proto\":2,",
    }
}

/// Renders a successful non-`run` response from pre-rendered body
/// fields (e.g. `"status":"ok"`), in the requested envelope.
pub fn ok_response(proto: Proto, body_fields: &str) -> String {
    format!("{{\"ok\":true,{}{body_fields}}}\n", proto_field(proto))
}

/// Renders an error response frame in the requested envelope: v1 keys
/// the discriminant `kind`, v2 keys it `code`.
pub fn error_response(
    proto: Proto,
    id: Option<&str>,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let retry = match retry_after_ms {
        Some(ms) => format!(",\"retry_after_ms\":{ms}"),
        None => String::new(),
    };
    let discriminant = match proto {
        Proto::V1 => "kind",
        Proto::V2 => "code",
    };
    format!(
        "{{\"ok\":false,{}{}\"error\":{{\"{discriminant}\":\"{}\",\"message\":\"{}\"{retry}}}}}\n",
        proto_field(proto),
        id_field(id),
        code.as_str(),
        escape(message),
    )
}

/// A 64-bit FNV-1a digest of the final architectural state. Two runs
/// with equal digests reached the same registers, condition codes, and
/// memory — a cheap wire-level stand-in for shipping the full snapshot.
pub fn arch_digest(res: &SimResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in &res.snapshot.regs {
        eat(*r as u64);
    }
    let cc = &res.snapshot.cc;
    eat(u64::from(cc.zf)
        | u64::from(cc.sf) << 1
        | u64::from(cc.of) << 2
        | u64::from(cc.cf) << 3);
    for (addr, val) in &res.snapshot.mem {
        eat(*addr);
        eat(*val as u64);
    }
    h
}

/// Renders the deterministic report object for one simulation result:
/// headline counters, total energy, an architectural-state digest, and
/// the full metrics registry. Single-line, no provenance — the same
/// bytes whether served fresh, from cache, computed directly, or
/// relayed through the router.
pub fn report_json(res: &SimResult) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\"workload\":\"{}\",\"level\":\"{}\",\"halted\":{},\"cycles\":{},\
         \"committed_uops\":{},\"program_uops\":{},\"energy_pj\":{:.6},\
         \"arch_digest\":\"{:016x}\",\"metrics\":{{",
        escape(&res.workload),
        res.level.label(),
        res.halted,
        res.stats.cycles,
        res.stats.committed_uops,
        res.stats.program_uops,
        res.energy_pj(),
        arch_digest(res),
    ));
    push_metric_fields(&mut out, &res.stats.metrics());
    out.push_str("}}");
    out
}

fn push_metric_fields(out: &mut String, metrics: &[Metric]) {
    for (i, m) in metrics.iter().enumerate() {
        let value = match &m.value {
            MetricValue::Counter(c) => c.to_string(),
            MetricValue::Gauge(g) if g.is_finite() => format!("{g:.6}"),
            MetricValue::Gauge(_) => "0".to_string(),
        };
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("\"{}\":{value}{sep}", escape(&m.name)));
    }
}

/// Renders a registry metric slice as one JSON object keyed by dotted
/// metric name (counters as integers, gauges as fixed-point, non-finite
/// gauges as `0` — the same convention as `scc_sim::metrics_json`).
pub fn metrics_object(metrics: &[Metric]) -> String {
    let mut out = String::with_capacity(64 * metrics.len().max(1));
    out.push('{');
    push_metric_fields(&mut out, metrics);
    out.push('}');
    out
}

/// Renders a successful `run` response frame in the requested envelope.
pub fn run_response(
    proto: Proto,
    id: Option<&str>,
    res: &SimResult,
    audit_jsonl: Option<&str>,
) -> String {
    let audit = match audit_jsonl {
        Some(jsonl) => {
            let lines: Vec<&str> = jsonl.lines().filter(|l| !l.is_empty()).collect();
            format!(",\"audit\":[{}]", lines.join(","))
        }
        None => String::new(),
    };
    format!(
        "{{\"ok\":true,{}{}\"report\":{}{audit}}}\n",
        proto_field(proto),
        id_field(id),
        report_json(res)
    )
}

/// Renders a successful `key` response frame.
pub fn key_response(proto: Proto, id: Option<&str>, key: &str) -> String {
    format!(
        "{{\"ok\":true,{}{}\"key\":\"{}\"}}\n",
        proto_field(proto),
        id_field(id),
        escape(key)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Frame, ProtoError> {
        parse_request(line)
    }

    #[test]
    fn run_request_round_trips() {
        let f = parse(
            r#"{"verb":"run","id":"r-9","workload":"freqmine","iters":800,"level":"baseline","deadline_ms":250,"audit":true}"#,
        )
        .unwrap();
        assert_eq!(f.proto, Proto::V1);
        assert_eq!(
            f.request,
            Request::Run(RunRequest {
                id: Some("r-9".into()),
                workload: "freqmine".into(),
                iters: 800,
                level: OptLevel::Baseline,
                max_cycles: None,
                deadline_ms: Some(250),
                audit: true,
            })
        );
    }

    #[test]
    fn proto_negotiation_selects_the_envelope() {
        assert_eq!(parse(r#"{"verb":"stats"}"#).unwrap().proto, Proto::V1);
        assert_eq!(parse(r#"{"proto":1,"verb":"stats"}"#).unwrap().proto, Proto::V1);
        assert_eq!(parse(r#"{"proto":2,"verb":"stats"}"#).unwrap().proto, Proto::V2);
        // An unknown version is rejected — in v1, the shared envelope.
        let e = parse(r#"{"proto":3,"verb":"stats","id":"x"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnsupportedProto);
        assert_eq!(e.proto, Proto::V1);
        assert_eq!(e.id.as_deref(), Some("x"));
        let e = parse(r#"{"proto":"two","verb":"stats"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnsupportedProto);
    }

    #[test]
    fn v2_errors_carry_code_and_the_requests_proto() {
        let e = parse(r#"{"proto":2,"verb":"dance"}"#).unwrap_err();
        assert_eq!(e.proto, Proto::V2);
        assert_eq!(e.code, ErrorCode::UnknownVerb);
        let rendered = error_response(e.proto, None, e.code, &e.message, None);
        let j = Json::parse(rendered.trim_end()).unwrap();
        assert_eq!(j.get("proto").and_then(Json::as_u64), Some(2));
        let err = j.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Json::as_str), Some("unknown_verb"));
        assert!(err.get("kind").is_none(), "v2 must not carry the legacy kind");
    }

    #[test]
    fn run_defaults_are_applied() {
        match parse(r#"{"verb":"run","workload":"gcc"}"#).unwrap().request {
            Request::Run(r) => {
                assert_eq!(r.iters, DEFAULT_ITERS);
                assert_eq!(r.level, OptLevel::Full);
                assert!(!r.audit);
                assert_eq!(r.id, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verbs_parse() {
        let req = |l: &str| parse(l).unwrap().request;
        assert_eq!(req(r#"{"verb":"stats"}"#), Request::Stats);
        assert_eq!(req(r#"{"verb":"health"}"#), Request::Health);
        assert_eq!(req(r#"{"verb":"persist"}"#), Request::Persist);
        assert_eq!(req(r#"{"verb":"warm"}"#), Request::Warm);
        assert_eq!(req(r#"{"verb":"shutdown"}"#), Request::Shutdown);
        match req(r#"{"verb":"key","workload":"gcc","iters":42}"#) {
            Request::Key(k) => assert_eq!((k.workload.as_str(), k.iters), ("gcc", 42)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_bad_frame() {
        for bad in ["", "{", "not json", "[1,2,3", "\"just a string"] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadFrame, "{bad:?} → {e:?}");
        }
        // A complete non-object document is also a framing error.
        assert_eq!(parse("[1,2,3]").unwrap_err().code, ErrorCode::BadFrame);
        assert_eq!(parse("42").unwrap_err().code, ErrorCode::BadFrame);
    }

    #[test]
    fn unknown_verbs_and_bad_fields_are_typed() {
        assert_eq!(parse(r#"{"verb":"dance"}"#).unwrap_err().code, ErrorCode::UnknownVerb);
        assert_eq!(parse(r#"{"workload":"gcc"}"#).unwrap_err().code, ErrorCode::BadRequest);
        for bad in [
            r#"{"verb":"run"}"#,
            r#"{"verb":"run","workload":""}"#,
            r#"{"verb":"run","workload":"gcc","iters":0}"#,
            r#"{"verb":"run","workload":"gcc","iters":9999999}"#,
            r#"{"verb":"run","workload":"gcc","iters":3.5}"#,
            r#"{"verb":"run","workload":"gcc","level":"ludicrous"}"#,
            r#"{"verb":"run","workload":"gcc","deadline_ms":-4}"#,
            r#"{"verb":"run","workload":"gcc","audit":"yes"}"#,
            r#"{"verb":"run","workload":"gcc","max_cycles":0}"#,
            r#"{"verb":"run","id":7,"workload":"gcc"}"#,
            r#"{"verb":"key"}"#,
        ] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn error_id_is_preserved_when_parseable() {
        let e = parse(r#"{"verb":"dance","id":"r-3"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("r-3"));
    }

    #[test]
    fn level_labels_round_trip() {
        for l in OptLevel::all() {
            assert_eq!(parse_level(l.label()), Some(l));
        }
        assert_eq!(parse_level("warp-speed"), None);
    }

    #[test]
    fn error_codes_round_trip_and_split_on_retryability() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::BadRequest,
            ErrorCode::UnknownVerb,
            ErrorCode::OversizedFrame,
            ErrorCode::UnsupportedProto,
            ErrorCode::QueueFull,
            ErrorCode::OverCapacity,
            ErrorCode::Draining,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BudgetExhausted,
            ErrorCode::UnknownWorkload,
            ErrorCode::BadTrace,
            ErrorCode::StoreUnavailable,
            ErrorCode::StoreIo,
            ErrorCode::ShardUnavailable,
            ErrorCode::InternalError,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("not_a_code"), None);
        assert!(!ErrorCode::BadTrace.is_retryable());
        assert!(ErrorCode::QueueFull.is_retryable());
        assert!(ErrorCode::ShardUnavailable.is_retryable());
        assert!(ErrorCode::OverCapacity.is_retryable());
        assert!(ErrorCode::Draining.is_retryable());
        assert!(!ErrorCode::DeadlineExceeded.is_retryable());
        assert!(!ErrorCode::UnknownWorkload.is_retryable());
        assert!(!ErrorCode::BadFrame.is_retryable());
    }

    #[test]
    fn v1_error_responses_are_byte_stable() {
        // The legacy envelope is a compatibility promise: no proto
        // field, discriminant under `kind`.
        let s = error_response(Proto::V1, Some("r\"1"), ErrorCode::QueueFull, "queue at capacity", Some(120));
        assert!(s.ends_with('\n'));
        assert_eq!(s.lines().count(), 1);
        let j = Json::parse(s.trim_end()).unwrap();
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));
        assert!(j.get("proto").is_none());
        assert_eq!(j.get("id").and_then(Json::as_str), Some("r\"1"));
        let err = j.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("queue_full"));
        assert_eq!(err.get("retry_after_ms").and_then(Json::as_u64), Some(120));
        // No retry hint → field absent.
        let s = error_response(Proto::V1, None, ErrorCode::BadFrame, "nope", None);
        assert!(!s.contains("retry_after_ms"));
        assert!(!s.contains("\"id\""));
        assert!(!s.contains("proto"));
    }

    #[test]
    fn run_key_matches_the_runners_canonical_key() {
        use scc_sim::runner::{resolve_workload, Job};
        use scc_workloads::Scale;
        let req = RunRequest {
            id: None,
            workload: "freqmine".into(),
            iters: 800,
            level: OptLevel::Full,
            max_cycles: None,
            deadline_ms: None,
            audit: false,
        };
        let cap = scc_sim::build::DEFAULT_MAX_CYCLES;
        let key = run_key(&req, cap);
        // The exact key the worker's execution path would cache under.
        let w = resolve_workload("freqmine", Scale::custom(800)).unwrap();
        let mut opts = SimOptions::new(OptLevel::Full);
        opts.max_cycles = cap;
        assert_eq!(key, Job::new(&w, &opts).key());
        // A client max_cycles beyond the cap clamps identically.
        let mut over = req.clone();
        over.max_cycles = Some(u64::MAX);
        assert_eq!(run_key(&over, cap), key);
    }

    fn example_trace_b64() -> String {
        let g = scc_lang::corpus::find("cksum").expect("corpus entry");
        let c = g.compile(scc_lang::Opt::O2, 1).expect("compiles");
        scc_lang::trace::to_base64(&scc_lang::trace::encode(&c.program, "test"))
    }

    #[test]
    fn run_trace_parses_and_synthesizes_a_digest_named_job() {
        let b64 = example_trace_b64();
        let f = parse(&format!(
            r#"{{"proto":2,"verb":"run-trace","id":"t-1","trace":"{b64}","level":"baseline"}}"#
        ))
        .unwrap();
        assert_eq!(f.proto, Proto::V2);
        let tr = match f.request {
            Request::RunTrace(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr.level, OptLevel::Baseline);
        let run = tr.as_run_request();
        assert_eq!(run.workload, scc_sim::runner::trace_workload_name(tr.digest));
        assert_eq!(run.iters, 1);
        assert!(scc_sim::runner::is_trace_workload(&run.workload));
        // The key verb computes the same key `run-trace` executes under.
        let kf = parse(&format!(r#"{{"verb":"key","trace":"{b64}","level":"baseline"}}"#)).unwrap();
        match kf.request {
            Request::KeyTrace(kt) => assert_eq!(trace_key(&kt, 1000), trace_key(&tr, 1000)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_and_version_stale_traces_are_bad_trace() {
        let g = scc_lang::corpus::find("cksum").unwrap();
        let c = g.compile(scc_lang::Opt::O2, 1).unwrap();
        let good = scc_lang::trace::encode(&c.program, "test");

        // Truncation, body corruption (CRC), and a future format
        // version must all reject with the typed code — never a panic.
        let mut cases: Vec<Vec<u8>> = vec![good[..good.len() / 2].to_vec()];
        let mut corrupt = good.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        cases.push(corrupt);
        let mut stale = good.clone();
        stale[8] = 0xEE; // format_version low byte
        cases.push(stale);
        for bytes in cases {
            let b64 = scc_lang::trace::to_base64(&bytes);
            let e = parse(&format!(r#"{{"verb":"run-trace","id":"x","trace":"{b64}"}}"#))
                .unwrap_err();
            assert_eq!(e.code, ErrorCode::BadTrace);
            assert_eq!(e.id.as_deref(), Some("x"));
        }
        // Not base64 at all.
        let e = parse(r#"{"verb":"run-trace","trace":"@@@@"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadTrace);
        // Missing/empty payloads are request-shape errors, not trace errors.
        let e = parse(r#"{"verb":"run-trace"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = parse(r#"{"verb":"run-trace","trace":""}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn key_response_renders_valid_json() {
        let s = key_response(Proto::V2, Some("k-1"), "freqmine|iters=800|full-scc|max=1|x");
        let j = Json::parse(s.trim_end()).unwrap();
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("proto").and_then(Json::as_u64), Some(2));
        assert_eq!(
            j.get("key").and_then(Json::as_str),
            Some("freqmine|iters=800|full-scc|max=1|x")
        );
    }
}
