//! A minimal, dependency-free JSON reader for the wire protocol.
//!
//! The emitting side of the repo hand-rolls its JSON (see
//! `scc_sim::trace_export`); this is the matching consuming side. It
//! parses one complete document into a [`Json`] tree with a bounded
//! nesting depth, so a malicious frame can neither overflow the stack
//! nor smuggle trailing garbage.

/// Maximum nesting depth a frame may use. Requests are flat objects;
/// anything deeper is an attack or a bug.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers above 2^53 lose precision — the
    /// protocol's numeric fields are all well below that).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (no trailing data allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i, 0)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number with an exact non-negative integral value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload as a signed integer, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9e15 => Some(*n as i64),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (the same rule
/// set the emitters in `scc_sim` use).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i, depth),
        Some(b'[') => array(b, i, depth),
        Some(b'"') => Ok(Json::Str(string(b, i)?)),
        Some(b't') => literal(b, i, "true", Json::Bool(true)),
        Some(b'f') => literal(b, i, "false", Json::Bool(false)),
        Some(b'n') => literal(b, i, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, i)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], i: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn object(b: &[u8], i: &mut usize, depth: usize) -> Result<Json, String> {
    *i += 1; // consume `{`
    let mut fields = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        let key = string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected `:` at byte {i}"));
        }
        *i += 1;
        let v = value(b, i, depth + 1)?;
        fields.push((key, v));
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize, depth: usize) -> Result<Json, String> {
    *i += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, i, depth + 1)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {i}")),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
    *i += 1; // consume opening quote
    let mut out = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *i += 1;
                        let cp = hex4(b, i)?;
                        // Surrogate pair: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xd800..0xdc00).contains(&cp) {
                            if b.get(*i) == Some(&b'\\') && b.get(*i + 1) == Some(&b'u') {
                                *i += 2;
                                let lo = hex4(b, i)?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                return Err("lone high surrogate".to_string());
                            }
                        } else {
                            cp
                        };
                        match char::from_u32(c) {
                            Some(c) => out.push(c),
                            None => return Err(format!("invalid code point {c:#x}")),
                        }
                        continue; // hex4 advanced past the digits
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            Some(&c) if c < 0x20 => return Err(format!("raw control byte at {i}")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a valid &str).
                let s = std::str::from_utf8(&b[*i..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *i += c.len_utf8();
            }
        }
    }
}

fn hex4(b: &[u8], i: &mut usize) -> Result<u32, String> {
    if *i + 4 > b.len() {
        return Err("truncated \\u escape".to_string());
    }
    let s = std::str::from_utf8(&b[*i..*i + 4]).map_err(|e| e.to_string())?;
    let v = u32::from_str_radix(s, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
    *i += 4;
    Ok(v)
}

fn number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len() && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    let s = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
    s.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number `{s}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_shaped_object() {
        let j = Json::parse(
            r#"{"verb":"run","workload":"freqmine","iters":800,"audit":false,"deadline_ms":250.0}"#,
        )
        .unwrap();
        assert_eq!(j.get("verb").and_then(Json::as_str), Some("run"));
        assert_eq!(j.get("iters").and_then(Json::as_i64), Some(800));
        assert_eq!(j.get("audit").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parses_nesting_strings_and_numbers() {
        let j = Json::parse(r#"{"a":[1,-2.5,"x\n\"y\"",null,true],"b":{"c":[]}}"#).unwrap();
        match j.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].as_f64(), Some(-2.5));
                assert_eq!(items[2].as_str(), Some("x\n\"y\""));
                assert_eq!(items[3], Json::Null);
                assert_eq!(items[4].as_bool(), Some(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        let j = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(j.as_str(), Some("é😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
        assert!(Json::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{'a':1}"#,
            "[1,2",
            "nul",
            r#"{"a":1} trailing"#,
            "\u{1}",
            r#""unterminated"#,
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_i64(), Some(-1));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }
}
