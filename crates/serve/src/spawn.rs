//! Multi-process topology management for `scc-load`: launch N
//! `scc-serve` shard processes plus one `scc-route` router over Unix
//! sockets, wait for the ring to report every shard up, drive load
//! through the router, and wind the whole tree down with one `shutdown`
//! frame.
//!
//! Everything runs over Unix sockets in a caller-chosen spawn
//! directory, so concurrent sweeps (or CI jobs) never fight over TCP
//! ports. The router propagates `shutdown` to every reachable shard, so
//! teardown is one verb; children that survive teardown anyway are
//! killed on [`Topology`] drop rather than leaked.

// The topology is Unix sockets end to end (that is the point: no port
// allocation), so the whole module is Unix-only like the poll loop.
#![cfg(unix)]

use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::json::Json;
use crate::loadgen::{
    self, stats_object, tier_counters, LoadConfig, LoadReport, ShardReport, TopologyReport,
};
use crate::net::Addr;

/// How long to wait for a spawned process to answer on its socket, and
/// for children to exit after shutdown. Generous because CI machines
/// stall; readiness normally lands in tens of milliseconds.
const SPAWN_DEADLINE: Duration = Duration::from_secs(30);

/// Parameters for launching one router-plus-shards topology.
#[derive(Clone, Debug)]
pub struct SpawnConfig {
    /// Backend shard count.
    pub shards: usize,
    /// Directory for the Unix sockets (created if absent). Each
    /// topology should get its own — socket paths are fixed names
    /// inside it.
    pub dir: PathBuf,
    /// Path to the `scc-serve` binary.
    pub serve_bin: PathBuf,
    /// Path to the `scc-route` binary.
    pub route_bin: PathBuf,
    /// `--workers` passed to each shard.
    pub shard_workers: usize,
    /// `--upstream-conns` passed to the router.
    pub upstream_conns: usize,
}

/// A running router-plus-shards process tree.
pub struct Topology {
    /// The router's listen address — point clients (and `scc-load`)
    /// here.
    pub router_addr: Addr,
    /// Each shard's direct address, in ring order. Useful for reading
    /// shard-tagged counters; routing still goes through the router.
    pub shard_addrs: Vec<Addr>,
    /// Children in spawn order: shards first, router last.
    children: Vec<(String, Child)>,
}

/// Locates a sibling binary of the current executable (`scc-load` and
/// `scc-serve`/`scc-route` land in the same target directory). Test
/// binaries live one level down in `deps/`, so the parent directory is
/// also probed.
pub fn sibling_binary(name: &str) -> io::Result<PathBuf> {
    let me = std::env::current_exe()?;
    let mut dir = me.parent();
    while let Some(d) = dir {
        let candidate = d.join(name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!("{name} not found next to {}", me.display()),
    ))
}

/// Polls `probe` until it returns true or the spawn deadline passes.
fn wait_until(what: &str, mut probe: impl FnMut() -> bool) -> io::Result<()> {
    let deadline = Instant::now() + SPAWN_DEADLINE;
    loop {
        if probe() {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, format!("timed out: {what}")));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn healthy(addr: &Addr) -> bool {
    Client::connect_with_timeout(addr, Duration::from_secs(5))
        .and_then(|mut c| c.request_json("{\"verb\":\"health\"}"))
        .ok()
        .and_then(|h| h.get("ok").and_then(Json::as_bool))
        == Some(true)
}

/// Reads one counter out of a `stats` response, defaulting to 0.
fn stat_u64(stats: &Json, name: &str) -> u64 {
    stats.get(name).and_then(Json::as_u64).unwrap_or(0)
}

impl Topology {
    /// Spawns `cfg.shards` shard processes and one router, waiting
    /// until every shard answers `health` and the router reports
    /// `route.shards.up` equal to the shard count. On failure every
    /// already-spawned child is killed before returning.
    pub fn launch(cfg: &SpawnConfig) -> io::Result<Topology> {
        if cfg.shards == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "need at least one shard"));
        }
        std::fs::create_dir_all(&cfg.dir)?;
        let sock = |name: &str| cfg.dir.join(name).display().to_string();

        let mut topo = Topology {
            router_addr: Addr::Unix(sock("router.sock").into()),
            shard_addrs: Vec::with_capacity(cfg.shards),
            children: Vec::with_capacity(cfg.shards + 1),
        };
        for i in 0..cfg.shards {
            let path = sock(&format!("shard-{i}.sock"));
            // A stale socket file from a previous run would make bind fail.
            let _ = std::fs::remove_file(&path);
            let child = Command::new(&cfg.serve_bin)
                .arg("--listen")
                .arg(format!("unix:{path}"))
                .arg("--workers")
                .arg(cfg.shard_workers.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
                .map_err(|e| {
                    io::Error::new(e.kind(), format!("spawning {}: {e}", cfg.serve_bin.display()))
                })?;
            topo.children.push((format!("shard {i}"), child));
            topo.shard_addrs.push(Addr::Unix(PathBuf::from(path)));
        }
        for (i, addr) in topo.shard_addrs.clone().iter().enumerate() {
            wait_until(&format!("shard {i} health"), || healthy(addr))?;
        }

        let router_path = sock("router.sock");
        let _ = std::fs::remove_file(&router_path);
        let mut cmd = Command::new(&cfg.route_bin);
        cmd.arg("--listen")
            .arg(format!("unix:{router_path}"))
            .arg("--upstream-conns")
            .arg(cfg.upstream_conns.to_string());
        for addr in &topo.shard_addrs {
            cmd.arg("--shard").arg(addr.to_string());
        }
        let child = cmd.stdin(Stdio::null()).stdout(Stdio::null()).spawn().map_err(|e| {
            io::Error::new(e.kind(), format!("spawning {}: {e}", cfg.route_bin.display()))
        })?;
        topo.children.push(("router".to_string(), child));

        let want = cfg.shards as u64;
        let router = topo.router_addr.clone();
        wait_until("router ring up", || {
            stats_object(&router).map(|s| stat_u64(&s, "route.shards.up") == want).unwrap_or(false)
        })?;
        Ok(topo)
    }

    /// Sends `shutdown` to the router (which drains and propagates it
    /// to every shard) and reaps every child, failing if any exits
    /// non-zero.
    pub fn shutdown(mut self) -> io::Result<()> {
        Client::connect_with_timeout(&self.router_addr, SPAWN_DEADLINE)?
            .request("{\"verb\":\"shutdown\"}")?;
        let deadline = Instant::now() + SPAWN_DEADLINE;
        // Reap in reverse spawn order: the router exits first, and its
        // closing upstream connections are what release the shards'
        // own drains. Children stay owned by `self` so any early
        // return (bad exit status, timeout) still kills the rest via
        // Drop instead of leaking servers.
        for (name, child) in self.children.iter_mut().rev() {
            loop {
                match child.try_wait()? {
                    Some(status) if status.success() => break,
                    Some(status) => {
                        return Err(io::Error::other(format!("{name} exited with {status}")));
                    }
                    None if Instant::now() >= deadline => {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("{name} did not exit after shutdown"),
                        ));
                    }
                    None => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        }
        self.children.clear();
        Ok(())
    }
}

impl Drop for Topology {
    fn drop(&mut self) {
        // Reached only on error paths (clean exits drain `children` in
        // `shutdown`); don't leave orphan servers holding sockets.
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Runs one load pass through a launched topology and breaks the
/// result down per shard: `serve.jobs.ok` deltas read from each shard
/// directly, forwarding counts from the router's `route.shard.{i}.*`
/// metrics.
pub fn run_topology(base: &LoadConfig, topo: &Topology) -> io::Result<TopologyReport> {
    let mut cfg = base.clone();
    cfg.addr = topo.router_addr.clone();
    cfg.stats_addrs = topo.shard_addrs.clone();

    let before: Vec<_> =
        topo.shard_addrs.iter().map(tier_counters).collect::<io::Result<_>>()?;
    let report: LoadReport = loadgen::run(&cfg)?;
    let after: Vec<_> =
        topo.shard_addrs.iter().map(tier_counters).collect::<io::Result<_>>()?;
    let router_stats = stats_object(&topo.router_addr)?;

    let per_shard = before
        .iter()
        .zip(&after)
        .enumerate()
        .map(|(i, (b, a))| {
            let jobs_ok = a.since(b).jobs_ok;
            ShardReport {
                shard: i,
                jobs_ok,
                forwarded: stat_u64(&router_stats, &format!("route.shard.{i}.forwarded")),
                throughput_rps: if report.wall_s > 0.0 {
                    jobs_ok as f64 / report.wall_s
                } else {
                    0.0
                },
            }
        })
        .collect();
    Ok(TopologyReport { shards: topo.shard_addrs.len(), per_shard, report })
}

/// Runs the full shard-scaling sweep: for each count in `shard_counts`,
/// launch a fresh topology under `spawn.dir/s{count}`, run the load
/// through its router, record the per-shard breakdown, and shut the
/// tree down (children must exit 0 — a failed drain fails the sweep).
pub fn run_scaling_sweep(
    base: &LoadConfig,
    spawn: &SpawnConfig,
    shard_counts: &[usize],
) -> io::Result<Vec<TopologyReport>> {
    let mut out = Vec::with_capacity(shard_counts.len());
    for &n in shard_counts {
        let mut cfg = spawn.clone();
        cfg.shards = n;
        cfg.dir = spawn.dir.join(format!("s{n}"));
        eprintln!("scc-load: launching {n}-shard topology in {}", cfg.dir.display());
        let topo = Topology::launch(&cfg)?;
        let report = run_topology(base, &topo)?;
        topo.shutdown()?;
        eprintln!(
            "scc-load: {n}-shard topology: {:.2} rps, p99 {:.3} ms, {} errors",
            report.report.throughput_rps, report.report.p99_ms, report.report.errors
        );
        out.push(report);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_binary_rejects_missing_names() {
        let err = sibling_binary("definitely-not-a-binary-name").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
