//! Minimal Unix syscall shim for the readiness loop: `poll(2)`, a
//! nonblocking self-wake pipe, and an `RLIMIT_NOFILE` raiser.
//!
//! The repo's zero-registry-dependency rule means no `libc` crate, so
//! this module declares exactly the handful of POSIX symbols the event
//! loop needs (the same idiom as `serve::signal`'s raw `signal(2)`
//! declaration). Everything here is `#[cfg(unix)]`; non-Unix targets
//! get no readiness loop (see [`crate::server`]).

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness (data, EOF, or a pending accept).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (socket buffer has room again).
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hang-up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// The fd was not open — a bookkeeping bug if it ever fires.
pub const POLLNVAL: i16 = 0x020;

/// `struct pollfd` as `poll(2)` expects it.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by
    /// the kernel, which is how parked connections are skipped without
    /// rebuilding the array).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

impl PollFd {
    /// A watch entry for `fd` with the given interest set.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }
}

#[cfg(target_os = "linux")]
type NfdsT = u64;
#[cfg(not(target_os = "linux"))]
type NfdsT = u32;

#[cfg(any(target_os = "macos", target_os = "ios"))]
const O_NONBLOCK: i32 = 0x0004;
#[cfg(not(any(target_os = "macos", target_os = "ios")))]
const O_NONBLOCK: i32 = 0x0800;

#[cfg(any(target_os = "macos", target_os = "ios"))]
const RLIMIT_NOFILE: i32 = 8;
#[cfg(not(any(target_os = "macos", target_os = "ios")))]
const RLIMIT_NOFILE: i32 = 7;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    fn pipe(fds: *mut RawFd) -> i32;
    fn fcntl(fd: RawFd, cmd: i32, arg: i32) -> i32;
    fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
    fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
    fn close(fd: RawFd) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Blocks until at least one fd in `fds` is ready or `timeout_ms`
/// elapses. Returns the number of entries with nonzero `revents`; an
/// interrupted wait (`EINTR`) reports as zero ready fds so callers
/// simply re-enter their loop.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        return Ok(0);
    }
    Err(err)
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A nonblocking self-wake pipe: worker threads [`WakePipe::wake`] it
/// when a completed job needs the I/O thread to re-arm a writer, and
/// the I/O thread polls the read end alongside every socket.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe with both ends nonblocking (a full pipe on
    /// `wake` just means a wakeup is already pending).
    pub fn new() -> io::Result<WakePipe> {
        let mut fds: [RawFd; 2] = [-1, -1];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let p = WakePipe { read_fd: fds[0], write_fd: fds[1] };
        set_nonblocking_fd(p.read_fd)?;
        set_nonblocking_fd(p.write_fd)?;
        Ok(p)
    }

    /// The end the event loop watches with `POLLIN`.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Nudges the event loop. Safe from any thread; a full pipe or an
    /// interrupted write is fine — one pending byte is all a wakeup
    /// needs.
    pub fn wake(&self) {
        let byte = [1u8];
        loop {
            let rc = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
            if rc >= 0 {
                return;
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            // WouldBlock: the pipe already holds an undrained wakeup.
            return;
        }
    }

    /// Drains every pending wakeup byte (called once per loop
    /// iteration when the read end polls readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let rc = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if rc <= 0 {
                let err = io::Error::last_os_error();
                if rc < 0 && err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// Worker threads wake the pipe while the I/O thread polls it; both
// operations are plain fd syscalls with no shared Rust state.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit, returning the
/// resulting soft limit. A multiplexing server's connection ceiling is
/// its fd budget, so the binary calls this at startup; failure is
/// reported, not fatal (the admission cap still bounds usage).
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur < lim.rlim_max {
        let want = RLimit { rlim_cur: lim.rlim_max, rlim_max: lim.rlim_max };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } < 0 {
            return Err(io::Error::last_os_error());
        }
        lim.rlim_cur = lim.rlim_max;
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_round_trips_and_coalesces() {
        let p = WakePipe::new().unwrap();
        // Nothing pending: poll times out immediately.
        let mut fds = [PollFd::new(p.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        // Many wakes coalesce into one readable edge.
        for _ in 0..100 {
            p.wake();
        }
        let mut fds = [PollFd::new(p.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].revents & POLLIN != 0);
        p.drain();
        let mut fds = [PollFd::new(p.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn negative_fds_are_ignored() {
        let mut fds = [PollFd::new(-1, POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn nofile_limit_is_at_its_hard_ceiling_after_raising() {
        let n = raise_nofile_limit().unwrap();
        assert!(n >= 256, "suspiciously low fd limit: {n}");
        // Idempotent.
        assert_eq!(raise_nofile_limit().unwrap(), n);
    }
}
