//! Transport plumbing shared by the server, the client, and the bins:
//! an address type covering TCP and Unix sockets, and a [`Stream`] enum
//! abstracting over both connection kinds.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Where to listen or connect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// A TCP host:port, e.g. `127.0.0.1:7878` (port 0 picks an
    /// ephemeral port when binding).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl Addr {
    /// Parses `tcp:HOST:PORT`, `unix:PATH`, or a bare `HOST:PORT`.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            return Ok(Addr::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            return Ok(Addr::Unix(std::path::PathBuf::from(rest)));
            #[cfg(not(unix))]
            return Err(format!("unix sockets are unavailable here: {rest}"));
        }
        if s.contains(':') {
            return Ok(Addr::Tcp(s.to_string()));
        }
        Err(format!("bad address `{s}` (expected tcp:HOST:PORT or unix:PATH)"))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
            #[cfg(unix)]
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// One accepted or dialed connection, TCP or Unix.
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Dials `addr`.
    pub fn connect(addr: &Addr) -> io::Result<Stream> {
        match addr {
            Addr::Tcp(hp) => TcpStream::connect(hp.as_str()).map(Stream::Tcp),
            #[cfg(unix)]
            Addr::Unix(p) => UnixStream::connect(p).map(Stream::Unix),
        }
    }

    /// Sets the read timeout (used by clients that bound how long they
    /// wait for a response frame).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Switches the stream between blocking and nonblocking mode (the
    /// server's readiness loop runs every accepted connection
    /// nonblocking).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

#[cfg(unix)]
impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse() {
        assert_eq!(Addr::parse("tcp:127.0.0.1:7878"), Ok(Addr::Tcp("127.0.0.1:7878".into())));
        assert_eq!(Addr::parse("localhost:80"), Ok(Addr::Tcp("localhost:80".into())));
        #[cfg(unix)]
        assert_eq!(
            Addr::parse("unix:/tmp/scc.sock"),
            Ok(Addr::Unix(std::path::PathBuf::from("/tmp/scc.sock")))
        );
        assert!(Addr::parse("justahost").is_err());
    }
}
