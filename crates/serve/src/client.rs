//! A minimal blocking client for the `scc-serve` protocol, used by the
//! load generator, the protocol tests, and the CI smoke step.

use std::io::{self, Write};
use std::time::Duration;

use crate::frame::{FrameReader, Poll};
use crate::json::Json;
use crate::net::{Addr, Stream};

/// Responses can be much larger than requests (full metrics registry,
/// audit logs), so the client accepts frames up to this size.
const MAX_RESPONSE_BYTES: usize = 16 * 1024 * 1024;

/// One connection to an `scc-serve` instance.
pub struct Client {
    stream: Stream,
    reader: FrameReader,
}

impl Client {
    /// Dials the service.
    pub fn connect(addr: &Addr) -> io::Result<Client> {
        let stream = Stream::connect(addr)?;
        stream.set_read_timeout(None)?;
        Ok(Client { stream, reader: FrameReader::new(MAX_RESPONSE_BYTES) })
    }

    /// Dials with a read timeout (responses slower than this surface
    /// as [`io::ErrorKind::TimedOut`]).
    pub fn connect_with_timeout(addr: &Addr, read_timeout: Duration) -> io::Result<Client> {
        let stream = Stream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Client { stream, reader: FrameReader::new(MAX_RESPONSE_BYTES) })
    }

    /// Sends raw bytes without framing — for tests that need to write
    /// garbage, partial frames, or oversized payloads.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads the next response frame.
    pub fn read_response(&mut self) -> io::Result<String> {
        match self.reader.poll_line(&mut self.stream) {
            Poll::Line(s) => Ok(s),
            Poll::TimedOut => Err(io::Error::new(io::ErrorKind::TimedOut, "response timed out")),
            Poll::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Poll::Oversized => {
                Err(io::Error::new(io::ErrorKind::InvalidData, "response too large"))
            }
            Poll::BadUtf8 => {
                Err(io::Error::new(io::ErrorKind::InvalidData, "response not UTF-8"))
            }
            Poll::Err(e) => Err(e),
        }
    }

    /// Sends one request line (newline appended) and reads one response
    /// frame.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send_raw(line.as_bytes())?;
        self.send_raw(b"\n")?;
        self.read_response()
    }

    /// [`Client::request`] plus JSON parsing of the response.
    pub fn request_json(&mut self, line: &str) -> io::Result<Json> {
        let resp = self.request(line)?;
        Json::parse(&resp)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}
