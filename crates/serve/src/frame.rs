//! Newline-delimited framing with a hard size cap.
//!
//! A [`FrameReader`] accumulates bytes from a (possibly timing-out or
//! nonblocking) stream and yields one complete line at a time. It is
//! resumable: a read timeout or `WouldBlock` surfaces as
//! [`Poll::TimedOut`] with the partial frame retained, so the event
//! loop can park the connection until the next readiness edge without
//! losing data. Pipelined frames (several lines arriving in one read)
//! are buffered and yielded in order.
//!
//! A [`FrameWriter`] is the outbound mirror: a drain-on-readiness
//! buffer that survives short writes, `WouldBlock`, and interrupted
//! syscalls, so a large response over a slow socket can never emit a
//! truncated NDJSON line.

use std::io::{Read, Write};

/// What one poll of the framer produced.
#[derive(Debug)]
pub enum Poll {
    /// One complete frame (without its trailing newline).
    Line(String),
    /// The frame exceeded the size cap before its newline arrived. The
    /// stream position is now mid-frame, so the connection must close.
    Oversized,
    /// A complete frame arrived but was not valid UTF-8.
    BadUtf8,
    /// The peer closed the stream. If bytes of an unterminated frame
    /// were pending they are discarded — a truncated frame is not a
    /// request.
    Eof,
    /// The read timed out (`WouldBlock`/`TimedOut`); poll again.
    TimedOut,
    /// A hard I/O error.
    Err(std::io::Error),
}

/// Resumable newline framer over any [`Read`].
pub struct FrameReader {
    buf: Vec<u8>,
    max: usize,
}

impl FrameReader {
    /// A framer that rejects frames longer than `max` bytes.
    pub fn new(max: usize) -> FrameReader {
        FrameReader { buf: Vec::new(), max }
    }

    /// Polls for the next complete line.
    pub fn poll_line(&mut self, r: &mut impl Read) -> Poll {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => Poll::Line(s),
                    Err(_) => Poll::BadUtf8,
                };
            }
            if self.buf.len() > self.max {
                return Poll::Oversized;
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => return Poll::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Poll::TimedOut
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Poll::Err(e),
            }
        }
    }
}

/// Result of one [`FrameWriter::write_some`] drain attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteStatus {
    /// Every buffered byte reached the stream.
    Drained,
    /// The stream stopped accepting bytes (`WouldBlock`); re-arm
    /// `POLLOUT` and try again at the next readiness edge.
    Pending,
}

/// Resumable outbound frame buffer over any [`Write`].
///
/// `write(2)` on a nonblocking socket may accept any prefix of the
/// buffer — or nothing at all — so every response goes through this
/// buffer and is drained with explicit short-write accounting.
/// Interrupted syscalls (`EINTR`) are retried; `WouldBlock` parks the
/// remainder for the next readiness notification. `Ok(0)` from a
/// sink that claims progress while accepting nothing is reported as
/// [`std::io::ErrorKind::WriteZero`] rather than spinning.
#[derive(Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
    /// Bytes of `buf` already written. Compacted when the buffer fully
    /// drains (cheap) rather than on every partial write (quadratic).
    pos: usize,
}

impl FrameWriter {
    /// An empty writer.
    pub fn new() -> FrameWriter {
        FrameWriter::default()
    }

    /// Queues one rendered frame (caller supplies the trailing `\n`).
    pub fn push(&mut self, frame: &str) {
        self.buf.extend_from_slice(frame.as_bytes());
    }

    /// Bytes still awaiting the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Writes as much buffered data as the stream will take right now.
    pub fn write_some(&mut self, w: &mut impl Write) -> std::io::Result<WriteStatus> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "stream accepted zero bytes",
                    ));
                }
                Ok(n) => self.pos += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(WriteStatus::Pending)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(WriteStatus::Drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn yields_lines_including_pipelined_ones() {
        let mut r = Cursor::new(b"{\"a\":1}\n{\"b\":2}\r\npartial".to_vec());
        let mut fr = FrameReader::new(1024);
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s == "{\"a\":1}"));
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s == "{\"b\":2}"));
        // The unterminated tail is not a frame.
        assert!(matches!(fr.poll_line(&mut r), Poll::Eof));
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let big = vec![b'x'; 2048];
        let mut r = Cursor::new(big);
        let mut fr = FrameReader::new(64);
        assert!(matches!(fr.poll_line(&mut r), Poll::Oversized));
    }

    #[test]
    fn a_frame_at_the_cap_is_fine() {
        let mut data = vec![b'x'; 64];
        data.push(b'\n');
        let mut r = Cursor::new(data);
        let mut fr = FrameReader::new(64);
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s.len() == 64));
    }

    #[test]
    fn invalid_utf8_is_flagged_without_closing() {
        let mut r = Cursor::new(b"\xff\xfe\n{\"ok\":1}\n".to_vec());
        let mut fr = FrameReader::new(1024);
        assert!(matches!(fr.poll_line(&mut r), Poll::BadUtf8));
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s == "{\"ok\":1}"));
    }

    /// A reader that times out once, then produces data — models a
    /// socket with a read timeout.
    struct Flaky {
        phase: usize,
        data: Vec<u8>,
    }
    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.phase += 1;
            match self.phase {
                1 => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
                2 => {
                    let half = self.data.len() / 2;
                    buf[..half].copy_from_slice(&self.data[..half]);
                    Ok(half)
                }
                3 => Err(std::io::Error::from(std::io::ErrorKind::TimedOut)),
                4 => {
                    let half = self.data.len() / 2;
                    let rest = &self.data[half..];
                    buf[..rest.len()].copy_from_slice(rest);
                    Ok(rest.len())
                }
                _ => Ok(0),
            }
        }
    }

    #[test]
    fn partial_frames_survive_timeouts() {
        let mut r = Flaky { phase: 0, data: b"{\"verb\":\"health\"}\n".to_vec() };
        let mut fr = FrameReader::new(1024);
        assert!(matches!(fr.poll_line(&mut r), Poll::TimedOut));
        assert!(matches!(fr.poll_line(&mut r), Poll::TimedOut));
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s == "{\"verb\":\"health\"}"));
    }

    /// A writer modeling a socket with a tiny send buffer: accepts at
    /// most `chunk` bytes per call and interleaves `EINTR` and
    /// `WouldBlock` on a schedule.
    struct TrickleWriter {
        chunk: usize,
        calls: usize,
        sink: Vec<u8>,
    }
    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            match self.calls % 4 {
                1 => Err(std::io::Error::from(std::io::ErrorKind::Interrupted)),
                2 => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
                _ => {
                    let n = buf.len().min(self.chunk);
                    self.sink.extend_from_slice(&buf[..n]);
                    Ok(n)
                }
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_eintr_and_wouldblock_never_truncate_a_frame() {
        let frame_a = format!("{{\"ok\":true,\"payload\":\"{}\"}}\n", "x".repeat(300));
        let frame_b = "{\"ok\":false}\n".to_string();
        let mut fw = FrameWriter::new();
        fw.push(&frame_a);
        fw.push(&frame_b);
        assert_eq!(fw.pending(), frame_a.len() + frame_b.len());

        let mut w = TrickleWriter { chunk: 3, calls: 0, sink: Vec::new() };
        let mut rounds = 0;
        // Each WouldBlock models parking until the next POLLOUT edge.
        while fw.write_some(&mut w).unwrap() == WriteStatus::Pending {
            rounds += 1;
            assert!(rounds < 10_000, "writer failed to make progress");
        }
        assert!(fw.is_empty());
        assert_eq!(w.sink, [frame_a.as_bytes(), frame_b.as_bytes()].concat());
        // More frames after a full drain reuse the compacted buffer.
        fw.push(&frame_b);
        while fw.write_some(&mut w).unwrap() == WriteStatus::Pending {}
        assert!(String::from_utf8(w.sink).unwrap().ends_with(&frame_b));
    }

    #[test]
    fn a_zero_byte_write_is_an_error_not_a_spin() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut fw = FrameWriter::new();
        fw.push("{\"ok\":true}\n");
        let err = fw.write_some(&mut Zero).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
    }
}
