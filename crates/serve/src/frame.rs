//! Newline-delimited framing with a hard size cap.
//!
//! A [`FrameReader`] accumulates bytes from a (possibly timing-out)
//! stream and yields one complete line at a time. It is resumable: a
//! read timeout surfaces as [`Poll::TimedOut`] with the partial frame
//! retained, so connection handlers can poll their drain flag between
//! reads without losing data. Pipelined frames (several lines arriving
//! in one read) are buffered and yielded in order.

use std::io::Read;

/// What one poll of the framer produced.
#[derive(Debug)]
pub enum Poll {
    /// One complete frame (without its trailing newline).
    Line(String),
    /// The frame exceeded the size cap before its newline arrived. The
    /// stream position is now mid-frame, so the connection must close.
    Oversized,
    /// A complete frame arrived but was not valid UTF-8.
    BadUtf8,
    /// The peer closed the stream. If bytes of an unterminated frame
    /// were pending they are discarded — a truncated frame is not a
    /// request.
    Eof,
    /// The read timed out (`WouldBlock`/`TimedOut`); poll again.
    TimedOut,
    /// A hard I/O error.
    Err(std::io::Error),
}

/// Resumable newline framer over any [`Read`].
pub struct FrameReader {
    buf: Vec<u8>,
    max: usize,
}

impl FrameReader {
    /// A framer that rejects frames longer than `max` bytes.
    pub fn new(max: usize) -> FrameReader {
        FrameReader { buf: Vec::new(), max }
    }

    /// Polls for the next complete line.
    pub fn poll_line(&mut self, r: &mut impl Read) -> Poll {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => Poll::Line(s),
                    Err(_) => Poll::BadUtf8,
                };
            }
            if self.buf.len() > self.max {
                return Poll::Oversized;
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => return Poll::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Poll::TimedOut
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Poll::Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn yields_lines_including_pipelined_ones() {
        let mut r = Cursor::new(b"{\"a\":1}\n{\"b\":2}\r\npartial".to_vec());
        let mut fr = FrameReader::new(1024);
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s == "{\"a\":1}"));
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s == "{\"b\":2}"));
        // The unterminated tail is not a frame.
        assert!(matches!(fr.poll_line(&mut r), Poll::Eof));
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let big = vec![b'x'; 2048];
        let mut r = Cursor::new(big);
        let mut fr = FrameReader::new(64);
        assert!(matches!(fr.poll_line(&mut r), Poll::Oversized));
    }

    #[test]
    fn a_frame_at_the_cap_is_fine() {
        let mut data = vec![b'x'; 64];
        data.push(b'\n');
        let mut r = Cursor::new(data);
        let mut fr = FrameReader::new(64);
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s.len() == 64));
    }

    #[test]
    fn invalid_utf8_is_flagged_without_closing() {
        let mut r = Cursor::new(b"\xff\xfe\n{\"ok\":1}\n".to_vec());
        let mut fr = FrameReader::new(1024);
        assert!(matches!(fr.poll_line(&mut r), Poll::BadUtf8));
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s == "{\"ok\":1}"));
    }

    /// A reader that times out once, then produces data — models a
    /// socket with a read timeout.
    struct Flaky {
        phase: usize,
        data: Vec<u8>,
    }
    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.phase += 1;
            match self.phase {
                1 => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
                2 => {
                    let half = self.data.len() / 2;
                    buf[..half].copy_from_slice(&self.data[..half]);
                    Ok(half)
                }
                3 => Err(std::io::Error::from(std::io::ErrorKind::TimedOut)),
                4 => {
                    let half = self.data.len() / 2;
                    let rest = &self.data[half..];
                    buf[..rest.len()].copy_from_slice(rest);
                    Ok(rest.len())
                }
                _ => Ok(0),
            }
        }
    }

    #[test]
    fn partial_frames_survive_timeouts() {
        let mut r = Flaky { phase: 0, data: b"{\"verb\":\"health\"}\n".to_vec() };
        let mut fr = FrameReader::new(1024);
        assert!(matches!(fr.poll_line(&mut r), Poll::TimedOut));
        assert!(matches!(fr.poll_line(&mut r), Poll::TimedOut));
        assert!(matches!(fr.poll_line(&mut r), Poll::Line(s) if s == "{\"verb\":\"health\"}"));
    }
}
