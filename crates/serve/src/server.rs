//! The resident simulation service.
//!
//! A [`Server`] owns one or more listeners (TCP and/or Unix), a bounded
//! job queue, and a pool of simulation workers sharing one
//! [`Runner`] (and therefore the process-wide result cache). Network
//! I/O is a **single readiness loop**: one thread multiplexes every
//! connection over `poll(2)` (via the no-libc shim in [`crate::sys`]),
//! with nonblocking sockets and per-connection state machines
//! ([`crate::conn`]). The lifecycle is:
//!
//! 1. **Accept**: the I/O thread accepts until `WouldBlock`, subject to
//!    admission control — beyond `max_conns` a connection gets a
//!    best-effort `over_capacity` error and is dropped.
//! 2. **Parse/queue**: readable connections accumulate bytes, parse
//!    NDJSON frames, and answer verbs inline; `run` requests are
//!    enqueued (at most one outstanding per connection — the fairness
//!    policy), or rejected with `queue_full` + a capped
//!    `retry_after_ms` hint derived from the job-time EWMA and the
//!    backlog.
//! 3. **Execute**: workers pop jobs, enforce deadlines (expired-while-
//!    queued jobs are rejected without simulating; running jobs are
//!    cancelled via the pipeline's cancel check), then hand the
//!    rendered response to the I/O thread through the completion list
//!    and the wakeup pipe, which re-arms the connection's writer.
//! 4. **Drain**: the `shutdown` verb (or [`ServerHandle::drain`], which
//!    the binary wires to SIGTERM) flips the drain flag *under the
//!    queue lock*: accepting stops, queued and in-flight jobs finish,
//!    new `run` frames get a `draining` error, idle connections close,
//!    half-written responses flush before their connections close, and
//!    [`Server::serve`] returns.

use std::collections::VecDeque;
#[cfg(unix)]
use std::collections::HashMap;
use std::io;
#[cfg(unix)]
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

#[cfg(unix)]
use crate::conn::{Conn, ConnStatus};
use crate::conn::FrameDisposition;
use crate::net::{Addr, Stream};
use crate::protocol::{
    error_response, key_response, metrics_object, ok_response, parse_request, run_key,
    run_response, trace_key, ErrorCode, Proto, Request, RunRequest, TraceRequest,
    MAX_FRAME_BYTES,
};
#[cfg(unix)]
use crate::sys;
use scc_pipeline::{Metric, MetricValue};
use scc_sim::runner::{resolve_workload, validate_workload_name, Job, StoreTier};
use scc_sim::{cache_metrics, Runner, SimOptions};
use scc_workloads::{Scale, Suite, Workload};
use std::borrow::Cow;

/// How long a worker waits on the queue condvar before re-checking the
/// drain flag.
const WORKER_POLL: Duration = Duration::from_millis(100);

/// Readiness-loop poll timeout: the backstop cadence for drain checks
/// when no fd produces an event (completions and drain requests also
/// wake the loop through the pipe).
#[cfg(unix)]
const POLL_TIMEOUT_MS: i32 = 200;

/// Ceiling on the `retry_after_ms` backpressure hint. A deep queue of
/// slow jobs must suggest "come back soon and re-probe", never a
/// multi-hour sleep computed from a saturated product.
pub const RETRY_AFTER_CAP_MS: u64 = 30_000;

/// How long drain waits for connections to flush half-written
/// responses before force-closing them.
#[cfg(unix)]
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Simulation worker threads sharing the job queue.
    pub workers: usize,
    /// Bounded queue depth; `run` requests beyond it are rejected with
    /// `queue_full` + `retry_after_ms`.
    pub queue_depth: usize,
    /// Admission control: connections beyond this many get a
    /// best-effort `over_capacity` error and are closed immediately.
    pub max_conns: usize,
    /// Ceiling applied to any client-supplied `max_cycles`.
    pub max_cycles: u64,
    /// Directory of the persistent result store (`--store-dir`). When
    /// set, results are written through to disk and a restart serves
    /// prior results warm; when the store fails to open, the server
    /// *degrades* — it serves cold and reports
    /// `serve.store.degraded = 1` instead of refusing to start.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: scc_sim::default_jobs(),
            queue_depth: 64,
            max_conns: 4096,
            max_cycles: scc_sim::build::DEFAULT_MAX_CYCLES,
            store_dir: None,
        }
    }
}

/// One queued `run` request, waiting for a worker. The token routes
/// the rendered response back to its connection through the completion
/// list.
struct QueuedJob {
    proto: Proto,
    req: RunRequest,
    /// `Some` for a `run-trace` job: the ingested program, already
    /// decoded and named `trace:<digest>` in `req.workload`. `None` for
    /// registry jobs, which the worker resolves by name.
    workload: Option<Workload>,
    deadline: Option<Instant>,
    token: u64,
}

/// A finished job's response, headed back to the I/O thread.
struct Completion {
    token: u64,
    reply: String,
}

/// State shared by the I/O thread and the workers.
struct Shared {
    cfg: ServerConfig,
    runner: Runner,
    queue: Mutex<VecDeque<QueuedJob>>,
    work_ready: Condvar,
    /// Drain flag. Written only while holding the queue lock, so the
    /// I/O thread, having observed `false` under the lock, knows
    /// workers cannot have exited before its enqueue became visible.
    drain: AtomicBool,
    /// Responses finished by workers, awaiting delivery by the I/O
    /// thread (which the wakeup pipe nudges).
    completions: Mutex<Vec<Completion>>,
    #[cfg(unix)]
    wake: sys::WakePipe,
    in_flight: AtomicUsize,
    connections: AtomicU64,
    open_conns: AtomicUsize,
    conns_refused: AtomicU64,
    /// Accepted connections dropped because nonblocking setup failed —
    /// a blocking socket must never reach the readiness loop.
    setup_failures: AtomicU64,
    requests: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    /// Deprecation counter: frames received in the legacy v1 envelope
    /// (no `proto` field, or `proto:1`). Watch this hit zero before
    /// retiring v1 support.
    v1_frames: AtomicU64,
    /// EWMA of job wall time, microseconds (alpha = 1/8).
    avg_job_us: AtomicU64,
    /// True when `store_dir` was requested but the store failed to open
    /// (the server serves cold instead of refusing to start).
    store_degraded: bool,
}

impl Shared {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    /// The backpressure hint: how long a client should wait before
    /// retrying, assuming the backlog ahead of it drains at the
    /// observed per-job EWMA across the worker pool. Every step
    /// saturates and the result is capped at [`RETRY_AFTER_CAP_MS`], so
    /// a deep queue of pathologically slow jobs can neither overflow
    /// nor tell a client to sleep for hours.
    fn retry_after_ms(&self, queued: usize) -> u64 {
        let avg_us = self.avg_job_us.load(Ordering::Relaxed).max(1_000);
        let backlog = (queued as u64)
            .saturating_add(self.in_flight.load(Ordering::Relaxed) as u64)
            .saturating_add(1);
        let us = avg_us.saturating_mul(backlog) / self.cfg.workers.max(1) as u64;
        (us / 1_000).clamp(10, RETRY_AFTER_CAP_MS)
    }

    fn observe_job_time(&self, wall: Duration) {
        let sample = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        let old = self.avg_job_us.load(Ordering::Relaxed);
        let new = if old == 0 { sample } else { old - old / 8 + sample / 8 };
        self.avg_job_us.store(new, Ordering::Relaxed);
    }

    /// Hands a finished job's response to the I/O thread.
    fn complete(&self, token: u64, reply: String) {
        self.completions.lock().unwrap_or_else(|p| p.into_inner()).push(Completion {
            token,
            reply,
        });
        #[cfg(unix)]
        self.wake.wake();
    }

    /// The store tier attached to the shared runner, if any.
    fn store(&self) -> Option<&Arc<StoreTier>> {
        self.runner.store_tier()
    }

    /// Gauges and counters for the `stats` verb, merged with the
    /// runner's `runner.cache.*` (and, when a store is attached,
    /// `runner.store.*`) registry metrics.
    fn metrics(&self) -> Vec<Metric> {
        let queued = self.queue.lock().unwrap_or_else(|p| p.into_inner()).len();
        let counter = |name: &str, v: u64| Metric {
            name: name.to_string(),
            value: MetricValue::Counter(v),
        };
        let mut out = vec![
            counter("serve.workers", self.cfg.workers as u64),
            counter("serve.queue.depth", self.cfg.queue_depth as u64),
            counter("serve.queue.len", queued as u64),
            counter("serve.in_flight", self.in_flight.load(Ordering::Relaxed) as u64),
            counter("serve.draining", u64::from(self.draining())),
            counter("serve.connections", self.connections.load(Ordering::Relaxed)),
            counter("serve.conns.open", self.open_conns.load(Ordering::Relaxed) as u64),
            counter("serve.conns.max", self.cfg.max_conns as u64),
            counter("serve.conns.refused", self.conns_refused.load(Ordering::Relaxed)),
            counter("serve.net.setup_failures", self.setup_failures.load(Ordering::Relaxed)),
            counter("serve.requests", self.requests.load(Ordering::Relaxed)),
            counter("serve.jobs.ok", self.jobs_ok.load(Ordering::Relaxed)),
            counter("serve.jobs.failed", self.jobs_failed.load(Ordering::Relaxed)),
            counter("serve.jobs.rejected", self.jobs_rejected.load(Ordering::Relaxed)),
            counter("serve.proto.v1_frames", self.v1_frames.load(Ordering::Relaxed)),
            counter("serve.avg_job_us", self.avg_job_us.load(Ordering::Relaxed)),
        ];
        out.push(counter("serve.store.enabled", u64::from(self.store().is_some())));
        out.push(counter("serve.store.degraded", u64::from(self.store_degraded)));
        out.extend(cache_metrics());
        if let Some(tier) = self.store() {
            out.extend(tier.metrics());
        }
        out
    }
}

/// A handle that can observe and trigger drain from outside the server
/// thread (the binary points SIGTERM at this).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins graceful drain: stop accepting, finish queued and
    /// in-flight jobs, flush every half-written response, then let
    /// [`Server::serve`] return.
    pub fn drain(&self) {
        let _guard = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        self.shared.drain.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        #[cfg(unix)]
        self.shared.wake.wake();
    }

    /// True once drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

#[cfg(unix)]
impl Listener {
    fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

/// The service: listeners + readiness loop + worker pool. Construct
/// with [`Server::bind`], then block in [`Server::serve`].
pub struct Server {
    shared: Arc<Shared>,
    listeners: Vec<Listener>,
    tcp_addrs: Vec<SocketAddr>,
}

impl Server {
    /// Binds every address and prepares (but does not start) the
    /// service. Unix socket paths left over from a previous run are
    /// unlinked first.
    pub fn bind(addrs: &[Addr], cfg: ServerConfig) -> io::Result<Server> {
        let mut listeners = Vec::new();
        let mut tcp_addrs = Vec::new();
        for addr in addrs {
            match addr {
                Addr::Tcp(hp) => {
                    let l = TcpListener::bind(hp.as_str())?;
                    l.set_nonblocking(true)?;
                    tcp_addrs.push(l.local_addr()?);
                    listeners.push(Listener::Tcp(l));
                }
                #[cfg(unix)]
                Addr::Unix(path) => {
                    let _ = std::fs::remove_file(path);
                    let l = UnixListener::bind(path)?;
                    l.set_nonblocking(true)?;
                    listeners.push(Listener::Unix(l, path.clone()));
                }
            }
        }
        if listeners.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no listen addresses"));
        }
        let workers = cfg.workers.max(1);
        // Open the persistent tier before serving, so recovery happens
        // once up front. An unopenable store degrades to cold serving —
        // a broken disk must not take the service down with it.
        let mut runner = Runner::new();
        let mut store_degraded = false;
        if let Some(dir) = &cfg.store_dir {
            match StoreTier::open(dir) {
                Ok(tier) => {
                    let rec = tier.recovery();
                    eprintln!(
                        "scc-serve: store at {} recovered {} records \
                         ({} corrupt skipped, {} torn truncations, {} segments invalidated)",
                        dir.display(),
                        rec.records_indexed,
                        rec.corrupt_records_skipped,
                        rec.torn_truncations,
                        rec.invalidated_segments(),
                    );
                    runner = runner.with_store(tier);
                }
                Err(e) => {
                    eprintln!(
                        "scc-serve: store at {} unavailable ({e}); serving cold",
                        dir.display()
                    );
                    store_degraded = true;
                }
            }
        }
        let shared = Arc::new(Shared {
            cfg: ServerConfig { workers, ..cfg },
            runner,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            drain: AtomicBool::new(false),
            completions: Mutex::new(Vec::new()),
            #[cfg(unix)]
            wake: sys::WakePipe::new()?,
            in_flight: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            open_conns: AtomicUsize::new(0),
            conns_refused: AtomicU64::new(0),
            setup_failures: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            jobs_ok: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            v1_frames: AtomicU64::new(0),
            avg_job_us: AtomicU64::new(0),
            store_degraded,
        });
        Ok(Server { shared, listeners, tcp_addrs })
    }

    /// A drain handle usable from other threads (tests, signal wiring).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The first bound TCP address (resolves port 0 for tests).
    pub fn local_tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addrs.first().copied()
    }

    /// Runs the service until drained: spawns the worker pool, runs the
    /// readiness loop on the calling thread, and on drain joins every
    /// worker before returning.
    #[cfg(unix)]
    pub fn serve(self) -> io::Result<()> {
        let mut worker_handles = Vec::new();
        for w in 0..self.shared.cfg.workers {
            let shared = Arc::clone(&self.shared);
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("scc-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let loop_result = event_loop(&self.shared, &self.listeners);

        // The loop only exits in drain (or on a fatal poll error, in
        // which case we still drain so workers exit).
        self.handle().drain();
        for h in worker_handles {
            let _ = h.join();
        }
        // Every worker has exited, so every write-through has reached
        // the store; fsync before reporting a clean exit.
        if let Some(tier) = self.shared.store() {
            match tier.flush() {
                Ok(()) => eprintln!("scc-serve: store flushed"),
                Err(e) => eprintln!("scc-serve: store flush failed: {e}"),
            }
        }
        for l in &self.listeners {
            if let Listener::Unix(_, path) = l {
                let _ = std::fs::remove_file(path);
            }
        }
        let m = self.shared.metrics();
        eprintln!("scc-serve: drained; final {}", metrics_object(&m));
        loop_result
    }

    /// The readiness loop multiplexes raw fds via `poll(2)`, which this
    /// build target does not provide.
    #[cfg(not(unix))]
    pub fn serve(self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "scc-serve's readiness loop requires a Unix-like OS",
        ))
    }
}

/// The single I/O thread: accept, parse, enqueue, deliver completions,
/// drain — all over one `poll(2)` set.
#[cfg(unix)]
fn event_loop(shared: &Arc<Shared>, listeners: &[Listener]) -> io::Result<()> {
    let mut conns: HashMap<u64, Conn<Stream>> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut drain_started: Option<Instant> = None;
    // After an accept error (e.g. fd exhaustion), stop polling the
    // listeners briefly instead of spinning on an always-ready backlog.
    let mut accept_backoff_until: Option<Instant> = None;

    loop {
        let draining = shared.draining();
        if draining {
            let started = *drain_started.get_or_insert_with(Instant::now);
            sweep_for_drain(shared, &mut conns);
            if started.elapsed() > DRAIN_GRACE && !conns.is_empty() {
                // The grace backstop is for clients that will not read
                // their last response — never for connections still
                // owed an in-flight job's reply; those get a fresh
                // grace window once the reply is delivered.
                let lingering: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| !c.awaiting_job())
                    .map(|(tok, _)| *tok)
                    .collect();
                if !lingering.is_empty() {
                    eprintln!(
                        "scc-serve: drain grace expired; force-closing {} connections",
                        lingering.len()
                    );
                    for tok in lingering {
                        conns.remove(&tok);
                        shared.open_conns.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                drain_started = Some(Instant::now());
            }
            if conns.is_empty() {
                return Ok(());
            }
        }

        // Build the poll set: wake pipe, listeners, then connections.
        let accepting = !draining
            && accept_backoff_until.is_none_or(|t| Instant::now() >= t)
            && conns.len() < shared.cfg.max_conns.saturating_add(64);
        let mut fds = Vec::with_capacity(1 + listeners.len() + conns.len());
        fds.push(sys::PollFd::new(shared.wake.read_fd(), sys::POLLIN));
        let listener_base = fds.len();
        for l in listeners {
            // A negative fd tells poll(2) to skip the entry, which is
            // how accepting is paused without rebuilding the set.
            let fd = if accepting { l.raw_fd() } else { -1 };
            fds.push(sys::PollFd::new(fd, sys::POLLIN));
        }
        let conn_base = fds.len();
        let mut tokens = Vec::with_capacity(conns.len());
        for (tok, c) in &conns {
            let (r, w) = c.wants();
            let mut events = 0;
            if r {
                events |= sys::POLLIN;
            }
            if w {
                events |= sys::POLLOUT;
            }
            // Entries with an empty interest set still report
            // POLLERR/POLLHUP, so a vanished peer wakes the loop even
            // while its job runs.
            fds.push(sys::PollFd::new(c.stream().as_raw_fd(), events));
            tokens.push(*tok);
        }

        sys::poll_fds(&mut fds, POLL_TIMEOUT_MS)?;

        if fds[0].revents != 0 {
            shared.wake.drain();
        }
        deliver_completions(shared, &mut conns);

        for (i, l) in listeners.iter().enumerate() {
            if fds[listener_base + i].revents & sys::POLLIN != 0 {
                if let Err(e) = accept_all(shared, l, &mut conns, &mut next_token) {
                    eprintln!("scc-serve: accept error: {e}");
                    accept_backoff_until = Some(Instant::now() + Duration::from_millis(50));
                }
            }
        }

        for (i, tok) in tokens.iter().enumerate() {
            let revents = fds[conn_base + i].revents;
            if revents == 0 {
                continue;
            }
            // The completion pass above may already have closed it.
            let Some(c) = conns.get_mut(tok) else { continue };
            let mut cb = |line: &str| handle_frame(shared, line, *tok);
            let status = if revents & sys::POLLNVAL != 0 {
                ConnStatus::Closed
            } else if revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0 {
                // Errors and hangups surface through read(): EOF or a
                // hard error, each with its defined close semantics.
                c.on_readable(&mut cb)
            } else {
                c.on_writable(&mut cb)
            };
            if status == ConnStatus::Closed {
                conns.remove(tok);
                shared.open_conns.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Routes every finished job's response to its connection's writer.
#[cfg(unix)]
fn deliver_completions(shared: &Arc<Shared>, conns: &mut HashMap<u64, Conn<Stream>>) {
    let completions =
        std::mem::take(&mut *shared.completions.lock().unwrap_or_else(|p| p.into_inner()));
    for comp in completions {
        // A connection that died mid-job simply loses its response;
        // the job itself ran (and populated the cache) regardless.
        let Some(c) = conns.get_mut(&comp.token) else { continue };
        let mut cb = |line: &str| handle_frame(shared, line, comp.token);
        if c.complete_job(&comp.reply, &mut cb) == ConnStatus::Closed {
            conns.remove(&comp.token);
            shared.open_conns.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Drain sweep: idle connections close (after flushing), connections
/// with an outstanding job are left for their completion to finish.
#[cfg(unix)]
fn sweep_for_drain(shared: &Arc<Shared>, conns: &mut HashMap<u64, Conn<Stream>>) {
    let mut closed = Vec::new();
    for (tok, c) in conns.iter_mut() {
        if c.awaiting_job() {
            continue;
        }
        c.begin_drain();
        let mut cb = |line: &str| handle_frame(shared, line, *tok);
        if c.on_writable(&mut cb) == ConnStatus::Closed {
            closed.push(*tok);
        }
    }
    for tok in closed {
        conns.remove(&tok);
        shared.open_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Accepts until `WouldBlock`, applying admission control and forcing
/// every admitted stream nonblocking.
#[cfg(unix)]
fn accept_all(
    shared: &Arc<Shared>,
    l: &Listener,
    conns: &mut HashMap<u64, Conn<Stream>>,
    next_token: &mut u64,
) -> io::Result<()> {
    loop {
        let Some(mut stream) = accept_one(l)? else { return Ok(()) };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        if conns.len() >= shared.cfg.max_conns {
            shared.conns_refused.fetch_add(1, Ordering::Relaxed);
            // Best-effort rejection frame; a full socket buffer on a
            // brand-new connection is not worth waiting for.
            let queued = shared.queue.lock().unwrap_or_else(|p| p.into_inner()).len();
            // The client has not spoken yet, so its envelope version is
            // unknown; reject in v1, which every generation parses.
            let r = error_response(
                Proto::V1,
                None,
                ErrorCode::OverCapacity,
                &format!("connection limit {} reached", shared.cfg.max_conns),
                Some(shared.retry_after_ms(queued)),
            );
            let _ = stream.set_nonblocking(true);
            let _ = stream.write(r.as_bytes());
            continue;
        }
        // A blocking socket in a readiness loop would wedge every
        // other connection on the first short read; if nonblocking
        // setup fails the connection must die, not degrade.
        if let Err(e) = stream.set_nonblocking(true) {
            shared.setup_failures.fetch_add(1, Ordering::Relaxed);
            eprintln!("scc-serve: set_nonblocking failed on accepted connection: {e}");
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        shared.open_conns.fetch_add(1, Ordering::Relaxed);
        conns.insert(token, Conn::new(stream, MAX_FRAME_BYTES));
    }
}

#[cfg(unix)]
fn accept_one(l: &Listener) -> io::Result<Option<Stream>> {
    let would_block = |e: &io::Error| e.kind() == io::ErrorKind::WouldBlock;
    match l {
        Listener::Tcp(l) => match l.accept() {
            Ok((s, _)) => Ok(Some(Stream::Tcp(s))),
            Err(e) if would_block(&e) => Ok(None),
            Err(e) => Err(e),
        },
        Listener::Unix(l, _) => match l.accept() {
            Ok((s, _)) => Ok(Some(Stream::Unix(s))),
            Err(e) if would_block(&e) => Ok(None),
            Err(e) => Err(e),
        },
    }
}

/// Parses and dispatches one request frame: most verbs are answered
/// inline; a valid `run` is enqueued and answered later through the
/// completion path.
fn handle_frame(shared: &Shared, line: &str, token: u64) -> FrameDisposition {
    use FrameDisposition::Reply;
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let frame = match parse_request(line) {
        Ok(f) => f,
        Err(e) => {
            return Reply(error_response(e.proto, e.id.as_deref(), e.code, &e.message, None))
        }
    };
    let proto = frame.proto;
    if proto == Proto::V1 {
        shared.v1_frames.fetch_add(1, Ordering::Relaxed);
    }
    match frame.request {
        Request::Health => {
            let status = if shared.draining() { "draining" } else { "ok" };
            Reply(ok_response(proto, &format!("\"status\":\"{status}\"")))
        }
        Request::Stats => Reply(ok_response(
            proto,
            &format!("\"stats\":{}", metrics_object(&shared.metrics())),
        )),
        Request::Persist => Reply(match shared.store() {
            Some(tier) => match tier.flush() {
                Ok(()) => ok_response(
                    proto,
                    &format!("\"status\":\"persisted\",\"writes\":{}", tier.store_stats().puts),
                ),
                Err(e) => error_response(
                    proto,
                    None,
                    ErrorCode::StoreIo,
                    &format!("store flush failed: {e}"),
                    None,
                ),
            },
            None => store_unavailable(shared, proto),
        }),
        Request::Warm => Reply(match shared.store() {
            Some(tier) => match tier.warm_into_cache() {
                Ok(n) => ok_response(proto, &format!("\"status\":\"warmed\",\"entries\":{n}")),
                Err(e) => error_response(
                    proto,
                    None,
                    ErrorCode::StoreIo,
                    &format!("store warm failed: {e}"),
                    None,
                ),
            },
            None => store_unavailable(shared, proto),
        }),
        Request::Shutdown => {
            let _guard = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            shared.drain.store(true, Ordering::SeqCst);
            shared.work_ready.notify_all();
            Reply(ok_response(proto, "\"status\":\"draining\""))
        }
        Request::Key(req) => {
            // The key is computed exactly as the execution path would:
            // same options, same clamp — so what this returns is the
            // string the result is cached and stored under, and the
            // string `scc-route` hashes for shard placement.
            let id = req.id.clone();
            if let Err(e) = validate_workload_name(&req.workload) {
                return Reply(error_response(
                    proto,
                    id.as_deref(),
                    ErrorCode::from_job_error(&e),
                    &e.to_string(),
                    None,
                ));
            }
            let key = run_key(&req, shared.cfg.max_cycles);
            Reply(key_response(proto, id.as_deref(), &key))
        }
        Request::KeyTrace(req) => {
            // The payload was fully validated at parse time, so the key
            // is always computable — no workload-name check applies.
            let key = trace_key(&req, shared.cfg.max_cycles);
            Reply(key_response(proto, req.id.as_deref(), &key))
        }
        Request::Run(run) => submit_run(shared, proto, run, None, token),
        Request::RunTrace(tr) => submit_trace(shared, proto, tr, token),
    }
}

/// Converts a validated `run-trace` request into an ordinary queued
/// job: the decoded program becomes a [`Workload`] named by content
/// digest, and everything downstream (queueing, deadline handling, the
/// cache fast path, store write-through) is the `run` path verbatim.
fn submit_trace(
    shared: &Shared,
    proto: Proto,
    tr: TraceRequest,
    token: u64,
) -> FrameDisposition {
    let req = tr.as_run_request();
    let trace = match scc_lang::trace::decode(&tr.trace_bytes) {
        Ok(t) => t,
        // Unreachable in practice: the parser validated the same bytes.
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return FrameDisposition::Reply(error_response(
                proto,
                req.id.as_deref(),
                ErrorCode::BadTrace,
                &format!("invalid SCCTRACE1 payload: {e}"),
                None,
            ));
        }
    };
    let workload = Workload {
        name: Cow::Owned(req.workload.clone()),
        suite: Suite::Guest,
        program: trace.program,
        description: "ingested SCCTRACE1 program",
        scale: Scale::custom(req.iters),
    };
    submit_run(shared, proto, req, Some(workload), token)
}

/// The `persist`/`warm` rejection when no store tier is attached —
/// distinguishing "never configured" from "configured but degraded".
fn store_unavailable(shared: &Shared, proto: Proto) -> String {
    let message = if shared.store_degraded {
        "persistent store failed to open at startup; serving cold"
    } else {
        "no persistent store attached (start scc-serve with --store-dir)"
    };
    error_response(proto, None, ErrorCode::StoreUnavailable, message, None)
}

/// Validates and enqueues one `run` request; the response arrives via
/// the completion path once a worker finishes it.
fn submit_run(
    shared: &Shared,
    proto: Proto,
    req: RunRequest,
    workload: Option<Workload>,
    token: u64,
) -> FrameDisposition {
    use FrameDisposition::{JobQueued, Reply};
    let id = req.id.clone();
    // Validate the workload name before spending a queue slot, so a
    // typo never occupies capacity. Name-only: this runs on the I/O
    // thread for every request, so it must not build the program.
    // Trace jobs carry their (already validated) program and a
    // synthesized digest name, so the registry check does not apply.
    if workload.is_none() {
        if let Err(e) = validate_workload_name(&req.workload) {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return Reply(error_response(
                proto,
                id.as_deref(),
                ErrorCode::from_job_error(&e),
                &e.to_string(),
                None,
            ));
        }
    }
    let deadline = req.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    {
        let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        // Checked under the lock: drain is only ever set under this
        // lock, so seeing `false` here guarantees workers will still
        // observe this enqueue before exiting.
        if shared.draining() {
            return Reply(error_response(
                proto,
                id.as_deref(),
                ErrorCode::Draining,
                "server is draining; submit to another instance",
                None,
            ));
        }
        if q.len() >= shared.cfg.queue_depth {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            let hint = shared.retry_after_ms(q.len());
            return Reply(error_response(
                proto,
                id.as_deref(),
                ErrorCode::QueueFull,
                &format!("queue at capacity ({})", shared.cfg.queue_depth),
                Some(hint),
            ));
        }
        q.push_back(QueuedJob { proto, req, workload, deadline, token });
    }
    shared.work_ready.notify_one();
    JobQueued
}

/// Worker: pop → execute → hand the response to the I/O thread, until
/// drained and the queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .work_ready
                    .wait_timeout(q, WORKER_POLL)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        let Some(qj) = job else { return };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let started = Instant::now();
        let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(shared, &qj)
        }))
        .unwrap_or_else(|_| {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            error_response(
                qj.proto,
                qj.req.id.as_deref(),
                ErrorCode::InternalError,
                "job execution panicked",
                None,
            )
        });
        shared.observe_job_time(started.elapsed());
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.complete(qj.token, reply);
    }
}

/// Executes one popped job on the shared runner.
fn execute_job(shared: &Shared, qj: &QueuedJob) -> String {
    let req = &qj.req;
    let proto = qj.proto;
    let id = req.id.as_deref();
    if let Some(d) = qj.deadline {
        if Instant::now() >= d {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return error_response(
                proto,
                id,
                ErrorCode::DeadlineExceeded,
                "deadline expired while queued",
                None,
            );
        }
    }
    // Fast path: probe the result tiers by canonical key before paying
    // for workload resolution. `run_key` is a pure string computation,
    // while resolving builds the whole workload program — on a warm
    // server the hit path is the common case and must not be priced
    // like a miss.
    if !req.audit {
        if let Some(r) = shared.runner.try_cached(&run_key(req, shared.cfg.max_cycles), id) {
            shared.jobs_ok.fetch_add(1, Ordering::Relaxed);
            return run_response(proto, id, &r, None);
        }
    }
    let workload = match &qj.workload {
        // A trace job travels with its decoded program; nothing to
        // resolve.
        Some(w) => w.clone(),
        None => match resolve_workload(&req.workload, Scale::custom(req.iters)) {
            Ok(w) => w,
            Err(e) => {
                shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                return error_response(
                    proto,
                    id,
                    ErrorCode::from_job_error(&e),
                    &e.to_string(),
                    None,
                );
            }
        },
    };
    let mut opts = SimOptions::new(req.level);
    opts.max_cycles = req.max_cycles.unwrap_or(shared.cfg.max_cycles).min(shared.cfg.max_cycles);
    let job = Job::new(&workload, &opts);
    match shared.runner.run_fresh(&job, qj.deadline, id, req.audit) {
        Ok(one) => {
            shared.jobs_ok.fetch_add(1, Ordering::Relaxed);
            run_response(proto, id, &one.result, one.audit_jsonl.as_deref())
        }
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            error_response(proto, id, ErrorCode::from_job_error(&e), &e.to_string(), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared() -> Arc<Shared> {
        let server =
            Server::bind(&[Addr::Tcp("127.0.0.1:0".to_string())], ServerConfig::default())
                .expect("bind");
        Arc::clone(&server.shared)
    }

    #[test]
    fn retry_hint_saturates_and_is_capped_at_the_extremes() {
        let shared = test_shared();
        // Pathological: a saturated EWMA, a huge backlog, and maximal
        // in-flight — the product would overflow u64 many times over,
        // and the naive hint would be centuries. The hint must be the
        // cap, not a wrapped or absurd value.
        shared.avg_job_us.store(u64::MAX, Ordering::Relaxed);
        shared.in_flight.store(usize::MAX, Ordering::SeqCst);
        assert_eq!(shared.retry_after_ms(usize::MAX), RETRY_AFTER_CAP_MS);
        // A deep-but-real backlog of slow jobs also lands on the cap
        // rather than a multi-hour sleep: 10k queued × 30 s jobs.
        shared.in_flight.store(0, Ordering::SeqCst);
        shared.avg_job_us.store(30_000_000, Ordering::Relaxed);
        assert_eq!(shared.retry_after_ms(10_000), RETRY_AFTER_CAP_MS);
    }

    #[test]
    fn retry_hint_keeps_its_floor_on_an_idle_server() {
        let shared = test_shared();
        shared.avg_job_us.store(0, Ordering::Relaxed);
        assert!(shared.retry_after_ms(0) >= 10);
    }

    #[test]
    fn retry_hint_tracks_a_sane_backlog_proportionally() {
        let shared = test_shared();
        // 1 ms jobs, backlog of (queued + in-flight + 1) over the pool.
        shared.avg_job_us.store(1_000, Ordering::Relaxed);
        let workers = shared.cfg.workers as u64;
        let hint = shared.retry_after_ms(2 * shared.cfg.workers);
        // Roughly (2W + 1) ms / W workers ≈ 2-3 ms, floored at 10.
        assert!(hint >= 10 && hint <= 10.max(3 * workers), "hint = {hint}");
    }

    #[test]
    fn job_time_ewma_accepts_extreme_samples() {
        let shared = test_shared();
        shared.observe_job_time(Duration::from_secs(u64::MAX / 2_000_000));
        shared.observe_job_time(Duration::from_micros(1));
        // No panic, and the hint still respects the cap.
        assert!(shared.retry_after_ms(1_000_000) <= RETRY_AFTER_CAP_MS);
    }
}
