//! The resident simulation service.
//!
//! A [`Server`] owns one or more listeners (TCP and/or Unix), a bounded
//! job queue, and a pool of simulation workers sharing one
//! [`Runner`] (and therefore the process-wide result cache). The
//! lifecycle is:
//!
//! 1. **Accept**: each connection gets a handler thread that frames
//!    NDJSON requests and answers them in order.
//! 2. **Queue**: `run` requests are enqueued; when the queue is at
//!    capacity the request is rejected immediately with `queue_full`
//!    and a `retry_after_ms` hint derived from the observed job-time
//!    EWMA and the current backlog.
//! 3. **Execute**: workers pop jobs, enforce deadlines (expired-while-
//!    queued jobs are rejected without simulating; running jobs are
//!    cancelled via the pipeline's cancel check), and send back a
//!    pre-rendered response frame.
//! 4. **Drain**: the `shutdown` verb (or [`ServerHandle::drain`], which
//!    the binary wires to SIGTERM) flips the drain flag *under the
//!    queue lock*: accepting stops, already-queued and in-flight jobs
//!    finish, new `run` frames get a `draining` error, idle
//!    connections close, and [`Server::serve`] returns.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::frame::{FrameReader, Poll};
use crate::net::{Addr, Stream};
use crate::protocol::{
    error_response, metrics_object, parse_request, run_response, Request, RunRequest,
    MAX_FRAME_BYTES,
};
use scc_pipeline::{Metric, MetricValue};
use scc_sim::runner::{resolve_workload, Job, StoreTier};
use scc_sim::{cache_metrics, Runner, SimOptions};
use scc_workloads::Scale;

/// How long a connection handler blocks in `read` before re-checking
/// the drain flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// How long a worker waits on the queue condvar before re-checking the
/// drain flag.
const WORKER_POLL: Duration = Duration::from_millis(100);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Simulation worker threads sharing the job queue.
    pub workers: usize,
    /// Bounded queue depth; `run` requests beyond it are rejected with
    /// `queue_full` + `retry_after_ms`.
    pub queue_depth: usize,
    /// Ceiling applied to any client-supplied `max_cycles`.
    pub max_cycles: u64,
    /// Directory of the persistent result store (`--store-dir`). When
    /// set, results are written through to disk and a restart serves
    /// prior results warm; when the store fails to open, the server
    /// *degrades* — it serves cold and reports
    /// `serve.store.degraded = 1` instead of refusing to start.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: scc_sim::default_jobs(),
            queue_depth: 64,
            max_cycles: scc_sim::build::DEFAULT_MAX_CYCLES,
            store_dir: None,
        }
    }
}

/// One queued `run` request, waiting for a worker.
struct QueuedJob {
    req: RunRequest,
    deadline: Option<Instant>,
    resp: mpsc::Sender<String>,
}

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    cfg: ServerConfig,
    runner: Runner,
    queue: Mutex<VecDeque<QueuedJob>>,
    work_ready: Condvar,
    /// Drain flag. Written only while holding the queue lock, so a
    /// connection handler that observed `false` under the lock knows
    /// workers cannot have exited before its enqueue became visible.
    drain: AtomicBool,
    in_flight: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    /// EWMA of job wall time, microseconds (alpha = 1/8).
    avg_job_us: AtomicU64,
    /// True when `store_dir` was requested but the store failed to open
    /// (the server serves cold instead of refusing to start).
    store_degraded: bool,
}

impl Shared {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    /// The backpressure hint: how long a client should wait before
    /// retrying, assuming the backlog ahead of it drains at the
    /// observed per-job EWMA across the worker pool.
    fn retry_after_ms(&self, queued: usize) -> u64 {
        let avg_us = self.avg_job_us.load(Ordering::Relaxed).max(1_000);
        let backlog = queued + self.in_flight.load(Ordering::Relaxed) + 1;
        let us = avg_us.saturating_mul(backlog as u64) / self.cfg.workers.max(1) as u64;
        (us / 1_000).max(10)
    }

    fn observe_job_time(&self, wall: Duration) {
        let sample = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        let old = self.avg_job_us.load(Ordering::Relaxed);
        let new = if old == 0 { sample } else { old - old / 8 + sample / 8 };
        self.avg_job_us.store(new, Ordering::Relaxed);
    }

    /// The store tier attached to the shared runner, if any.
    fn store(&self) -> Option<&Arc<StoreTier>> {
        self.runner.store_tier()
    }

    /// Gauges and counters for the `stats` verb, merged with the
    /// runner's `runner.cache.*` (and, when a store is attached,
    /// `runner.store.*`) registry metrics.
    fn metrics(&self) -> Vec<Metric> {
        let queued = self.queue.lock().unwrap_or_else(|p| p.into_inner()).len();
        let counter = |name: &str, v: u64| Metric {
            name: name.to_string(),
            value: MetricValue::Counter(v),
        };
        let mut out = vec![
            counter("serve.workers", self.cfg.workers as u64),
            counter("serve.queue.depth", self.cfg.queue_depth as u64),
            counter("serve.queue.len", queued as u64),
            counter("serve.in_flight", self.in_flight.load(Ordering::Relaxed) as u64),
            counter("serve.draining", u64::from(self.draining())),
            counter("serve.connections", self.connections.load(Ordering::Relaxed)),
            counter("serve.requests", self.requests.load(Ordering::Relaxed)),
            counter("serve.jobs.ok", self.jobs_ok.load(Ordering::Relaxed)),
            counter("serve.jobs.failed", self.jobs_failed.load(Ordering::Relaxed)),
            counter("serve.jobs.rejected", self.jobs_rejected.load(Ordering::Relaxed)),
            counter("serve.avg_job_us", self.avg_job_us.load(Ordering::Relaxed)),
        ];
        out.push(counter("serve.store.enabled", u64::from(self.store().is_some())));
        out.push(counter("serve.store.degraded", u64::from(self.store_degraded)));
        out.extend(cache_metrics());
        if let Some(tier) = self.store() {
            out.extend(tier.metrics());
        }
        out
    }
}

/// A handle that can observe and trigger drain from outside the server
/// thread (the binary points SIGTERM at this).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins graceful drain: stop accepting, finish queued and
    /// in-flight jobs, then let [`Server::serve`] return.
    pub fn drain(&self) {
        let _guard = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        self.shared.drain.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
    }

    /// True once drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// The service: listeners + queue + worker pool. Construct with
/// [`Server::bind`], then block in [`Server::serve`].
pub struct Server {
    shared: Arc<Shared>,
    listeners: Vec<Listener>,
    tcp_addrs: Vec<SocketAddr>,
}

impl Server {
    /// Binds every address and prepares (but does not start) the
    /// service. Unix socket paths left over from a previous run are
    /// unlinked first.
    pub fn bind(addrs: &[Addr], cfg: ServerConfig) -> io::Result<Server> {
        let mut listeners = Vec::new();
        let mut tcp_addrs = Vec::new();
        for addr in addrs {
            match addr {
                Addr::Tcp(hp) => {
                    let l = TcpListener::bind(hp.as_str())?;
                    l.set_nonblocking(true)?;
                    tcp_addrs.push(l.local_addr()?);
                    listeners.push(Listener::Tcp(l));
                }
                #[cfg(unix)]
                Addr::Unix(path) => {
                    let _ = std::fs::remove_file(path);
                    let l = UnixListener::bind(path)?;
                    l.set_nonblocking(true)?;
                    listeners.push(Listener::Unix(l, path.clone()));
                }
            }
        }
        if listeners.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no listen addresses"));
        }
        let workers = cfg.workers.max(1);
        // Open the persistent tier before serving, so recovery happens
        // once up front. An unopenable store degrades to cold serving —
        // a broken disk must not take the service down with it.
        let mut runner = Runner::new();
        let mut store_degraded = false;
        if let Some(dir) = &cfg.store_dir {
            match StoreTier::open(dir) {
                Ok(tier) => {
                    let rec = tier.recovery();
                    eprintln!(
                        "scc-serve: store at {} recovered {} records \
                         ({} corrupt skipped, {} torn truncations, {} segments invalidated)",
                        dir.display(),
                        rec.records_indexed,
                        rec.corrupt_records_skipped,
                        rec.torn_truncations,
                        rec.invalidated_segments(),
                    );
                    runner = runner.with_store(tier);
                }
                Err(e) => {
                    eprintln!(
                        "scc-serve: store at {} unavailable ({e}); serving cold",
                        dir.display()
                    );
                    store_degraded = true;
                }
            }
        }
        let shared = Arc::new(Shared {
            cfg: ServerConfig { workers, ..cfg },
            runner,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            drain: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            jobs_ok: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            avg_job_us: AtomicU64::new(0),
            store_degraded,
        });
        Ok(Server { shared, listeners, tcp_addrs })
    }

    /// A drain handle usable from other threads (tests, signal wiring).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The first bound TCP address (resolves port 0 for tests).
    pub fn local_tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addrs.first().copied()
    }

    /// Runs the service until drained: spawns the worker pool, accepts
    /// connections, and on drain joins every connection and worker
    /// thread before returning.
    pub fn serve(self) -> io::Result<()> {
        let mut worker_handles = Vec::new();
        for w in 0..self.shared.cfg.workers {
            let shared = Arc::clone(&self.shared);
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("scc-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let mut conn_handles: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.shared.draining() {
            let mut accepted_any = false;
            for l in &self.listeners {
                match accept_one(l) {
                    Ok(Some(stream)) => {
                        accepted_any = true;
                        let shared = Arc::clone(&self.shared);
                        shared.connections.fetch_add(1, Ordering::Relaxed);
                        conn_handles.push(
                            thread::Builder::new()
                                .name("scc-serve-conn".to_string())
                                .spawn(move || handle_connection(&shared, stream))?,
                        );
                    }
                    Ok(None) => {}
                    Err(e) => eprintln!("scc-serve: accept error: {e}"),
                }
            }
            // Reap finished connection handlers so a long-lived server
            // does not accumulate join handles.
            conn_handles.retain(|h| !h.is_finished());
            if !accepted_any {
                thread::sleep(ACCEPT_POLL);
            }
        }

        // Draining: connections notice via their read timeout and exit;
        // workers exit once the queue is empty.
        for h in conn_handles {
            let _ = h.join();
        }
        for h in worker_handles {
            let _ = h.join();
        }
        // Every worker has exited, so every write-through has reached
        // the store; fsync before reporting a clean exit.
        if let Some(tier) = self.shared.store() {
            match tier.flush() {
                Ok(()) => eprintln!("scc-serve: store flushed"),
                Err(e) => eprintln!("scc-serve: store flush failed: {e}"),
            }
        }
        for l in &self.listeners {
            #[cfg(unix)]
            if let Listener::Unix(_, path) = l {
                let _ = std::fs::remove_file(path);
            }
            #[cfg(not(unix))]
            let _ = l;
        }
        let m = self.shared.metrics();
        eprintln!("scc-serve: drained; final {}", metrics_object(&m));
        Ok(())
    }
}

fn accept_one(l: &Listener) -> io::Result<Option<Stream>> {
    let would_block = |e: &io::Error| e.kind() == io::ErrorKind::WouldBlock;
    match l {
        Listener::Tcp(l) => match l.accept() {
            Ok((s, _)) => Ok(Some(Stream::Tcp(s))),
            Err(e) if would_block(&e) => Ok(None),
            Err(e) => Err(e),
        },
        #[cfg(unix)]
        Listener::Unix(l, _) => match l.accept() {
            Ok((s, _)) => Ok(Some(Stream::Unix(s))),
            Err(e) if would_block(&e) => Ok(None),
            Err(e) => Err(e),
        },
    }
}

/// One connection: frame requests, answer them strictly in order.
fn handle_connection(shared: &Shared, mut stream: Stream) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut reader = FrameReader::new(MAX_FRAME_BYTES);
    loop {
        if shared.draining() {
            return;
        }
        let reply = match reader.poll_line(&mut stream) {
            Poll::TimedOut => continue,
            Poll::Eof | Poll::Err(_) => return,
            Poll::Oversized => {
                // The stream is now mid-frame; answer and hang up.
                let r = error_response(
                    None,
                    "oversized_frame",
                    &format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                    None,
                );
                let _ = stream.write_all(r.as_bytes());
                return;
            }
            Poll::BadUtf8 => {
                error_response(None, "bad_frame", "frame is not valid UTF-8", None)
            }
            Poll::Line(line) => handle_frame(shared, &line),
        };
        if stream.write_all(reply.as_bytes()).and_then(|()| stream.flush()).is_err() {
            return;
        }
    }
}

/// Parses and executes one request frame, returning the response frame.
fn handle_frame(shared: &Shared, line: &str) -> String {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return error_response(e.id.as_deref(), e.kind, &e.message, None),
    };
    match req {
        Request::Health => {
            let status = if shared.draining() { "draining" } else { "ok" };
            format!("{{\"ok\":true,\"status\":\"{status}\"}}\n")
        }
        Request::Stats => {
            format!("{{\"ok\":true,\"stats\":{}}}\n", metrics_object(&shared.metrics()))
        }
        Request::Persist => match shared.store() {
            Some(tier) => match tier.flush() {
                Ok(()) => format!(
                    "{{\"ok\":true,\"status\":\"persisted\",\"writes\":{}}}\n",
                    tier.store_stats().puts
                ),
                Err(e) => {
                    error_response(None, "store_io", &format!("store flush failed: {e}"), None)
                }
            },
            None => store_unavailable(shared),
        },
        Request::Warm => match shared.store() {
            Some(tier) => match tier.warm_into_cache() {
                Ok(n) => format!("{{\"ok\":true,\"status\":\"warmed\",\"entries\":{n}}}\n"),
                Err(e) => {
                    error_response(None, "store_io", &format!("store warm failed: {e}"), None)
                }
            },
            None => store_unavailable(shared),
        },
        Request::Shutdown => {
            let _guard = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            shared.drain.store(true, Ordering::SeqCst);
            shared.work_ready.notify_all();
            "{\"ok\":true,\"status\":\"draining\"}\n".to_string()
        }
        Request::Run(run) => submit_run(shared, run),
    }
}

/// The `persist`/`warm` rejection when no store tier is attached —
/// distinguishing "never configured" from "configured but degraded".
fn store_unavailable(shared: &Shared) -> String {
    let message = if shared.store_degraded {
        "persistent store failed to open at startup; serving cold"
    } else {
        "no persistent store attached (start scc-serve with --store-dir)"
    };
    error_response(None, "store_unavailable", message, None)
}

/// Validates, enqueues, and awaits one `run` request.
fn submit_run(shared: &Shared, req: RunRequest) -> String {
    let id = req.id.clone();
    // Validate the workload name before spending a queue slot, so a
    // typo never occupies capacity.
    if let Err(e) = resolve_workload(&req.workload, Scale::custom(req.iters)) {
        shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
        return error_response(id.as_deref(), e.kind(), &e.to_string(), None);
    }
    let deadline = req.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        // Checked under the lock: drain is only ever set under this
        // lock, so seeing `false` here guarantees workers will still
        // observe this enqueue before exiting.
        if shared.draining() {
            return error_response(
                id.as_deref(),
                "draining",
                "server is draining; submit to another instance",
                None,
            );
        }
        if q.len() >= shared.cfg.queue_depth {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            let hint = shared.retry_after_ms(q.len());
            return error_response(
                id.as_deref(),
                "queue_full",
                &format!("queue at capacity ({})", shared.cfg.queue_depth),
                Some(hint),
            );
        }
        q.push_back(QueuedJob { req, deadline, resp: tx });
    }
    shared.work_ready.notify_one();
    match rx.recv() {
        Ok(reply) => reply,
        Err(_) => {
            // The worker dropped the sender without replying — only
            // possible if job execution panicked outside the unwind
            // guard.
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            error_response(id.as_deref(), "internal_error", "job worker failed", None)
        }
    }
}

/// Worker: pop → execute → reply, until drained and the queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .work_ready
                    .wait_timeout(q, WORKER_POLL)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        let Some(qj) = job else { return };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let started = Instant::now();
        let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(shared, &qj)
        }))
        .unwrap_or_else(|_| {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            error_response(
                qj.req.id.as_deref(),
                "internal_error",
                "job execution panicked",
                None,
            )
        });
        shared.observe_job_time(started.elapsed());
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        let _ = qj.resp.send(reply);
    }
}

/// Executes one popped job on the shared runner.
fn execute_job(shared: &Shared, qj: &QueuedJob) -> String {
    let req = &qj.req;
    let id = req.id.as_deref();
    if let Some(d) = qj.deadline {
        if Instant::now() >= d {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return error_response(id, "deadline_exceeded", "deadline expired while queued", None);
        }
    }
    let workload = match resolve_workload(&req.workload, Scale::custom(req.iters)) {
        Ok(w) => w,
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            return error_response(id, e.kind(), &e.to_string(), None);
        }
    };
    let mut opts = SimOptions::new(req.level);
    opts.max_cycles = req.max_cycles.unwrap_or(shared.cfg.max_cycles).min(shared.cfg.max_cycles);
    let job = Job::new(&workload, &opts);
    match shared.runner.try_run_one(&job, qj.deadline, id, req.audit) {
        Ok(one) => {
            shared.jobs_ok.fetch_add(1, Ordering::Relaxed);
            run_response(id, &one.result, one.audit_jsonl.as_deref())
        }
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            error_response(id, e.kind(), &e.to_string(), None)
        }
    }
}
