//! The `scc-load` load generator: N concurrent connections issuing
//! `run` requests, honoring `queue_full` / `shard_unavailable` retry
//! hints, and summarizing throughput, latency percentiles, and cache
//! effectiveness.
//!
//! Two connection populations exercise the server's readiness loop the
//! way production traffic would:
//!
//! - **idle connections** (`--idle-conns`): opened first, verified with
//!   one `health` round-trip, then parked for the whole run and
//!   verified again at the end. They cost the single I/O thread one
//!   poll entry each — the point of the high-connection mode is showing
//!   that thousands of them do not perturb the hot path.
//! - **hot phases** (`--sweep`): one phase per requested connection
//!   count, each spawning that many client threads issuing
//!   `requests_per_conn` runs back-to-back with retries on retryable
//!   rejections. Per-phase throughput and p50/p95/p99 go into the
//!   schema-v3 `results/BENCH_serve.json` so tail latency under
//!   overload is recorded per connection count.
//!
//! Cache counters are delta-scoped **per phase**, bracketed by `stats`
//! reads immediately before and after each phase, and each delta is
//! cross-checked against the phase's own completed-request count
//! (`serve.jobs.ok` must have advanced by exactly our `ok` count).
//! When another load process shares the server the check fails, the
//! phase's hit rate is reported as `null` instead of a number polluted
//! by foreign traffic, and `counters_exclusive` records the downgrade.
//! Against a sharded topology, pass the shard addresses as
//! `stats_addrs` so counters are read from the shards themselves — the
//! router has no `runner.cache.*` counters of its own.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::json::{escape, Json};
use crate::net::Addr;

/// `results/BENCH_serve.json` document schema. v3 added `mode`, the
/// per-phase `cache` object (phase-scoped hit-rate deltas with the
/// foreign-traffic guard), and the `topologies` array with per-shard
/// throughput for routed scaling sweeps. v2 added `phases`,
/// `idle_conns`, `io_model`, and `git_rev`.
pub const BENCH_SERVE_SCHEMA_VERSION: u64 = 3;

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Where the service listens.
    pub addr: Addr,
    /// Where to read `stats` counters from. Empty means `addr` itself
    /// (a direct, unsharded server). Against a router, list the shard
    /// addresses here: per-phase deltas are summed across them, and the
    /// per-shard breakdown in scaling reports reads them individually.
    pub stats_addrs: Vec<Addr>,
    /// Concurrent hot connections (used when `sweep` is empty).
    pub conns: usize,
    /// `run` requests issued per hot connection.
    pub requests_per_conn: usize,
    /// Workload name sent on every request.
    pub workload: String,
    /// Base workload scale.
    pub iters: i64,
    /// Optimization level label (e.g. `full-scc`).
    pub level: String,
    /// Optional per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Number of distinct job shapes cycled across requests (1 makes
    /// every request cache-identical; larger values mix misses in).
    pub distinct: usize,
    /// Idle-mostly connections held open across every phase.
    pub idle_conns: usize,
    /// Hot connection counts to run as successive phases; empty means
    /// one phase at `conns`.
    pub sweep: Vec<usize>,
}

/// A point-in-time read of the cache/store/jobs counters relevant to
/// load-run accounting, summed across one or more `stats` sources.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// `runner.cache.hits`.
    pub cache_hits: u64,
    /// `runner.cache.misses`.
    pub cache_misses: u64,
    /// `runner.store.hits`.
    pub store_hits: u64,
    /// `runner.store.misses`.
    pub store_misses: u64,
    /// `serve.jobs.ok` — the foreign-traffic guard: over an interval in
    /// which only we issued runs, its delta equals our own ok count.
    pub jobs_ok: u64,
}

impl TierCounters {
    /// Element-wise saturating delta `self - earlier`.
    pub fn since(&self, earlier: &TierCounters) -> TierCounters {
        TierCounters {
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            store_hits: self.store_hits.saturating_sub(earlier.store_hits),
            store_misses: self.store_misses.saturating_sub(earlier.store_misses),
            jobs_ok: self.jobs_ok.saturating_sub(earlier.jobs_ok),
        }
    }

    fn add(&mut self, other: &TierCounters) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.jobs_ok += other.jobs_ok;
    }
}

/// One hot phase's aggregated outcome.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Concurrent hot connections in this phase.
    pub conns: usize,
    /// `run` requests that eventually succeeded or hard-failed.
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Retryable rejections observed (`queue_full` or
    /// `shard_unavailable`; each was retried after the server's hint).
    pub rejections: u64,
    /// Requests that ended in a non-retryable error.
    pub errors: u64,
    /// Wall-clock for the phase, seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds (successful requests).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// `runner.cache.hits` delta over this phase (all stats sources).
    pub cache_hits: u64,
    /// `runner.cache.misses` delta over this phase.
    pub cache_misses: u64,
    /// Whether the counter deltas are attributable to this phase alone:
    /// the summed `serve.jobs.ok` advance matched our own ok count.
    /// False means another client shared the server mid-phase.
    pub counters_exclusive: bool,
    /// Phase cache hit rate (delta hits / delta lookups). `None` when
    /// the phase performed no lookups or when `counters_exclusive` is
    /// false — a hit rate polluted by foreign traffic is withheld, not
    /// reported as a number.
    pub cache_hit_rate: Option<f64>,
}

/// Aggregated outcome of one load run (all phases).
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// `"direct"` when counters came from the connect address itself,
    /// `"routed"` when `stats_addrs` pointed at backend shards.
    pub mode: &'static str,
    /// Idle connections held open for the whole run.
    pub idle_conns: usize,
    /// Per-phase results, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Largest hot-connection count among the phases.
    pub conns: usize,
    /// Total `run` requests across phases (each counted once, however
    /// many retries it took), plus idle-connection health probes that
    /// failed.
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Retryable rejections observed (each was retried).
    pub rejections: u64,
    /// Requests that ended in a non-retryable error, including any
    /// idle connection that died mid-run.
    pub errors: u64,
    /// Wall-clock covering all phases, seconds.
    pub wall_s: f64,
    /// Completed requests per second across the whole run.
    pub throughput_rps: f64,
    /// Median request latency across phases, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency across phases, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency across phases, milliseconds.
    pub p99_ms: f64,
    /// True when every phase's counter deltas were attributable to this
    /// run alone (see [`PhaseReport::counters_exclusive`]).
    pub counters_exclusive: bool,
    /// Result-cache hit rate over the run, from per-phase
    /// `runner.cache.*` deltas. `None` when the run performed no
    /// lookups or any phase's counters were shared with foreign
    /// traffic.
    pub cache_hit_rate: Option<f64>,
    /// Persistent-store lookups over the run that hit (`runner.store.hits`
    /// delta). Zero when the server has no store attached.
    pub store_hits: u64,
    /// Persistent-store lookups over the run that missed.
    pub store_misses: u64,
    /// Warm-hit rate of the persistent tier over the run: store hits /
    /// store lookups. This is the restart-and-replay headline — against
    /// a freshly restarted server every LRU miss probes the store, so a
    /// fully persisted prior run replays as rate 1.0. `NaN` when the
    /// run performed no store lookups (no store, or everything hit the
    /// LRU).
    pub store_warm_hit_rate: f64,
}

/// One backend shard's share of a routed topology run.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index (ring identity — position on the router command
    /// line).
    pub shard: usize,
    /// `serve.jobs.ok` delta on this shard over the run.
    pub jobs_ok: u64,
    /// `route.shard.{i}.forwarded` on the router after the run: frames
    /// the router sent this shard's way.
    pub forwarded: u64,
    /// This shard's completed jobs per second over the run's wall
    /// clock.
    pub throughput_rps: f64,
}

/// One topology's outcome in a shard-scaling sweep.
#[derive(Clone, Debug)]
pub struct TopologyReport {
    /// Backend shard count for this topology.
    pub shards: usize,
    /// Per-shard breakdown (deltas read from the shards directly,
    /// forwarding counts from the router).
    pub per_shard: Vec<ShardReport>,
    /// The load run's aggregated outcome through the router.
    pub report: LoadReport,
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn run_request_line(cfg: &LoadConfig, phase: usize, conn: usize, seq: usize) -> String {
    // De-phase the shape cycle by connection: conn c starts at shape c.
    // If every connection walked the shapes in the same order, all
    // conns would request the same shape — and so hammer the same
    // shard — at the same instant, serializing a sharded topology one
    // shard at a time and hiding any scaling.
    let iters = cfg.iters + ((conn + seq) % cfg.distinct.max(1)) as i64;
    let deadline = match cfg.deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"verb\":\"run\",\"id\":\"p{phase}-c{conn}-r{seq}\",\"workload\":\"{}\",\"iters\":{iters},\"level\":\"{}\"{deadline}}}",
        escape(&cfg.workload),
        escape(&cfg.level),
    )
}

/// Fetches the server's `stats` object.
pub fn stats_object(addr: &Addr) -> io::Result<Json> {
    let mut c = Client::connect(addr)?;
    let j = c.request_json("{\"verb\":\"stats\"}")?;
    j.get("stats")
        .cloned()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "stats missing"))
}

/// Reads one server's [`TierCounters`]; store counters read 0 on a
/// storeless server.
pub fn tier_counters(addr: &Addr) -> io::Result<TierCounters> {
    let stats = stats_object(addr)?;
    let read = |name: &str| stats.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(TierCounters {
        cache_hits: read("runner.cache.hits"),
        cache_misses: read("runner.cache.misses"),
        store_hits: read("runner.store.hits"),
        store_misses: read("runner.store.misses"),
        jobs_ok: read("serve.jobs.ok"),
    })
}

/// Sums [`TierCounters`] across every stats source for this config.
fn summed_counters(cfg: &LoadConfig) -> io::Result<TierCounters> {
    let mut total = TierCounters::default();
    if cfg.stats_addrs.is_empty() {
        total.add(&tier_counters(&cfg.addr)?);
    } else {
        for a in &cfg.stats_addrs {
            total.add(&tier_counters(a)?);
        }
    }
    Ok(total)
}

/// Opens one idle connection and proves it is live with a `health`
/// round-trip.
fn open_idle(addr: &Addr) -> io::Result<Client> {
    let mut c = Client::connect_with_timeout(addr, Duration::from_secs(30))?;
    let h = c.request_json("{\"verb\":\"health\"}")?;
    if h.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("idle health: {h:?}")));
    }
    Ok(c)
}

/// Error kinds the generator retries after the server's
/// `retry_after_ms` hint: queue backpressure and transient shard
/// outages behind a router. Everything else is a hard failure.
fn retryable(kind: Option<&str>) -> bool {
    matches!(kind, Some("queue_full") | Some("shard_unavailable"))
}

/// Runs one hot phase: `conns` client threads, each issuing
/// `requests_per_conn` run requests back-to-back, retrying retryable
/// rejections after the server's `retry_after_ms` hint. Returns the
/// phase report (cache fields still zeroed — the caller brackets the
/// phase with counter reads) and its sorted latency samples.
fn run_phase(cfg: &LoadConfig, phase: usize, conns: usize) -> io::Result<(PhaseReport, Vec<f64>)> {
    let rejections = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..conns {
        let cfg = cfg.clone();
        let rejections = Arc::clone(&rejections);
        handles.push(thread::spawn(move || -> io::Result<(Vec<f64>, u64, u64)> {
            let mut client = Client::connect(&cfg.addr)?;
            let mut latencies = Vec::with_capacity(cfg.requests_per_conn);
            let (mut ok, mut errors) = (0u64, 0u64);
            for seq in 0..cfg.requests_per_conn {
                let line = run_request_line(&cfg, phase, conn, seq);
                let req_started = Instant::now();
                loop {
                    let resp = client.request_json(&line)?;
                    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                        ok += 1;
                        latencies.push(req_started.elapsed().as_secs_f64() * 1e3);
                        break;
                    }
                    let err = resp.get("error");
                    // v1 frames carry the discriminant as `kind`, v2 as
                    // `code`; the generator speaks v1 but stays robust.
                    let kind = err
                        .and_then(|e| e.get("kind").or_else(|| e.get("code")))
                        .and_then(Json::as_str);
                    if retryable(kind) {
                        rejections.fetch_add(1, Ordering::Relaxed);
                        let ms = err
                            .and_then(|e| e.get("retry_after_ms"))
                            .and_then(Json::as_u64)
                            .unwrap_or(25);
                        thread::sleep(Duration::from_millis(ms.min(2_000)));
                        continue;
                    }
                    errors += 1;
                    break;
                }
            }
            Ok((latencies, ok, errors))
        }));
    }

    let mut latencies = Vec::new();
    let (mut ok, mut errors) = (0u64, 0u64);
    for h in handles {
        let (l, o, e) = h
            .join()
            .map_err(|_| io::Error::other("load connection thread panicked"))??;
        latencies.extend(l);
        ok += o;
        errors += e;
    }
    let wall_s = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let report = PhaseReport {
        conns,
        requests: ok + errors,
        ok,
        rejections: rejections.load(Ordering::Relaxed),
        errors,
        wall_s,
        throughput_rps: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
        cache_hits: 0,
        cache_misses: 0,
        counters_exclusive: true,
        cache_hit_rate: None,
    };
    Ok((report, latencies))
}

/// Runs the load: parks `idle_conns` verified idle connections, then
/// runs each hot phase in turn (bracketed by counter reads so cache
/// deltas are phase-scoped), then re-verifies every idle connection
/// survived.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let started = Instant::now();

    let mut idle = Vec::with_capacity(cfg.idle_conns);
    for i in 0..cfg.idle_conns {
        idle.push(open_idle(&cfg.addr).map_err(|e| {
            io::Error::new(e.kind(), format!("opening idle connection {i}: {e}"))
        })?);
    }

    let sweep: Vec<usize> =
        if cfg.sweep.is_empty() { vec![cfg.conns] } else { cfg.sweep.clone() };
    let mut phases = Vec::with_capacity(sweep.len());
    let mut all_latencies = Vec::new();
    let mut total_delta = TierCounters::default();
    for (i, &conns) in sweep.iter().enumerate() {
        let before = summed_counters(cfg)?;
        let (mut report, latencies) = run_phase(cfg, i, conns)?;
        let delta = summed_counters(cfg)?.since(&before);
        report.cache_hits = delta.cache_hits;
        report.cache_misses = delta.cache_misses;
        report.counters_exclusive = delta.jobs_ok == report.ok;
        let lookups = delta.cache_hits + delta.cache_misses;
        report.cache_hit_rate = if report.counters_exclusive && lookups > 0 {
            Some(delta.cache_hits as f64 / lookups as f64)
        } else {
            None
        };
        if !report.counters_exclusive {
            eprintln!(
                "scc-load: phase {i}: jobs.ok advanced by {} but we completed {} — \
                 counters shared with another client; hit rate withheld",
                delta.jobs_ok, report.ok
            );
        }
        total_delta.add(&delta);
        phases.push(report);
        all_latencies.extend(latencies);
    }

    // Every idle connection must still answer after the storm — one
    // failure is a protocol error, not a shrug.
    let mut idle_failures = 0u64;
    for c in &mut idle {
        let live = c
            .request_json("{\"verb\":\"health\"}")
            .ok()
            .and_then(|h| h.get("ok").and_then(Json::as_bool))
            == Some(true);
        if !live {
            idle_failures += 1;
        }
    }

    let wall_s = started.elapsed().as_secs_f64();
    all_latencies.sort_by(|a, b| a.total_cmp(b));
    let ok: u64 = phases.iter().map(|p| p.ok).sum();
    let errors: u64 = phases.iter().map(|p| p.errors).sum::<u64>() + idle_failures;
    let exclusive = phases.iter().all(|p| p.counters_exclusive);
    let lookups = total_delta.cache_hits + total_delta.cache_misses;
    Ok(LoadReport {
        mode: if cfg.stats_addrs.is_empty() { "direct" } else { "routed" },
        idle_conns: cfg.idle_conns,
        conns: sweep.iter().copied().max().unwrap_or(0),
        requests: ok + errors,
        ok,
        rejections: phases.iter().map(|p| p.rejections).sum(),
        errors,
        wall_s,
        throughput_rps: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        p50_ms: percentile(&all_latencies, 50.0),
        p95_ms: percentile(&all_latencies, 95.0),
        p99_ms: percentile(&all_latencies, 99.0),
        counters_exclusive: exclusive,
        cache_hit_rate: if exclusive && lookups > 0 {
            Some(total_delta.cache_hits as f64 / lookups as f64)
        } else {
            None
        },
        store_hits: total_delta.store_hits,
        store_misses: total_delta.store_misses,
        store_warm_hit_rate: total_delta.store_hits as f64
            / (total_delta.store_hits + total_delta.store_misses) as f64,
        phases,
    })
}

fn json_opt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) if r.is_finite() => format!("{r:.4}"),
        _ => "null".to_string(),
    }
}

fn phase_json(p: &PhaseReport) -> String {
    format!(
        "{{\"conns\": {}, \"requests\": {}, \"ok\": {}, \"rejections\": {}, \"errors\": {}, \
         \"wall_s\": {:.3}, \"throughput_rps\": {:.2}, \
         \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}, \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}, \"exclusive\": {}}}}}",
        p.conns,
        p.requests,
        p.ok,
        p.rejections,
        p.errors,
        p.wall_s,
        p.throughput_rps,
        p.p50_ms,
        p.p95_ms,
        p.p99_ms,
        p.cache_hits,
        p.cache_misses,
        json_opt_rate(p.cache_hit_rate),
        p.counters_exclusive,
    )
}

/// Renders one load run as a JSON object body (shared between the
/// single-run document and each entry of a scaling sweep's
/// `topologies` array). `indent` prefixes every line.
fn report_body(r: &LoadReport, indent: &str) -> String {
    let phases: Vec<String> =
        r.phases.iter().map(|p| format!("{indent}    {}", phase_json(p))).collect();
    format!(
        "{indent}\"mode\": \"{}\",\n{indent}\"idle_conns\": {},\n{indent}\"conns\": {},\n\
         {indent}\"requests\": {},\n{indent}\"ok\": {},\n{indent}\"rejections\": {},\n\
         {indent}\"errors\": {},\n{indent}\"wall_s\": {:.3},\n\
         {indent}\"throughput_rps\": {:.2},\n\
         {indent}\"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}},\n\
         {indent}\"phases\": [\n{}\n{indent}],\n\
         {indent}\"counters_exclusive\": {},\n{indent}\"cache_hit_rate\": {}",
        r.mode,
        r.idle_conns,
        r.conns,
        r.requests,
        r.ok,
        r.rejections,
        r.errors,
        r.wall_s,
        r.throughput_rps,
        r.p50_ms,
        r.p95_ms,
        r.p99_ms,
        phases.join(",\n"),
        r.counters_exclusive,
        json_opt_rate(r.cache_hit_rate),
    )
}

/// Renders the report as the `results/BENCH_serve.json` document
/// (schema v3: per-phase tail latency and phase-scoped cache deltas).
pub fn bench_json(r: &LoadReport) -> String {
    format!(
        "{{\n  \"bench\": \"serve\",\n  \"schema_version\": {},\n  \"git_rev\": \"{}\",\n  \
         \"io_model\": \"readiness-poll\",\n{}\n}}\n",
        BENCH_SERVE_SCHEMA_VERSION,
        escape(&scc_sim::runner::git_rev()),
        report_body(r, "  "),
    )
}

fn shard_json(s: &ShardReport) -> String {
    format!(
        "{{\"shard\": {}, \"jobs_ok\": {}, \"forwarded\": {}, \"throughput_rps\": {:.2}}}",
        s.shard, s.jobs_ok, s.forwarded, s.throughput_rps
    )
}

/// Renders a shard-scaling sweep as the `results/BENCH_serve.json`
/// document (schema v3, `mode: "scaling"`): one `topologies` entry per
/// shard count, each with the full load report plus a per-shard
/// throughput breakdown.
pub fn scaling_bench_json(topologies: &[TopologyReport]) -> String {
    let topos: Vec<String> = topologies
        .iter()
        .map(|t| {
            let shards: Vec<String> =
                t.per_shard.iter().map(|s| format!("        {}", shard_json(s))).collect();
            format!(
                "    {{\n      \"shards\": {},\n      \"per_shard\": [\n{}\n      ],\n{}\n    }}",
                t.shards,
                shards.join(",\n"),
                report_body(&t.report, "      "),
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"serve\",\n  \"schema_version\": {},\n  \"git_rev\": \"{}\",\n  \
         \"io_model\": \"readiness-poll\",\n  \"mode\": \"scaling\",\n  \
         \"topologies\": [\n{}\n  ]\n}}\n",
        BENCH_SERVE_SCHEMA_VERSION,
        escape(&scc_sim::runner::git_rev()),
        topos.join(",\n"),
    )
}

/// Renders the restart-and-replay report as the
/// `results/BENCH_store.json` document: the replay's warm-hit rate plus
/// the restarted server's recovery and store counters (read from a
/// final `stats` probe), tagged with the store's schema version and the
/// engine revision so regressions are attributable to a build.
pub fn store_bench_json(r: &LoadReport, final_stats: &Json) -> String {
    let read = |name: &str| final_stats.get(name).and_then(Json::as_u64).unwrap_or(0);
    let warm = if r.store_warm_hit_rate.is_finite() {
        format!("{:.4}", r.store_warm_hit_rate)
    } else {
        "null".to_string()
    };
    format!(
        "{{\n  \"bench\": \"store\",\n  \"schema_version\": {},\n  \"git_rev\": \"{}\",\n  \
         \"requests\": {},\n  \"ok\": {},\n  \"errors\": {},\n  \"warm_hit_rate\": {warm},\n  \
         \"store\": {{\"hits\": {}, \"misses\": {}, \"writes\": {}, \"segments\": {}, \
         \"decode_rejects\": {}}},\n  \"recovery\": {{\"records\": {}, \"corrupt_skipped\": {}, \
         \"torn_truncations\": {}, \"invalidated_segments\": {}}}\n}}\n",
        scc_sim::persist::SCHEMA_VERSION,
        escape(&scc_sim::runner::git_rev()),
        r.requests,
        r.ok,
        r.errors,
        r.store_hits,
        r.store_misses,
        read("runner.store.writes"),
        read("runner.store.segments"),
        read("runner.store.decode_rejects"),
        read("runner.store.recovered_records"),
        read("runner.store.recovery_corrupt_skipped"),
        read("runner.store.recovery_torn_truncations"),
        read("runner.store.recovery_invalidated_segments"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> LoadReport {
        LoadReport {
            mode: "direct",
            idle_conns: 0,
            phases: Vec::new(),
            conns: 4,
            requests: 0,
            ok: 0,
            rejections: 0,
            errors: 0,
            wall_s: 0.1,
            throughput_rps: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            counters_exclusive: true,
            cache_hit_rate: None,
            store_hits: 0,
            store_misses: 0,
            store_warm_hit_rate: f64::NAN,
        }
    }

    fn sample_phase(conns: usize) -> PhaseReport {
        PhaseReport {
            conns,
            requests: 64,
            ok: 64,
            rejections: 0,
            errors: 0,
            wall_s: 1.0,
            throughput_rps: 64.0,
            p50_ms: 2.0,
            p95_ms: 4.0,
            p99_ms: 6.0,
            cache_hits: 48,
            cache_misses: 16,
            counters_exclusive: true,
            cache_hit_rate: Some(0.75),
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&v, 99.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn tier_counter_deltas_saturate() {
        let earlier = TierCounters { cache_hits: 10, cache_misses: 4, ..Default::default() };
        let later = TierCounters { cache_hits: 25, cache_misses: 2, ..Default::default() };
        let d = later.since(&earlier);
        assert_eq!(d.cache_hits, 15);
        assert_eq!(d.cache_misses, 0, "a restarted server must not underflow the delta");
    }

    #[test]
    fn bench_json_handles_a_lookup_free_run() {
        let r = empty_report();
        let doc = bench_json(&r);
        assert!(doc.contains("\"cache_hit_rate\": null"));
        assert!(doc.contains("\"schema_version\": 3"));
        assert!(doc.contains("\"mode\": \"direct\""));
        crate::json::Json::parse(&doc).unwrap();
        let store_doc = store_bench_json(&r, &Json::parse("{}").unwrap());
        assert!(store_doc.contains("\"warm_hit_rate\": null"));
        assert!(store_doc.contains("\"schema_version\": 1"));
        Json::parse(&store_doc).unwrap();
    }

    #[test]
    fn bench_json_v3_carries_per_phase_tail_latency_and_cache_deltas() {
        let mut r = empty_report();
        r.idle_conns = 1000;
        r.conns = 256;
        r.counters_exclusive = false;
        r.phases = vec![sample_phase(8), {
            let mut p = sample_phase(256);
            p.requests = 2048;
            p.ok = 2048;
            p.rejections = 31;
            p.wall_s = 8.0;
            p.throughput_rps = 256.0;
            p.p50_ms = 9.0;
            p.p95_ms = 40.0;
            p.p99_ms = 90.0;
            p.counters_exclusive = false;
            p.cache_hit_rate = None;
            p
        }];
        let doc = bench_json(&r);
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("idle_conns").and_then(Json::as_u64), Some(1000));
        assert_eq!(j.get("io_model").and_then(Json::as_str), Some("readiness-poll"));
        assert_eq!(j.get("counters_exclusive").and_then(Json::as_bool), Some(false));
        match j.get("phases") {
            Some(Json::Arr(phases)) => {
                assert_eq!(phases.len(), 2);
                assert_eq!(phases[1].get("conns").and_then(Json::as_u64), Some(256));
                assert_eq!(
                    phases[1]
                        .get("latency_ms")
                        .and_then(|l| l.get("p99"))
                        .and_then(Json::as_f64),
                    Some(90.0)
                );
                let cache = phases[0].get("cache").expect("phase cache object");
                assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(48));
                assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(0.75));
                assert_eq!(cache.get("exclusive").and_then(Json::as_bool), Some(true));
                // The shared-counter phase withholds its rate instead of
                // reporting a number polluted by foreign traffic.
                let shared = phases[1].get("cache").expect("phase cache object");
                assert!(matches!(shared.get("hit_rate"), Some(Json::Null)));
                assert_eq!(shared.get("exclusive").and_then(Json::as_bool), Some(false));
            }
            other => panic!("missing phases array: {other:?}"),
        }
    }

    #[test]
    fn scaling_bench_json_records_per_shard_throughput() {
        let mk = |shards: usize| {
            let mut r = empty_report();
            r.mode = "routed";
            r.conns = 64;
            r.ok = 512;
            r.requests = 512;
            r.throughput_rps = 100.0 * shards as f64;
            r.phases = vec![sample_phase(64)];
            TopologyReport {
                shards,
                per_shard: (0..shards)
                    .map(|i| ShardReport {
                        shard: i,
                        jobs_ok: 512 / shards as u64,
                        forwarded: 512 / shards as u64,
                        throughput_rps: 100.0,
                    })
                    .collect(),
                report: r,
            }
        };
        let doc = scaling_bench_json(&[mk(1), mk(2), mk(4)]);
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("mode").and_then(Json::as_str), Some("scaling"));
        match j.get("topologies") {
            Some(Json::Arr(topos)) => {
                assert_eq!(topos.len(), 3);
                assert_eq!(topos[2].get("shards").and_then(Json::as_u64), Some(4));
                assert_eq!(topos[2].get("mode").and_then(Json::as_str), Some("routed"));
                match topos[2].get("per_shard") {
                    Some(Json::Arr(shards)) => {
                        assert_eq!(shards.len(), 4);
                        assert_eq!(shards[3].get("shard").and_then(Json::as_u64), Some(3));
                        assert_eq!(shards[3].get("jobs_ok").and_then(Json::as_u64), Some(128));
                        assert_eq!(
                            shards[3].get("throughput_rps").and_then(Json::as_f64),
                            Some(100.0)
                        );
                    }
                    other => panic!("missing per_shard array: {other:?}"),
                }
                assert!(topos[0].get("phases").is_some(), "each topology embeds phases");
            }
            other => panic!("missing topologies array: {other:?}"),
        }
    }

    #[test]
    fn store_bench_json_reports_a_warm_replay() {
        let mut r = empty_report();
        r.conns = 2;
        r.requests = 16;
        r.ok = 16;
        r.wall_s = 0.5;
        r.throughput_rps = 32.0;
        r.p50_ms = 1.0;
        r.p95_ms = 2.0;
        r.p99_ms = 2.0;
        r.cache_hit_rate = Some(0.75);
        r.store_hits = 4;
        r.store_warm_hit_rate = 1.0;
        let stats = Json::parse(
            r#"{"runner.store.writes":0,"runner.store.segments":2,
                "runner.store.recovered_records":4,"runner.store.recovery_corrupt_skipped":0,
                "runner.store.recovery_torn_truncations":0,
                "runner.store.recovery_invalidated_segments":0,"runner.store.decode_rejects":0}"#,
        )
        .unwrap();
        let doc = store_bench_json(&r, &stats);
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("warm_hit_rate").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            j.get("recovery").and_then(|x| x.get("records")).and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            j.get("store").and_then(|x| x.get("hits")).and_then(Json::as_u64),
            Some(4)
        );
    }
}
