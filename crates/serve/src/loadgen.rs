//! The `scc-load` load generator: N concurrent connections issuing
//! `run` requests, honoring `queue_full` retry hints, and summarizing
//! throughput, latency percentiles, and cache effectiveness.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::json::{escape, Json};
use crate::net::Addr;

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Where the service listens.
    pub addr: Addr,
    /// Concurrent connections.
    pub conns: usize,
    /// `run` requests issued per connection.
    pub requests_per_conn: usize,
    /// Workload name sent on every request.
    pub workload: String,
    /// Base workload scale.
    pub iters: i64,
    /// Optimization level label (e.g. `full-scc`).
    pub level: String,
    /// Optional per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Number of distinct job shapes cycled across requests (1 makes
    /// every request cache-identical; larger values mix misses in).
    pub distinct: usize,
}

/// Aggregated outcome of one load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Concurrent connections used.
    pub conns: usize,
    /// Total `run` requests that eventually succeeded or hard-failed
    /// (each counted once, however many retries it took).
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// `queue_full` rejections observed (each was retried).
    pub rejections: u64,
    /// Requests that ended in a non-retryable error.
    pub errors: u64,
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds (successful requests).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Result-cache hit rate over the run, from the `stats` verb's
    /// `runner.cache.*` counters (delta hits / delta lookups); `NaN`
    /// when the run performed no lookups.
    pub cache_hit_rate: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn run_request_line(cfg: &LoadConfig, conn: usize, seq: usize) -> String {
    let iters = cfg.iters + (conn * cfg.requests_per_conn + seq) as i64 % cfg.distinct.max(1) as i64;
    let deadline = match cfg.deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"verb\":\"run\",\"id\":\"c{conn}-r{seq}\",\"workload\":\"{}\",\"iters\":{iters},\"level\":\"{}\"{deadline}}}",
        escape(&cfg.workload),
        escape(&cfg.level),
    )
}

fn cache_counters(addr: &Addr) -> io::Result<(u64, u64)> {
    let mut c = Client::connect(addr)?;
    let j = c.request_json("{\"verb\":\"stats\"}")?;
    let stats = j
        .get("stats")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "stats missing"))?;
    let read = |name: &str| stats.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok((read("runner.cache.hits"), read("runner.cache.misses")))
}

/// Runs the load: spawns one thread per connection, each issuing
/// `requests_per_conn` run requests back-to-back, retrying on
/// `queue_full` after the server's `retry_after_ms` hint.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let (hits0, misses0) = cache_counters(&cfg.addr)?;
    let rejections = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..cfg.conns {
        let cfg = cfg.clone();
        let rejections = Arc::clone(&rejections);
        handles.push(thread::spawn(move || -> io::Result<(Vec<f64>, u64, u64)> {
            let mut client = Client::connect(&cfg.addr)?;
            let mut latencies = Vec::with_capacity(cfg.requests_per_conn);
            let (mut ok, mut errors) = (0u64, 0u64);
            for seq in 0..cfg.requests_per_conn {
                let line = run_request_line(&cfg, conn, seq);
                let req_started = Instant::now();
                loop {
                    let resp = client.request_json(&line)?;
                    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                        ok += 1;
                        latencies.push(req_started.elapsed().as_secs_f64() * 1e3);
                        break;
                    }
                    let err = resp.get("error");
                    let kind = err.and_then(|e| e.get("kind")).and_then(Json::as_str);
                    if kind == Some("queue_full") {
                        rejections.fetch_add(1, Ordering::Relaxed);
                        let ms = err
                            .and_then(|e| e.get("retry_after_ms"))
                            .and_then(Json::as_u64)
                            .unwrap_or(25);
                        thread::sleep(Duration::from_millis(ms.min(2_000)));
                        continue;
                    }
                    errors += 1;
                    break;
                }
            }
            Ok((latencies, ok, errors))
        }));
    }

    let mut latencies = Vec::new();
    let (mut ok, mut errors) = (0u64, 0u64);
    for h in handles {
        let (l, o, e) = h
            .join()
            .map_err(|_| io::Error::other("load connection thread panicked"))??;
        latencies.extend(l);
        ok += o;
        errors += e;
    }
    let wall_s = started.elapsed().as_secs_f64();
    let (hits1, misses1) = cache_counters(&cfg.addr)?;
    let (dh, dm) = (hits1.saturating_sub(hits0), misses1.saturating_sub(misses0));

    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(LoadReport {
        conns: cfg.conns,
        requests: ok + errors,
        ok,
        rejections: rejections.load(Ordering::Relaxed),
        errors,
        wall_s,
        throughput_rps: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
        cache_hit_rate: dh as f64 / (dh + dm) as f64,
    })
}

/// Renders the report as the `results/BENCH_serve.json` document.
pub fn bench_json(r: &LoadReport) -> String {
    let hit_rate = if r.cache_hit_rate.is_finite() {
        format!("{:.4}", r.cache_hit_rate)
    } else {
        "null".to_string()
    };
    format!(
        "{{\n  \"bench\": \"serve\",\n  \"conns\": {},\n  \"requests\": {},\n  \"ok\": {},\n  \
         \"rejections\": {},\n  \"errors\": {},\n  \"wall_s\": {:.3},\n  \
         \"throughput_rps\": {:.2},\n  \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \
         \"p99\": {:.3}}},\n  \"cache_hit_rate\": {hit_rate}\n}}\n",
        r.conns,
        r.requests,
        r.ok,
        r.rejections,
        r.errors,
        r.wall_s,
        r.throughput_rps,
        r.p50_ms,
        r.p95_ms,
        r.p99_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&v, 99.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn bench_json_handles_a_lookup_free_run() {
        let r = LoadReport {
            conns: 4,
            requests: 0,
            ok: 0,
            rejections: 0,
            errors: 0,
            wall_s: 0.1,
            throughput_rps: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            cache_hit_rate: f64::NAN,
        };
        let doc = bench_json(&r);
        assert!(doc.contains("\"cache_hit_rate\": null"));
        crate::json::Json::parse(&doc).unwrap();
    }
}
