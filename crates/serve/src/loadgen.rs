//! The `scc-load` load generator: N concurrent connections issuing
//! `run` requests, honoring `queue_full` retry hints, and summarizing
//! throughput, latency percentiles, and cache effectiveness.
//!
//! Two connection populations exercise the server's readiness loop the
//! way production traffic would:
//!
//! - **idle connections** (`--idle-conns`): opened first, verified with
//!   one `health` round-trip, then parked for the whole run and
//!   verified again at the end. They cost the single I/O thread one
//!   poll entry each — the point of the high-connection mode is showing
//!   that thousands of them do not perturb the hot path.
//! - **hot phases** (`--sweep`): one phase per requested connection
//!   count, each spawning that many client threads issuing
//!   `requests_per_conn` runs back-to-back with `queue_full` retries.
//!   Per-phase throughput and p50/p95/p99 go into the schema-v2
//!   `results/BENCH_serve.json` so tail latency under overload is
//!   recorded per connection count.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::json::{escape, Json};
use crate::net::Addr;

/// `results/BENCH_serve.json` document schema. v2 added `phases` (per-
/// connection-count throughput and tail latency), `idle_conns`,
/// `io_model`, and `git_rev`.
pub const BENCH_SERVE_SCHEMA_VERSION: u64 = 2;

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Where the service listens.
    pub addr: Addr,
    /// Concurrent hot connections (used when `sweep` is empty).
    pub conns: usize,
    /// `run` requests issued per hot connection.
    pub requests_per_conn: usize,
    /// Workload name sent on every request.
    pub workload: String,
    /// Base workload scale.
    pub iters: i64,
    /// Optimization level label (e.g. `full-scc`).
    pub level: String,
    /// Optional per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Number of distinct job shapes cycled across requests (1 makes
    /// every request cache-identical; larger values mix misses in).
    pub distinct: usize,
    /// Idle-mostly connections held open across every phase.
    pub idle_conns: usize,
    /// Hot connection counts to run as successive phases; empty means
    /// one phase at `conns`.
    pub sweep: Vec<usize>,
}

/// One hot phase's aggregated outcome.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Concurrent hot connections in this phase.
    pub conns: usize,
    /// `run` requests that eventually succeeded or hard-failed.
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// `queue_full` rejections observed (each was retried).
    pub rejections: u64,
    /// Requests that ended in a non-retryable error.
    pub errors: u64,
    /// Wall-clock for the phase, seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median request latency, milliseconds (successful requests).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

/// Aggregated outcome of one load run (all phases).
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Idle connections held open for the whole run.
    pub idle_conns: usize,
    /// Per-phase results, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Largest hot-connection count among the phases.
    pub conns: usize,
    /// Total `run` requests across phases (each counted once, however
    /// many retries it took), plus idle-connection health probes that
    /// failed.
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// `queue_full` rejections observed (each was retried).
    pub rejections: u64,
    /// Requests that ended in a non-retryable error, including any
    /// idle connection that died mid-run.
    pub errors: u64,
    /// Wall-clock covering all phases, seconds.
    pub wall_s: f64,
    /// Completed requests per second across the whole run.
    pub throughput_rps: f64,
    /// Median request latency across phases, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency across phases, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency across phases, milliseconds.
    pub p99_ms: f64,
    /// Result-cache hit rate over the run, from the `stats` verb's
    /// `runner.cache.*` counters (delta hits / delta lookups); `NaN`
    /// when the run performed no lookups.
    pub cache_hit_rate: f64,
    /// Persistent-store lookups over the run that hit (`runner.store.hits`
    /// delta). Zero when the server has no store attached.
    pub store_hits: u64,
    /// Persistent-store lookups over the run that missed.
    pub store_misses: u64,
    /// Warm-hit rate of the persistent tier over the run: store hits /
    /// store lookups. This is the restart-and-replay headline — against
    /// a freshly restarted server every LRU miss probes the store, so a
    /// fully persisted prior run replays as rate 1.0. `NaN` when the
    /// run performed no store lookups (no store, or everything hit the
    /// LRU).
    pub store_warm_hit_rate: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn run_request_line(cfg: &LoadConfig, phase: usize, conn: usize, seq: usize) -> String {
    let iters = cfg.iters + (conn * cfg.requests_per_conn + seq) as i64 % cfg.distinct.max(1) as i64;
    let deadline = match cfg.deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"verb\":\"run\",\"id\":\"p{phase}-c{conn}-r{seq}\",\"workload\":\"{}\",\"iters\":{iters},\"level\":\"{}\"{deadline}}}",
        escape(&cfg.workload),
        escape(&cfg.level),
    )
}

/// Fetches the server's `stats` object.
pub fn stats_object(addr: &Addr) -> io::Result<Json> {
    let mut c = Client::connect(addr)?;
    let j = c.request_json("{\"verb\":\"stats\"}")?;
    j.get("stats")
        .cloned()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "stats missing"))
}

/// `(cache hits, cache misses, store hits, store misses)` counters;
/// store counters read 0 on a storeless server.
fn tier_counters(addr: &Addr) -> io::Result<(u64, u64, u64, u64)> {
    let stats = stats_object(addr)?;
    let read = |name: &str| stats.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok((
        read("runner.cache.hits"),
        read("runner.cache.misses"),
        read("runner.store.hits"),
        read("runner.store.misses"),
    ))
}

/// Opens one idle connection and proves it is live with a `health`
/// round-trip.
fn open_idle(addr: &Addr) -> io::Result<Client> {
    let mut c = Client::connect_with_timeout(addr, Duration::from_secs(30))?;
    let h = c.request_json("{\"verb\":\"health\"}")?;
    if h.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("idle health: {h:?}")));
    }
    Ok(c)
}

/// Runs one hot phase: `conns` client threads, each issuing
/// `requests_per_conn` run requests back-to-back, retrying on
/// `queue_full` after the server's `retry_after_ms` hint. Returns the
/// phase report and its sorted latency samples.
fn run_phase(cfg: &LoadConfig, phase: usize, conns: usize) -> io::Result<(PhaseReport, Vec<f64>)> {
    let rejections = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..conns {
        let cfg = cfg.clone();
        let rejections = Arc::clone(&rejections);
        handles.push(thread::spawn(move || -> io::Result<(Vec<f64>, u64, u64)> {
            let mut client = Client::connect(&cfg.addr)?;
            let mut latencies = Vec::with_capacity(cfg.requests_per_conn);
            let (mut ok, mut errors) = (0u64, 0u64);
            for seq in 0..cfg.requests_per_conn {
                let line = run_request_line(&cfg, phase, conn, seq);
                let req_started = Instant::now();
                loop {
                    let resp = client.request_json(&line)?;
                    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                        ok += 1;
                        latencies.push(req_started.elapsed().as_secs_f64() * 1e3);
                        break;
                    }
                    let err = resp.get("error");
                    let kind = err.and_then(|e| e.get("kind")).and_then(Json::as_str);
                    if kind == Some("queue_full") {
                        rejections.fetch_add(1, Ordering::Relaxed);
                        let ms = err
                            .and_then(|e| e.get("retry_after_ms"))
                            .and_then(Json::as_u64)
                            .unwrap_or(25);
                        thread::sleep(Duration::from_millis(ms.min(2_000)));
                        continue;
                    }
                    errors += 1;
                    break;
                }
            }
            Ok((latencies, ok, errors))
        }));
    }

    let mut latencies = Vec::new();
    let (mut ok, mut errors) = (0u64, 0u64);
    for h in handles {
        let (l, o, e) = h
            .join()
            .map_err(|_| io::Error::other("load connection thread panicked"))??;
        latencies.extend(l);
        ok += o;
        errors += e;
    }
    let wall_s = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let report = PhaseReport {
        conns,
        requests: ok + errors,
        ok,
        rejections: rejections.load(Ordering::Relaxed),
        errors,
        wall_s,
        throughput_rps: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
    };
    Ok((report, latencies))
}

/// Runs the load: parks `idle_conns` verified idle connections, then
/// runs each hot phase in turn, then re-verifies every idle connection
/// survived.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let (hits0, misses0, sh0, sm0) = tier_counters(&cfg.addr)?;
    let started = Instant::now();

    let mut idle = Vec::with_capacity(cfg.idle_conns);
    for i in 0..cfg.idle_conns {
        idle.push(open_idle(&cfg.addr).map_err(|e| {
            io::Error::new(e.kind(), format!("opening idle connection {i}: {e}"))
        })?);
    }

    let sweep: Vec<usize> =
        if cfg.sweep.is_empty() { vec![cfg.conns] } else { cfg.sweep.clone() };
    let mut phases = Vec::with_capacity(sweep.len());
    let mut all_latencies = Vec::new();
    for (i, &conns) in sweep.iter().enumerate() {
        let (report, latencies) = run_phase(cfg, i, conns)?;
        phases.push(report);
        all_latencies.extend(latencies);
    }

    // Every idle connection must still answer after the storm — one
    // failure is a protocol error, not a shrug.
    let mut idle_failures = 0u64;
    for c in &mut idle {
        let live = c
            .request_json("{\"verb\":\"health\"}")
            .ok()
            .and_then(|h| h.get("ok").and_then(Json::as_bool))
            == Some(true);
        if !live {
            idle_failures += 1;
        }
    }

    let wall_s = started.elapsed().as_secs_f64();
    let (hits1, misses1, sh1, sm1) = tier_counters(&cfg.addr)?;
    let (dh, dm) = (hits1.saturating_sub(hits0), misses1.saturating_sub(misses0));
    let (dsh, dsm) = (sh1.saturating_sub(sh0), sm1.saturating_sub(sm0));

    all_latencies.sort_by(|a, b| a.total_cmp(b));
    let ok: u64 = phases.iter().map(|p| p.ok).sum();
    let errors: u64 = phases.iter().map(|p| p.errors).sum::<u64>() + idle_failures;
    Ok(LoadReport {
        idle_conns: cfg.idle_conns,
        conns: sweep.iter().copied().max().unwrap_or(0),
        requests: ok + errors,
        ok,
        rejections: phases.iter().map(|p| p.rejections).sum(),
        errors,
        wall_s,
        throughput_rps: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        p50_ms: percentile(&all_latencies, 50.0),
        p95_ms: percentile(&all_latencies, 95.0),
        p99_ms: percentile(&all_latencies, 99.0),
        cache_hit_rate: dh as f64 / (dh + dm) as f64,
        store_hits: dsh,
        store_misses: dsm,
        store_warm_hit_rate: dsh as f64 / (dsh + dsm) as f64,
        phases,
    })
}

fn phase_json(p: &PhaseReport) -> String {
    format!(
        "{{\"conns\": {}, \"requests\": {}, \"ok\": {}, \"rejections\": {}, \"errors\": {}, \
         \"wall_s\": {:.3}, \"throughput_rps\": {:.2}, \
         \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}}}",
        p.conns,
        p.requests,
        p.ok,
        p.rejections,
        p.errors,
        p.wall_s,
        p.throughput_rps,
        p.p50_ms,
        p.p95_ms,
        p.p99_ms,
    )
}

/// Renders the report as the `results/BENCH_serve.json` document
/// (schema v2: per-phase tail latency plus the idle-connection count).
pub fn bench_json(r: &LoadReport) -> String {
    let hit_rate = if r.cache_hit_rate.is_finite() {
        format!("{:.4}", r.cache_hit_rate)
    } else {
        "null".to_string()
    };
    let phases: Vec<String> =
        r.phases.iter().map(|p| format!("    {}", phase_json(p))).collect();
    format!(
        "{{\n  \"bench\": \"serve\",\n  \"schema_version\": {},\n  \"git_rev\": \"{}\",\n  \
         \"io_model\": \"readiness-poll\",\n  \"idle_conns\": {},\n  \"conns\": {},\n  \
         \"requests\": {},\n  \"ok\": {},\n  \"rejections\": {},\n  \"errors\": {},\n  \
         \"wall_s\": {:.3},\n  \"throughput_rps\": {:.2},\n  \
         \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}},\n  \
         \"phases\": [\n{}\n  ],\n  \"cache_hit_rate\": {hit_rate}\n}}\n",
        BENCH_SERVE_SCHEMA_VERSION,
        escape(&scc_sim::runner::git_rev()),
        r.idle_conns,
        r.conns,
        r.requests,
        r.ok,
        r.rejections,
        r.errors,
        r.wall_s,
        r.throughput_rps,
        r.p50_ms,
        r.p95_ms,
        r.p99_ms,
        phases.join(",\n"),
    )
}

/// Renders the restart-and-replay report as the
/// `results/BENCH_store.json` document: the replay's warm-hit rate plus
/// the restarted server's recovery and store counters (read from a
/// final `stats` probe), tagged with the store's schema version and the
/// engine revision so regressions are attributable to a build.
pub fn store_bench_json(r: &LoadReport, final_stats: &Json) -> String {
    let read = |name: &str| final_stats.get(name).and_then(Json::as_u64).unwrap_or(0);
    let warm = if r.store_warm_hit_rate.is_finite() {
        format!("{:.4}", r.store_warm_hit_rate)
    } else {
        "null".to_string()
    };
    format!(
        "{{\n  \"bench\": \"store\",\n  \"schema_version\": {},\n  \"git_rev\": \"{}\",\n  \
         \"requests\": {},\n  \"ok\": {},\n  \"errors\": {},\n  \"warm_hit_rate\": {warm},\n  \
         \"store\": {{\"hits\": {}, \"misses\": {}, \"writes\": {}, \"segments\": {}, \
         \"decode_rejects\": {}}},\n  \"recovery\": {{\"records\": {}, \"corrupt_skipped\": {}, \
         \"torn_truncations\": {}, \"invalidated_segments\": {}}}\n}}\n",
        scc_sim::persist::SCHEMA_VERSION,
        escape(&scc_sim::runner::git_rev()),
        r.requests,
        r.ok,
        r.errors,
        r.store_hits,
        r.store_misses,
        read("runner.store.writes"),
        read("runner.store.segments"),
        read("runner.store.decode_rejects"),
        read("runner.store.recovered_records"),
        read("runner.store.recovery_corrupt_skipped"),
        read("runner.store.recovery_torn_truncations"),
        read("runner.store.recovery_invalidated_segments"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> LoadReport {
        LoadReport {
            idle_conns: 0,
            phases: Vec::new(),
            conns: 4,
            requests: 0,
            ok: 0,
            rejections: 0,
            errors: 0,
            wall_s: 0.1,
            throughput_rps: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            cache_hit_rate: f64::NAN,
            store_hits: 0,
            store_misses: 0,
            store_warm_hit_rate: f64::NAN,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&v, 99.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn bench_json_handles_a_lookup_free_run() {
        let r = empty_report();
        let doc = bench_json(&r);
        assert!(doc.contains("\"cache_hit_rate\": null"));
        assert!(doc.contains("\"schema_version\": 2"));
        crate::json::Json::parse(&doc).unwrap();
        let store_doc = store_bench_json(&r, &Json::parse("{}").unwrap());
        assert!(store_doc.contains("\"warm_hit_rate\": null"));
        assert!(store_doc.contains("\"schema_version\": 1"));
        Json::parse(&store_doc).unwrap();
    }

    #[test]
    fn bench_json_v2_carries_per_phase_tail_latency() {
        let mut r = empty_report();
        r.idle_conns = 1000;
        r.conns = 256;
        r.phases = vec![
            PhaseReport {
                conns: 8,
                requests: 64,
                ok: 64,
                rejections: 0,
                errors: 0,
                wall_s: 1.0,
                throughput_rps: 64.0,
                p50_ms: 2.0,
                p95_ms: 4.0,
                p99_ms: 6.0,
            },
            PhaseReport {
                conns: 256,
                requests: 2048,
                ok: 2048,
                rejections: 31,
                errors: 0,
                wall_s: 8.0,
                throughput_rps: 256.0,
                p50_ms: 9.0,
                p95_ms: 40.0,
                p99_ms: 90.0,
            },
        ];
        let doc = bench_json(&r);
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("idle_conns").and_then(Json::as_u64), Some(1000));
        assert_eq!(j.get("io_model").and_then(Json::as_str), Some("readiness-poll"));
        match j.get("phases") {
            Some(Json::Arr(phases)) => {
                assert_eq!(phases.len(), 2);
                assert_eq!(phases[1].get("conns").and_then(Json::as_u64), Some(256));
                assert_eq!(
                    phases[1]
                        .get("latency_ms")
                        .and_then(|l| l.get("p99"))
                        .and_then(Json::as_f64),
                    Some(90.0)
                );
            }
            other => panic!("missing phases array: {other:?}"),
        }
    }

    #[test]
    fn store_bench_json_reports_a_warm_replay() {
        let mut r = empty_report();
        r.conns = 2;
        r.requests = 16;
        r.ok = 16;
        r.wall_s = 0.5;
        r.throughput_rps = 32.0;
        r.p50_ms = 1.0;
        r.p95_ms = 2.0;
        r.p99_ms = 2.0;
        r.cache_hit_rate = 0.75;
        r.store_hits = 4;
        r.store_warm_hit_rate = 1.0;
        let stats = Json::parse(
            r#"{"runner.store.writes":0,"runner.store.segments":2,
                "runner.store.recovered_records":4,"runner.store.recovery_corrupt_skipped":0,
                "runner.store.recovery_torn_truncations":0,
                "runner.store.recovery_invalidated_segments":0,"runner.store.decode_rejects":0}"#,
        )
        .unwrap();
        let doc = store_bench_json(&r, &stats);
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("warm_hit_rate").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            j.get("recovery").and_then(|x| x.get("records")).and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            j.get("store").and_then(|x| x.get("hits")).and_then(Json::as_u64),
            Some(4)
        );
    }
}
