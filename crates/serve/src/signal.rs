//! SIGTERM/SIGINT → drain, without a libc dependency.
//!
//! The handler only stores to a static [`AtomicBool`]
//! (async-signal-safe); the binary polls [`received`] from an ordinary
//! thread and triggers the server's graceful drain. On non-Unix
//! targets both functions are no-ops and drain is reachable via the
//! `shutdown` verb only.

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RECEIVED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)`. `sighandler_t` is pointer-sized on every
        // Unix Rust targets, so `isize` covers the return value; we
        // only need "not SIG_ERR" anyway and ignore it.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        RECEIVED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn received() -> bool {
        RECEIVED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

/// Installs the SIGTERM/SIGINT flag handler (no-op off Unix).
pub fn install() {
    imp::install()
}

/// True once SIGTERM or SIGINT has arrived since [`install`].
pub fn received() -> bool {
    imp::received()
}
