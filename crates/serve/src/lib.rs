//! `scc-serve`: a resident simulation service over the shared
//! [`scc_sim::Runner`], plus its client and load generator.
//!
//! The binary crates `scc-serve` and `scc-load` are thin shells over
//! this library:
//!
//! - [`server`] — listeners (TCP + Unix), the single-threaded
//!   `poll(2)` readiness loop, the bounded job queue with `queue_full`
//!   backpressure, admission control, deadline enforcement, and
//!   graceful drain;
//! - [`conn`] — the per-connection nonblocking state machine
//!   (read-accumulate → parse → enqueue → buffered write-drain), with
//!   one-outstanding-run fairness;
//! - [`sys`] — the minimal `poll(2)`/`pipe(2)`/`rlimit` FFI shim (no
//!   libc crate, same idiom as [`signal`]);
//! - [`protocol`] — the NDJSON wire grammar and the deterministic
//!   report rendering (byte-identical to direct in-process execution);
//! - [`frame`] / [`json`] — resumable newline framing (reader and
//!   short-write-safe writer) with a size cap and a dependency-free
//!   JSON parser, mirroring the hand-rolled emitters used across the
//!   workspace;
//! - [`ring`] / [`route`] — the consistent-hash ring and the
//!   `scc-route` shard router: clients connect to the router as if it
//!   were a shard, each `run` is hashed on its canonical job key and
//!   forwarded verbatim to the owning backend, and a down shard
//!   degrades to typed `shard_unavailable` errors with reconnect
//!   backoff (see `PROTOCOL.md` and `ARCHITECTURE.md` §10);
//! - [`client`] / [`loadgen`] / [`spawn`] — a blocking client, the
//!   concurrent load driver behind `results/BENCH_serve.json`, and the
//!   multi-process topology launcher for router+shard scaling sweeps;
//! - [`signal`] — the SIGTERM/SIGINT drain hook.
//!
//! Everything is std-only: no async runtime, no serde, no signal or
//! libc crates — matching the repo's zero-registry-dependency rule.
//! The readiness loop itself is Unix-only (it multiplexes raw fds);
//! the client, load generator, and protocol code are portable.

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod frame;
pub mod json;
pub mod loadgen;
pub mod net;
pub mod protocol;
pub mod ring;
pub mod route;
pub mod server;
pub mod signal;
pub mod spawn;
pub mod sys;

pub use client::Client;
pub use net::Addr;
pub use route::{Router, RouterConfig, RouterHandle};
pub use server::{Server, ServerConfig, ServerHandle};
